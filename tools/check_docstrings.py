#!/usr/bin/env python
"""Lint: every public symbol in ``src/repro`` must carry a docstring.

Walks the package with ``ast`` and flags public modules, classes,
functions, and methods (names not starting with ``_``) whose body does
not begin with a docstring.  The API reference (``docs/API.md``) is
written against these docstrings, so a silent gap here is a silent gap
in the documentation.

Deliberately out of scope:

* private names (leading underscore) — internal contracts live in
  comments where they matter;
* ``__init__``/dunder methods — documented on their class;
* test files, examples, and tools — linted by review, not machine;
* ``@property`` setters and ``@overload`` stubs — the getter or the
  implementation carries the docstring.

``ALLOWLIST`` grandfathers pre-existing gaps (module-relative path,
qualified name).  Shrink it; never grow it without a reason in the
adjacent comment.

Exit status 0 when clean; 1 with a listing otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

# (path relative to repo root, qualified name) — grandfathered gaps.
# Each entry is a docstring the codebase still owes; remove entries as
# the docstrings land.
ALLOWLIST: "set[tuple[str, str]]" = {
    ("src/repro/__main__.py", "main"),
    ("src/repro/baselines/merge_path_serial.py", "SerialMergePathSchedule.build"),
    ("src/repro/baselines/merge_path_serial.py", "SerialMergePathSchedule.matrix"),
    ("src/repro/baselines/merge_path_serial.py", "SerialMergePathSchedule.n_threads"),
    ("src/repro/baselines/neighbor_groups.py", "NeighborGroupSchedule.n_groups"),
    ("src/repro/baselines/neighbor_groups.py", "NeighborGroupSchedule.group_lengths"),
    ("src/repro/core/schedule.py", "ThreadAssignment.n_nonzeros"),
    ("src/repro/core/schedule.py", "ScheduleStatistics.total_writes"),
    ("src/repro/core/spmm.py", "WriteSegments.n_segments"),
    ("src/repro/engine/autotune.py", "TuningDecision.to_dict"),
    ("src/repro/engine/autotune.py", "TuningDecision.from_dict"),
    ("src/repro/engine/bench.py", "main"),
    ("src/repro/engine/kernels.py", "SegmentGroup.n_segments"),
    ("src/repro/engine/kernels.py", "EnginePlan.matrix"),
    ("src/repro/engine/kernels.py", "EnginePlanCache.clear"),
    ("src/repro/experiments/end_to_end_gnn.py", "main"),
    ("src/repro/experiments/engine_balance.py", "main"),
    ("src/repro/experiments/fig1_power_law.py", "main"),
    ("src/repro/experiments/fig2_motivation.py", "main"),
    ("src/repro/experiments/fig3_example.py", "main"),
    ("src/repro/experiments/fig4_speedup.py", "main"),
    ("src/repro/experiments/fig5_write_ops.py", "main"),
    ("src/repro/experiments/fig6_cost_sweep.py", "main"),
    ("src/repro/experiments/fig7_dimension_scaling.py", "main"),
    ("src/repro/experiments/fig8_online_overhead.py", "main"),
    ("src/repro/experiments/fig9_multicore_scaling.py", "main"),
    ("src/repro/experiments/harness.py", "main"),
    ("src/repro/experiments/reporting.py", "ExperimentResult.format"),
    ("src/repro/experiments/reporting.py", "ExperimentResult.show"),
    ("src/repro/experiments/table1_config.py", "main"),
    ("src/repro/experiments/table2_datasets.py", "main"),
    ("src/repro/formats/coo.py", "COOMatrix.shape"),
    ("src/repro/formats/coo.py", "COOMatrix.nnz"),
    ("src/repro/formats/csc.py", "CSCMatrix.shape"),
    ("src/repro/formats/csc.py", "CSCMatrix.nnz"),
    ("src/repro/formats/csr.py", "CSRMatrix.shape"),
    ("src/repro/gnn/layers.py", "GCNLayer.in_features"),
    ("src/repro/gnn/layers.py", "GCNLayer.out_features"),
    ("src/repro/gnn/models.py", "GCN.n_layers"),
    ("src/repro/gnn/training.py", "TrainableGCN.n_layers"),
    ("src/repro/gpu/device.py", "GPUDevice.cycles_to_seconds"),
    ("src/repro/gpu/device.py", "GPUDevice.cycles_to_microseconds"),
    ("src/repro/gpu/workload.py", "GPUWorkload.n_warps"),
    ("src/repro/gpu/workload.py", "GPUWorkload.total_issue_cycles"),
    ("src/repro/gpu/workload.py", "GPUWorkload.total_mem_bytes"),
    ("src/repro/gpu/workload.py", "GPUWorkload.total_atomic_ops"),
    ("src/repro/graphs/datasets.py", "DatasetSpec.is_power_law"),
    ("src/repro/graphs/delta.py", "EdgeUpdate.insert"),
    ("src/repro/graphs/delta.py", "EdgeUpdate.delete"),
    ("src/repro/graphs/delta.py", "EdgeUpdate.update"),
    ("src/repro/graphs/delta.py", "DeltaCSR.base"),
    ("src/repro/graphs/delta.py", "DeltaCSR.n_rows"),
    ("src/repro/graphs/delta.py", "DeltaCSR.n_cols"),
    ("src/repro/graphs/delta.py", "DeltaCSR.insert_edge"),
    ("src/repro/graphs/delta.py", "DeltaCSR.delete_edge"),
    ("src/repro/graphs/delta.py", "DeltaCSR.update_edge"),
    ("src/repro/graphs/graph.py", "Graph.n_nodes"),
    ("src/repro/multicore/cache.py", "CacheStats.accesses"),
    ("src/repro/multicore/cache.py", "CacheStats.hit_rate"),
    ("src/repro/multicore/config.py", "CacheConfig.n_lines"),
    ("src/repro/multicore/config.py", "CacheConfig.n_sets"),
    ("src/repro/multicore/config.py", "MachineConfig.mesh_width"),
    ("src/repro/multicore/config.py", "MachineConfig.mesh_height"),
    ("src/repro/multicore/config.py", "MachineConfig.dram_latency_cycles"),
    ("src/repro/multicore/config.py", "MachineConfig.dram_bytes_per_cycle"),
    ("src/repro/multicore/config.py", "MachineConfig.total_l2_bytes"),
    ("src/repro/multicore/config.py", "MachineConfig.cycles_to_seconds"),
    ("src/repro/multicore/dram.py", "DramModel.reset"),
    ("src/repro/multicore/trace.py", "AddressMap.ints_per_line"),
    ("src/repro/multicore/trace.py", "AddressMap.lines_per_dense_row"),
    ("src/repro/multicore/trace.py", "AddressMap.rp_base"),
    ("src/repro/multicore/trace.py", "AddressMap.cp_base"),
    ("src/repro/multicore/trace.py", "AddressMap.val_base"),
    ("src/repro/multicore/trace.py", "AddressMap.xw_base"),
    ("src/repro/multicore/trace.py", "AddressMap.out_base"),
    ("src/repro/multicore/trace.py", "AddressMap.total_lines"),
    ("src/repro/multicore/trace.py", "AddressMap.rp_line"),
    ("src/repro/multicore/trace.py", "AddressMap.cp_line"),
    ("src/repro/multicore/trace.py", "AddressMap.val_line"),
    ("src/repro/multicore/trace.py", "AddressMap.xw_first_line"),
    ("src/repro/multicore/trace.py", "AddressMap.out_first_line"),
    ("src/repro/multicore/trace.py", "ThreadTrace.n_accesses"),
    ("src/repro/obs/metrics.py", "Counter.value"),
    ("src/repro/obs/metrics.py", "Counter.snapshot"),
    ("src/repro/obs/metrics.py", "Gauge.set"),
    ("src/repro/obs/metrics.py", "Gauge.add"),
    ("src/repro/obs/metrics.py", "Gauge.value"),
    ("src/repro/obs/metrics.py", "Gauge.snapshot"),
    ("src/repro/obs/metrics.py", "Histogram.observe"),
    ("src/repro/obs/metrics.py", "Histogram.count"),
    ("src/repro/obs/metrics.py", "Histogram.total"),
    ("src/repro/obs/metrics.py", "Histogram.mean"),
    ("src/repro/obs/metrics.py", "Histogram.snapshot"),
    ("src/repro/obs/metrics.py", "MetricRegistry.counter"),
    ("src/repro/obs/metrics.py", "MetricRegistry.gauge"),
    ("src/repro/obs/metrics.py", "MetricRegistry.histogram"),
    ("src/repro/obs/metrics.py", "MetricRegistry.timer"),
    ("src/repro/obs/metrics.py", "MetricRegistry.reset"),
    ("src/repro/obs/rtrace.py", "Ledger.stages"),
    ("src/repro/obs/rtrace.py", "Ledger.events"),
    ("src/repro/obs/rtrace.py", "RequestContext.new"),
    ("src/repro/obs/rtrace.py", "FlightRecorder.to_dict"),
    ("src/repro/obs/slo.py", "SLObjective.to_dict"),
    ("src/repro/obs/slo.py", "SLOTracker.routes"),
    ("src/repro/obs/trace.py", "TraceRecorder.events"),
    ("src/repro/obs/trace.py", "TraceRecorder.n_spans"),
    ("src/repro/resilience/chaos.py", "ChaosCase.caught"),
    ("src/repro/resilience/chaos.py", "ChaosCase.to_dict"),
    ("src/repro/resilience/chaos.py", "ChaosReport.adversarial"),
    ("src/repro/resilience/chaos.py", "ChaosReport.silent"),
    ("src/repro/resilience/chaos.py", "ChaosReport.passed"),
    ("src/repro/resilience/chaos.py", "ChaosReport.to_dict"),
    ("src/repro/resilience/chaos.py", "ChaosReport.render"),
    ("src/repro/resilience/chaos_proc.py", "ProcChaosReport.silent"),
    ("src/repro/resilience/chaos_proc.py", "ProcChaosReport.coverage"),
    ("src/repro/resilience/chaos_proc.py", "ProcChaosReport.to_dict"),
    ("src/repro/resilience/chaos_proc.py", "ProcChaosReport.render"),
    ("src/repro/resilience/chaos_serve.py", "ServeChaosReport.silent"),
    ("src/repro/resilience/chaos_serve.py", "ServeChaosReport.coverage"),
    ("src/repro/resilience/chaos_serve.py", "ServeChaosReport.to_dict"),
    ("src/repro/resilience/chaos_serve.py", "ServeChaosReport.render"),
    ("src/repro/resilience/chaos_update.py", "UpdateChaosReport.silent"),
    ("src/repro/resilience/chaos_update.py", "UpdateChaosReport.coverage"),
    ("src/repro/resilience/chaos_update.py", "UpdateChaosReport.to_dict"),
    ("src/repro/resilience/chaos_update.py", "UpdateChaosReport.render"),
    ("src/repro/resilience/checkpoint.py", "BatchCheckpoint.done"),
    ("src/repro/resilience/corruption.py", "negative_column_index"),
    ("src/repro/resilience/corruption.py", "out_of_range_column_index"),
    ("src/repro/resilience/corruption.py", "decreasing_row_pointers"),
    ("src/repro/resilience/corruption.py", "bad_first_pointer"),
    ("src/repro/resilience/corruption.py", "bad_last_pointer"),
    ("src/repro/resilience/corruption.py", "nan_values"),
    ("src/repro/resilience/corruption.py", "inf_values"),
    ("src/repro/resilience/faults.py", "FaultPlan.total_injected"),
    ("src/repro/sample/classtier.py", "StructureClass.label"),
    ("src/repro/sample/classtier.py", "ClassPlan.to_dict"),
    ("src/repro/sample/classtier.py", "ClassTier.stats"),
    ("src/repro/sample/classtier.py", "ClassTier.clear"),
    ("src/repro/sample/classtier.py", "ClassTierStats.requests"),
    ("src/repro/sample/classtier.py", "ClassTierStats.hit_rate"),
    ("src/repro/sample/classtier.py", "ClassTierStats.to_dict"),
    ("src/repro/sample/extract.py", "EgoSubgraph.n_nodes"),
    ("src/repro/sample/extract.py", "EgoSubgraph.nnz"),
    ("src/repro/sample/index.py", "NeighborIndex.n_nodes"),
    ("src/repro/sample/index.py", "NeighborIndexCache.clear"),
}

_DECORATOR_SKIP = {"overload"}


def _decorator_names(node: ast.AST) -> "set[str]":
    names = set()
    for decorator in getattr(node, "decorator_list", []):
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _is_property_setter(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        if (
            isinstance(decorator, ast.Attribute)
            and decorator.attr in ("setter", "deleter")
        ):
            return True
    return False


def _missing_in(
    parent: ast.AST, prefix: str, rel: str
) -> "list[tuple[str, str, int]]":
    missing = []
    for node in ast.iter_child_nodes(parent):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            name = node.name
            if name.startswith("_"):
                continue
            if _decorator_names(node) & _DECORATOR_SKIP:
                continue
            if _is_property_setter(node):
                continue
            qualified = f"{prefix}{name}"
            if ast.get_docstring(node) is None:
                missing.append((rel, qualified, node.lineno))
            if isinstance(node, ast.ClassDef):
                missing.extend(
                    _missing_in(node, f"{qualified}.", rel)
                )
    return missing


def check_file(path: Path) -> "list[tuple[str, str, int]]":
    """(path, qualified name, line) for each undocumented public symbol."""
    rel = str(path.relative_to(REPO_ROOT))
    tree = ast.parse(path.read_text(), filename=rel)
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append((rel, "<module>", 1))
    missing.extend(_missing_in(tree, "", rel))
    return missing


def main(argv: "list[str] | None" = None) -> int:
    del argv
    gaps: "list[tuple[str, str, int]]" = []
    checked = 0
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        gaps.extend(check_file(path))
        checked += 1
    missing = [g for g in gaps if (g[0], g[1]) not in ALLOWLIST]
    stale = ALLOWLIST - {(rel, name) for rel, name, _ in gaps}
    failed = False
    if missing:
        for rel, name, lineno in missing:
            print(f"{rel}:{lineno}: missing docstring on {name}")
        print(f"{len(missing)} undocumented public symbol(s)")
        failed = True
    if stale:
        for rel, name in sorted(stale):
            print(f"stale allowlist entry: ({rel!r}, {name!r}) — drop it")
        failed = True
    if failed:
        return 1
    allowed = f" ({len(ALLOWLIST)} allowlisted)" if ALLOWLIST else ""
    print(f"docstring lint: {checked} files clean{allowed}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
