"""Grid-search ModelParams constants against the paper's headline targets.

Development tool (see tools/calibrate.py for the full report)."""

import itertools
import sys
from dataclasses import replace

import numpy as np

from repro.core.schedule import schedule_for_cost
from repro.gpu.device import ModelParams, quadro_rtx_6000
from repro.gpu.kernels import (
    cusparse_workload,
    gnnadvisor_workload,
    mergepath_workload,
)
from repro.gpu.timing import simulate
from repro.graphs import load_dataset
from repro.baselines.neighbor_groups import NeighborGroupSchedule

NAMES_I = ["Cora", "Citeseer", "Pubmed", "Wiki-Vote", "email-Enron",
           "email-Euall", "Nell", "PPI", "com-Amazon", "soc-BlogCatalog"]
NAMES_II = ["PROTEINS_full", "Twitter-partial", "DD", "Yeast"]
ALL = NAMES_I + NAMES_II

GRAPHS = {n: load_dataset(n).adjacency for n in ALL}
NG = {n: NeighborGroupSchedule.build(GRAPHS[n]) for n in ALL}
MP20 = {n: schedule_for_cost(GRAPHS[n], 20, min_threads=1024) for n in ALL}
MP_BY_DIM = {}
from repro.core.thread_mapping import DEFAULT_COST_BY_DIM
for dim, cost in DEFAULT_COST_BY_DIM.items():
    MP_BY_DIM[dim] = {n: schedule_for_cost(GRAPHS[n], cost, min_threads=1024)
                      for n in ALL}


def geomean(xs):
    return float(np.exp(np.log(np.asarray(list(xs), dtype=float)).mean()))


def evaluate(params: ModelParams):
    dev = quadro_rtx_6000(params)

    def t_gnna(n, dim, opt=False):
        return simulate(
            gnnadvisor_workload(GRAPHS[n], dim, dev, opt=opt, schedule=NG[n]), dev
        ).cycles

    def t_mp(n, dim, sched):
        return simulate(
            mergepath_workload(GRAPHS[n], dim, dev, schedule=sched), dev
        ).cycles

    # Fig 4 geomeans at dim 16
    mp16 = geomean(t_gnna(n, 16) / t_mp(n, 16, MP20[n]) for n in ALL)
    opt16 = geomean(t_gnna(n, 16) / t_gnna(n, 16, opt=True) for n in ALL)
    cu_I = geomean(
        t_gnna(n, 16)
        / simulate(cusparse_workload(GRAPHS[n], 16, dev), dev).cycles
        for n in NAMES_I
    )
    # Fig 7 at dim 2 and GNNA saturation, subset for speed
    f7 = ["Cora", "Pubmed", "email-Euall", "Nell", "PROTEINS_full"]
    base128 = {n: t_gnna(n, 128) for n in f7}
    gnna32 = geomean(base128[n] / t_gnna(n, 32) for n in f7)
    gnna2 = geomean(base128[n] / t_gnna(n, 2) for n in f7)
    opt2 = geomean(base128[n] / t_gnna(n, 2, opt=True) for n in f7)
    mp2 = geomean(base128[n] / t_mp(n, 2, MP_BY_DIM[2][n]) for n in f7)
    return dict(mp16=mp16, opt16=opt16, cu_I=cu_I, gnna32=gnna32,
                gnna2=gnna2, opt2=opt2, mp2=mp2)


TARGETS = dict(mp16=1.85, opt16=1.41, cu_I=0.75, gnna32=2.0, gnna2=2.2,
               opt2=9.0, mp2=27.0)


def loss(metrics):
    return sum(abs(np.log(metrics[k] / TARGETS[k])) for k in TARGETS)


if __name__ == "__main__":
    base = ModelParams()
    grid = {
        "issue_lane_cycles": [4.0, 6.0, 8.0],
        "issue_overhead_per_nnz": [2.0, 4.0, 8.0],
        "xw_cache_discount": [0.1, 0.15, 0.25],
        "atomic_bandwidth_fraction": [0.25, 0.5, 1.0],
        "hotspot_serialize_cycles": [4.0, 12.0],
        "issue_per_thread": [8.0, 16.0],
    }
    keys = list(grid)
    best, best_loss, best_m = None, float("inf"), None
    for combo in itertools.product(*(grid[k] for k in keys)):
        params = replace(base, **dict(zip(keys, combo)))
        m = evaluate(params)
        l = loss(m)
        if l < best_loss:
            best, best_loss, best_m = params, l, m
            print(f"loss {l:.3f}", dict(zip(keys, combo)),
                  {k: round(v, 2) for k, v in m.items()})
    print("\nBEST:", best)
    print(best_m)
