#!/usr/bin/env python
"""Perf-regression gate over ``BENCH_*.json`` run trajectories.

``repro.obs.export`` keeps every experiment's run history as an
append-only trajectory (``repro.obs.runs/2``).  This tool closes the
loop: it extracts scalar performance metrics from the **latest** run of
each named trajectory and compares them against a **baseline built from
the run history** (the median of the previous runs' values, which is
robust to a single noisy run in the history).

Known trajectories and their metrics:

* ``kernel`` (``python -m repro kernel-bench``): per
  ``(dataset, executor)`` throughput ``rows_per_s`` — higher is better.
* ``serve`` (``python -m repro serve-bench``): steady-state
  ``latency_ms.p95`` (lower is better) and ``throughput_rps``
  (higher is better).

A metric regresses when it is worse than the baseline by more than the
noise tolerance (default 50%, generous on purpose: CI machines are
shared and the gate must catch order-of-magnitude regressions — a
deliberately slowed backend, a plan cache that stopped hitting —
without flaking on scheduler jitter).  Trajectories with fewer than
``--min-history`` previous runs *pass with a notice*: the gate needs
history before it can judge, and the first CI run on a fresh branch
must not fail.

Exit status: 0 when every judged metric is within tolerance (or history
is insufficient), 1 when any metric regressed, 2 on usage errors (an
unknown trajectory name, a missing required record).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from statistics import median

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.export import read_trajectory  # noqa: E402

# Direction of goodness per metric kind.
HIGHER = "higher"
LOWER = "lower"


def kernel_metrics(record: dict) -> "dict[str, tuple[float, str]]":
    """``{metric: (value, direction)}`` from one kernel-bench record."""
    metrics: "dict[str, tuple[float, str]]" = {}
    for row in record.get("results") or []:
        dataset = row.get("dataset")
        executor = row.get("executor")
        value = row.get("rows_per_s")
        if dataset is None or executor is None or not value:
            continue
        metrics[f"rows_per_s[{dataset}/{executor}]"] = (float(value), HIGHER)
    return metrics


def serve_metrics(record: dict) -> "dict[str, tuple[float, str]]":
    """``{metric: (value, direction)}`` from one serve-bench record.

    The serve trajectory interleaves workloads (``full`` and ``ego``
    share ``BENCH_serve.json``), so non-default workloads get their own
    metric namespace — an ego run must never shift the full-workload
    baseline or be judged against it.  Records predating the workload
    knob count as ``full``.
    """
    serve = record.get("serve") or {}
    steady = serve.get("steady") or {}
    workload = (serve.get("config") or {}).get("workload") or "full"
    suffix = "" if workload == "full" else f"[{workload}]"
    metrics: "dict[str, tuple[float, str]]" = {}
    p95 = (steady.get("latency_ms") or {}).get("p95")
    if p95:
        metrics[f"steady.latency_ms.p95{suffix}"] = (float(p95), LOWER)
    rps = steady.get("throughput_rps")
    if rps:
        metrics[f"steady.throughput_rps{suffix}"] = (float(rps), HIGHER)
    return metrics


EXTRACTORS = {
    "kernel": kernel_metrics,
    "serve": serve_metrics,
}


def judge(
    name: str,
    runs: "list[dict]",
    tolerance: float,
    min_history: int,
) -> "tuple[list[str], list[str]]":
    """Compare the latest run of one trajectory against its history.

    Returns ``(regressions, notices)`` message lists.  Only ``ok`` runs
    form the baseline — a crashed run's numbers are not a baseline.
    """
    extractor = EXTRACTORS[name]
    ok_runs = [r for r in runs if r.get("status") == "ok"]
    if not ok_runs:
        return [], [f"{name}: no successful runs recorded yet; skipping"]
    latest = ok_runs[-1]
    history = ok_runs[:-1]
    if len(history) < min_history:
        return [], [
            f"{name}: only {len(history)} previous ok run(s) "
            f"(need {min_history}); passing without judgement"
        ]
    latest_metrics = extractor(latest)
    if not latest_metrics:
        return [], [f"{name}: latest run carries no judgeable metrics"]
    regressions: "list[str]" = []
    notices: "list[str]" = []
    for metric, (value, direction) in sorted(latest_metrics.items()):
        baseline_values = [
            extractor(run)[metric][0]
            for run in history
            if metric in extractor(run)
        ]
        if len(baseline_values) < min_history:
            notices.append(
                f"{name}/{metric}: metric too new "
                f"({len(baseline_values)} baseline run(s)); skipping"
            )
            continue
        baseline = median(baseline_values)
        if baseline <= 0:
            continue
        if direction == HIGHER:
            # value must not fall below baseline * (1 - tolerance)
            ratio = value / baseline
            regressed = ratio < 1.0 - tolerance
            verdict = f"{ratio:.2f}x baseline (floor {1.0 - tolerance:.2f}x)"
        else:
            ratio = value / baseline
            regressed = ratio > 1.0 + tolerance
            verdict = f"{ratio:.2f}x baseline (ceiling {1.0 + tolerance:.2f}x)"
        line = (
            f"{name}/{metric}: {value:.4g} vs baseline {baseline:.4g} "
            f"over {len(baseline_values)} run(s) — {verdict}"
        )
        if regressed:
            regressions.append("REGRESSION " + line)
        else:
            notices.append("ok         " + line)
    return regressions, notices


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Compare the latest kernel-bench / serve-bench run against "
            "its recorded trajectory with noise-tolerant thresholds."
        )
    )
    parser.add_argument(
        "--name",
        action="append",
        choices=sorted(EXTRACTORS),
        help="trajectory to judge (repeatable; default: all known ones "
        "that exist on disk)",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="run-record directory (default: benchmarks/results or "
        "$REPRO_BENCH_DIR)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional degradation vs baseline (default 0.5)",
    )
    parser.add_argument(
        "--min-history",
        type=int,
        default=2,
        help="previous ok runs required before judging (default 2)",
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 2) when a requested trajectory has no record",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        parser.error(f"--tolerance must be positive, got {args.tolerance}")
    if args.min_history < 1:
        parser.error(f"--min-history must be >= 1, got {args.min_history}")

    names = args.name or sorted(EXTRACTORS)
    all_regressions: "list[str]" = []
    judged = 0
    for name in names:
        runs = read_trajectory(name, args.bench_dir)
        if not runs:
            message = f"{name}: no trajectory on disk"
            if args.require:
                print(message, file=sys.stderr)
                return 2
            print(message + "; skipping")
            continue
        judged += 1
        regressions, notices = judge(
            name, runs, args.tolerance, args.min_history
        )
        for line in notices:
            print(line)
        for line in regressions:
            print(line)
        all_regressions.extend(regressions)
    if all_regressions:
        print(
            f"\nregression gate: {len(all_regressions)} metric(s) regressed",
            file=sys.stderr,
        )
        return 1
    print(f"regression gate: clean ({judged} trajectory(ies) judged)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
