#!/usr/bin/env python
"""Lint: relative links in the Markdown docs must resolve.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and image
references, and checks that every *relative* target (anything that is
not an ``http(s)``/``mailto`` URL or a pure ``#anchor``) exists on disk,
resolved against the linking file's directory.  Fragments are stripped
before the existence check (``docs/API.md#engine`` checks
``docs/API.md``).

This is what keeps the docs index honest: a renamed doc, example, or
tool breaks CI instead of silently 404ing for readers.

Exit status 0 when every link resolves; 1 with a listing otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links/images: [text](target) / ![alt](target).  Reference-style
# definitions: [label]: target
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _strip_code(text: str) -> str:
    """Remove fenced and inline code spans (links there aren't links)."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def doc_files() -> list[Path]:
    """The files whose links this lint guards."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def check_file(path: Path) -> list[str]:
    """Broken-link messages for one Markdown file."""
    rel = path.relative_to(REPO_ROOT)
    text = _strip_code(path.read_text())
    targets = _INLINE.findall(text) + _REFDEF.findall(text)
    broken = []
    for target in targets:
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(f"{rel}: broken relative link -> {target}")
    return broken


def main(argv: "list[str] | None" = None) -> int:
    del argv
    broken: list[str] = []
    checked = 0
    for path in doc_files():
        broken.extend(check_file(path))
        checked += 1
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken link(s) across {checked} files")
        return 1
    print(f"docs link check: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
