#!/usr/bin/env python
"""Lint: relative links and intra-doc anchors in the docs must resolve.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and image
references, and checks that

* every *relative* target (anything that is not an
  ``http(s)``/``mailto`` URL or a pure ``#anchor``) exists on disk,
  resolved against the linking file's directory; and
* every fragment — a pure ``#anchor`` or the ``#anchor`` tail of a
  relative link to another Markdown file — names a real heading in the
  target document, using GitHub's heading-to-anchor slug rules
  (lowercase, punctuation stripped, spaces to hyphens, ``-1``/``-2``
  suffixes for duplicates).

This is what keeps the docs index honest: a renamed doc, example,
tool, or section heading breaks CI instead of silently 404ing for
readers.

Exit status 0 when every link resolves; 1 with a listing otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links/images: [text](target) / ![alt](target).  Reference-style
# definitions: [label]: target
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _strip_fences(text: str) -> str:
    """Remove fenced code blocks (headings/links there aren't real)."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _strip_code(text: str) -> str:
    """Remove fenced and inline code spans (links there aren't links)."""
    return re.sub(r"`[^`]*`", "", _strip_fences(text))


def doc_files() -> list[Path]:
    """The files whose links this lint guards."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


_HEADING = re.compile(r"^(#{1,6})\s+(.+?)\s*#*\s*$", re.MULTILINE)
# GitHub keeps word characters, hyphens, and spaces; everything else
# (backticks, slashes, dots, parens, ...) is dropped before the
# space-to-hyphen pass.
_SLUG_DROP = re.compile(r"[^\w\- ]")


def heading_anchors(path: Path) -> set[str]:
    """GitHub-style anchor slugs for every heading in ``path``."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    # Only fenced blocks are stripped here: a heading that is entirely
    # inline code (``## `repro.shard```) still gets an anchor on GitHub.
    for match in _HEADING.finditer(_strip_fences(path.read_text())):
        title = re.sub(r"`([^`]*)`", r"\1", match.group(2))
        slug = _SLUG_DROP.sub("", title.lower()).replace(" ", "-")
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def check_file(path: Path, anchor_cache: "dict[Path, set[str]]") -> list[str]:
    """Broken-link and broken-anchor messages for one Markdown file."""
    rel = path.relative_to(REPO_ROOT)
    text = _strip_code(path.read_text())
    targets = _INLINE.findall(text) + _REFDEF.findall(text)
    broken = []

    def anchors_of(target_path: Path) -> set[str]:
        if target_path not in anchor_cache:
            anchor_cache[target_path] = heading_anchors(target_path)
        return anchor_cache[target_path]

    for target in targets:
        if target.startswith(_EXTERNAL):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors_of(path):
                broken.append(f"{rel}: broken anchor -> {target}")
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            broken.append(f"{rel}: broken relative link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                broken.append(
                    f"{rel}: broken anchor -> {target} "
                    f"(no such heading in {resolved.name})"
                )
    return broken


def main(argv: "list[str] | None" = None) -> int:
    del argv
    broken: list[str] = []
    checked = 0
    anchor_cache: "dict[Path, set[str]]" = {}
    for path in doc_files():
        broken.extend(check_file(path, anchor_cache))
        checked += 1
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken link(s) across {checked} files")
        return 1
    print(f"docs link check: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
