#!/usr/bin/env python
"""Lint: public kernel/executor entry points must carry ``@instrumented``.

Walks ``src/repro/{core,gpu,multicore}`` and checks, via the AST (no
imports), that every *entry point* is decorated with
``repro.obs.instrumented`` (bare, called, or attribute form).  An entry
point is:

* a public top-level function whose name starts with ``run_``,
  ``execute_`` or ``simulate``, or appears in :data:`REQUIRED_FUNCTIONS`;
* a ``run`` method of a class whose name ends in ``System``.

This is the contract that keeps ``--profile`` runs complete: a new
scheduler/executor/simulator added without a span silently disappears
from traces and run records.  Opt-outs (e.g. trivial dispatchers) go in
:data:`EXEMPT` with a reason.

A second rule guards the failure-domain modules: everything in
:data:`OBS_REQUIRED_MODULES` (circuit breakers, worker supervision,
health evaluation, the serving chaos matrix, the request-trace and SLO
layers) must emit at least one ``repro.obs`` signal — a
``counter``/``gauge``/``histogram``/``span``/``instant`` call on one of
the :data:`_OBS_RECEIVERS` aliases or an ``@obs.instrumented``
decorator.  A guard that trips invisibly defeats the point of having
observable failure domains.

Exit status 0 when clean; 1 with a listing of violations otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGES = ("core", "engine", "gpu", "multicore", "sample", "serve", "shard")

ENTRY_PREFIXES = ("run_", "execute_", "simulate")
REQUIRED_FUNCTIONS = {
    "kernel_time",
    "build_schedule",
    "schedule_for_cost",
    "merge_path_spmm",
    "scheduling_time",
    "sweep_core_counts",
}
# (module-relative path, qualified name) -> reason for exemption.
EXEMPT: dict[tuple[str, str], str] = {}

# Modules that must emit at least one repro.obs signal.
OBS_REQUIRED_MODULES = (
    "src/repro/graphs/delta.py",
    "src/repro/serve/epoch.py",
    "src/repro/serve/guard.py",
    "src/repro/serve/health.py",
    "src/repro/serve/service.py",
    "src/repro/resilience/chaos_serve.py",
    "src/repro/resilience/chaos_update.py",
    "src/repro/resilience/chaos_proc.py",
    # Process isolation: segment publishes/attaches/checksum failures and
    # every pool-side kill/quarantine/republish must leave a signal, or a
    # reaped worker looks identical to one that never ran.
    "src/repro/shm.py",
    "src/repro/serve/procpool.py",
    "src/repro/obs/rtrace.py",
    "src/repro/obs/slo.py",
    # The sampling subsystem: every module must be visible in traces —
    # a sampler or class-tier decision that leaves no signal makes the
    # ego-workload latency attribution unreconcilable.
    "src/repro/sample/index.py",
    "src/repro/sample/sampler.py",
    "src/repro/sample/extract.py",
    "src/repro/sample/classtier.py",
    "src/repro/sample/bench.py",
    # Sharded serving: partition builds, replays, halo traffic, and the
    # chaos demonstrations must all leave signals — a silent shard tier
    # makes per-shard failure containment unverifiable.
    "src/repro/shard/partition.py",
    "src/repro/shard/router.py",
    "src/repro/shard/bench.py",
    "src/repro/resilience/chaos_shard.py",
)
_OBS_CALLS = {"counter", "gauge", "histogram", "span", "instant", "instrumented"}
# Receiver names a signal call may hang off: `obs.counter(...)` in
# consumer modules, `_metrics.counter(...)` / `_trace.span(...)` inside
# repro.obs itself (which imports submodules under aliases to avoid
# circularity).
_OBS_RECEIVERS = {"obs", "_metrics", "_trace"}


def _decorator_names(node: ast.AST) -> set[str]:
    names = set()
    for decorator in node.decorator_list:
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _is_entry_point(name: str) -> bool:
    if name.startswith("_"):
        return False
    return name.startswith(ENTRY_PREFIXES) or name in REQUIRED_FUNCTIONS


def check_file(path: Path) -> list[str]:
    """Violation messages for one source file."""
    rel = path.relative_to(REPO_ROOT)
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []

    def missing(node, qualname: str) -> None:
        if (str(rel), qualname) in EXEMPT:
            return
        if "instrumented" not in _decorator_names(node):
            violations.append(
                f"{rel}:{node.lineno}: {qualname} is a public entry point "
                "but lacks @obs.instrumented"
            )

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_entry_point(node.name):
                missing(node, node.name)
        elif isinstance(node, ast.ClassDef) and node.name.endswith("System"):
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "run"
                ):
                    missing(item, f"{node.name}.run")
    return violations


def check_obs_usage(path: Path) -> list[str]:
    """Violation messages when a failure-domain module emits no signal."""
    rel = path.relative_to(REPO_ROOT)
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in _OBS_RECEIVERS
            and node.attr in _OBS_CALLS
        ):
            return []
    return [
        f"{rel}: failure-domain module emits no repro.obs signal "
        "(expected obs.counter/gauge/histogram/span/instant or "
        "@obs.instrumented)"
    ]


def main(argv: "list[str] | None" = None) -> int:
    del argv
    violations: list[str] = []
    checked = 0
    for package in PACKAGES:
        package_dir = REPO_ROOT / "src" / "repro" / package
        for path in sorted(package_dir.rglob("*.py")):
            violations.extend(check_file(path))
            checked += 1
    for module in OBS_REQUIRED_MODULES:
        violations.extend(check_obs_usage(REPO_ROOT / module))
    if violations:
        print("\n".join(violations))
        print(f"\n{len(violations)} uninstrumented entry point(s) "
              f"across {checked} files")
        return 1
    print(f"instrumentation lint: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
