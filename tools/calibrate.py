"""Calibration harness: prints model outputs against the paper's targets.

Not part of the shipped library — a development tool used to fit the
ModelParams constants (see EXPERIMENTS.md for the record of the fit).
Run:  python tools/calibrate.py [--full]
"""

import sys
import time

import numpy as np

from repro.baselines import AWBGCNModel
from repro.core.schedule import schedule_for_cost
from repro.core.thread_mapping import DEFAULT_COST_BY_DIM
from repro.gpu import kernel_time, quadro_rtx_6000, scheduling_time
from repro.gpu.kernels import mergepath_workload
from repro.gpu.timing import simulate
from repro.graphs import load_dataset, power_law_dataset_names, structured_dataset_names

DEV = quadro_rtx_6000()

SUBSET_I = ["Cora", "Citeseer", "Pubmed", "Wiki-Vote", "email-Enron",
            "email-Euall", "Nell", "PPI", "com-Amazon", "soc-BlogCatalog"]
SUBSET_II = ["PROTEINS_full", "Twitter-partial", "DD", "Yeast"]


def geomean(xs):
    xs = np.asarray(list(xs), dtype=float)
    return float(np.exp(np.log(xs).mean()))


def fig2():
    print("=== Fig 2 (us): want AWB best on Cora/Citeseer; GNNA < AWB on Pubmed;"
          " GNNA ~ AWB/6 on Nell; serial-MP worst on Cora/Citeseer but < AWB on Nell ===")
    awb = AWBGCNModel()
    for name, dim in [("Cora", 16), ("Citeseer", 16), ("Pubmed", 16), ("Nell", 64)]:
        A = load_dataset(name).adjacency
        row = {"awb": awb.completion_time(A, dim) * 1e6}
        for k in ["row-splitting", "gnnadvisor", "merge-path-serial", "mergepath"]:
            row[k] = kernel_time(k, A, dim).microseconds
        print(f"{name:10s}", {k: round(v, 1) for k, v in row.items()})


def fig4(names_i, names_ii):
    print("=== Fig 4 (speedup over GNNAdvisor, dim16): want geomeans"
          " MP=1.85 OPT=1.41 MP/OPT=1.31; cuSPARSE worst on I, best/par on II ===")
    mp, opt, cus = [], [], []
    for name in names_i + names_ii:
        A = load_dataset(name).adjacency
        base = kernel_time("gnnadvisor", A, 16).cycles
        s_mp = base / kernel_time("mergepath", A, 16).cycles
        s_opt = base / kernel_time("gnnadvisor-opt", A, 16).cycles
        s_cu = base / kernel_time("cusparse", A, 16).cycles
        mp.append(s_mp); opt.append(s_opt); cus.append(s_cu)
        print(f"{name:16s} cu={s_cu:5.2f} opt={s_opt:5.2f} mp={s_mp:5.2f}")
    print(f"GEOMEAN  cu={geomean(cus):.2f}  opt={geomean(opt):.2f}  "
          f"mp={geomean(mp):.2f}  mp/opt={geomean(mp)/geomean(opt):.2f}")


def fig6(names):
    print("=== Fig 6 best cost per dim: want {128:50, 64:35, 32:30, 16:20, 8:15, 4:15, 2:50} ===")
    costs = [2, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    graphs = {n: load_dataset(n).adjacency for n in names}
    schedules = {(n, c): schedule_for_cost(graphs[n], c, min_threads=1024)
                 for n in names for c in costs}
    for dim in [2, 4, 8, 16, 32, 64, 128]:
        per_cost = []
        for c in costs:
            times = [simulate(mergepath_workload(graphs[n], dim, DEV,
                                                 schedule=schedules[(n, c)]), DEV).cycles
                     for n in names]
            per_cost.append(geomean(times))
        best = costs[int(np.argmin(per_cost))]
        norm = per_cost[0] / np.array(per_cost)
        print(f"dim {dim:3d}: best cost {best:2d}   perf-vs-cost2: "
              + " ".join(f"{c}:{v:.2f}" for c, v in zip(costs, norm)))


def fig7(names):
    print("=== Fig 7 speedup vs GNNAdvisor@128: want GNNA ~2x@<=32 flat;"
          " OPT ~9x@2; MP ~27x@2 ===")
    dims = [128, 64, 32, 16, 8, 4, 2]
    graphs = {n: load_dataset(n).adjacency for n in names}
    base = {n: kernel_time("gnnadvisor", graphs[n], 128).cycles for n in names}
    for kernel in ["gnnadvisor", "gnnadvisor-opt", "mergepath"]:
        row = []
        for dim in dims:
            ratios = [base[n] / kernel_time(kernel, graphs[n], dim).cycles
                      for n in names]
            row.append(geomean(ratios))
        print(f"{kernel:16s} " + " ".join(f"{d}:{v:5.2f}" for d, v in zip(dims, row)))


def fig8(names):
    print("=== Fig 8 online scheduling overhead: want geomean ~2%, Cora ~10%, com-Amazon <1% ===")
    overheads = []
    for name in names:
        A = load_dataset(name).adjacency
        sch = schedule_for_cost(A, 20, min_threads=1024)
        t_sched = scheduling_time(sch.n_threads, A.n_rows + A.nnz, DEV)
        t_kernel = simulate(mergepath_workload(A, 16, DEV, schedule=sch), DEV).cycles
        ov = t_sched / (t_sched + 2 * t_kernel)
        overheads.append(ov)
        print(f"{name:16s} overhead {100*ov:5.1f}%")
    print(f"GEOMEAN overhead {100*geomean(overheads):.1f}%")


if __name__ == "__main__":
    full = "--full" in sys.argv
    names_i = power_law_dataset_names() if full else SUBSET_I
    names_ii = structured_dataset_names() if full else SUBSET_II
    t0 = time.time()
    fig2()
    fig4(names_i, names_ii)
    fig6(["Cora", "Pubmed", "email-Euall", "Nell"])
    fig7(["Cora", "Pubmed", "email-Euall", "Nell", "PROTEINS_full"])
    fig8(names_i)
    print(f"[{time.time()-t0:.1f}s]")
