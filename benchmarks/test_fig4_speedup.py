"""Benchmark: regenerate Figure 4 (speedups over GNNAdvisor, full suite)."""

from conftest import run_once

from repro.experiments import fig4_speedup
from repro.experiments.reporting import geometric_mean


def test_fig4_speedup_full_suite(benchmark, show):
    result = run_once(benchmark, fig4_speedup.run)
    show(result)
    mp = geometric_mean(result.column("mergepath"))
    opt = geometric_mean(result.column("gnnadvisor-opt"))
    # Paper: 1.85x and 1.41x; the model reproduces the ordering and the
    # rough magnitudes (see EXPERIMENTS.md for the recorded values).
    assert mp > opt > 1.0
    assert mp > 1.4
    # cuSPARSE must lose to all three on the small power-law graphs and
    # stand out on Twitter-partial.
    cu = dict(zip(result.column("graph"), result.column("cusparse")))
    assert cu["Cora"] < 1.0 and cu["Nell"] < 1.0
    assert cu["Twitter-partial"] > 2.0
