"""Ablation: locality-aware thread placement on the Table I machine.

The paper's stated future work (Section V-D).  Compares the Figure 9
baseline placement (thread i on core i) against tile placement, which
puts consecutive merge-path threads — the ones sharing split rows and
adjacent CSR lines — on mesh-adjacent cores.
"""

from conftest import run_once

from repro.core.schedule import MergePathSchedule
from repro.experiments.reporting import ExperimentResult
from repro.graphs import load_dataset
from repro.multicore import MulticoreSystem, table1_machine
from repro.multicore.locality import (
    apply_placement,
    linear_placement,
    tile_placement,
)
from repro.multicore.trace import mergepath_traces

GRAPHS = ("Cora", "Pubmed")
N_CORES = 256
DIM = 16


def _run():
    rows = []
    for name in GRAPHS:
        adjacency = load_dataset(name).adjacency
        machine = table1_machine(N_CORES)
        schedule = MergePathSchedule(adjacency, N_CORES)
        traces = mergepath_traces(schedule, DIM, simd_width=machine.simd_width)
        results = {}
        for label, placement in (
            ("linear", linear_placement(N_CORES)),
            ("tiled", tile_placement(machine, N_CORES, tile=4)),
        ):
            slots = apply_placement(traces, placement, N_CORES)
            results[label] = MulticoreSystem(machine).run(slots)
        rows.append(
            (
                name,
                results["linear"].completion_cycles,
                results["tiled"].completion_cycles,
                results["linear"].completion_cycles
                / results["tiled"].completion_cycles,
            )
        )
    return ExperimentResult(
        title=f"Ablation: thread placement ({N_CORES} cores, dim {DIM})",
        headers=["graph", "linear_cycles", "tiled_cycles", "tiled_gain"],
        rows=rows,
        notes=["gain > 1 means tile placement helps (shorter sharing paths)"],
    )


def test_ablation_locality_placement(benchmark, show):
    result = run_once(benchmark, _run)
    show(result)
    gains = result.column("tiled_gain")
    # Placement must not catastrophically hurt; document the measured gain.
    assert all(g > 0.85 for g in gains)
