"""Benchmark: regenerate Figure 5 (write-operation distribution)."""

from conftest import run_once

from repro.experiments import fig5_write_ops


def test_fig5_write_ops_full_suite(benchmark, show):
    result = run_once(benchmark, fig5_write_ops.run)
    show(result)
    frac = dict(zip(result.column("graph"), result.column("atomic_frac")))
    # Paper shape: email-Euall far fewer atomics than email-Enron; the
    # structured Type II graphs mostly regular writes.
    assert frac["email-Euall"] < 0.4 * frac["email-Enron"]
    assert frac["Yeast"] < 0.25
    assert frac["OVCAR-8H"] < 0.25
    assert frac["soc-BlogCatalog"] > 0.8
