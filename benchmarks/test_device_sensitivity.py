"""Sensitivity study: do the paper's orderings survive a different GPU?

Re-runs the Figure 4 comparison on an A100-class device (more SMs, much
more bandwidth, deeper warp residency).  The paper's conclusions are
about algorithm structure, so the orderings — MergePath-SpMM >
GNNAdvisor-opt > GNNAdvisor on power-law inputs — should hold on both
balance points even as the ratios move.
"""

from conftest import run_once

from repro.experiments.reporting import ExperimentResult, geometric_mean
from repro.gpu import a100_like, kernel_time, quadro_rtx_6000

from repro.graphs import load_dataset

GRAPHS = ("Cora", "Pubmed", "email-Euall", "Nell", "com-Amazon", "DD")


def _run():
    rows = []
    for device in (quadro_rtx_6000(), a100_like()):
        mp, opt = [], []
        for name in GRAPHS:
            adjacency = load_dataset(name).adjacency
            base = kernel_time("gnnadvisor", adjacency, 16, device).cycles
            mp.append(
                base / kernel_time("mergepath", adjacency, 16, device,
                                   cost=20).cycles
            )
            opt.append(
                base / kernel_time("gnnadvisor-opt", adjacency, 16,
                                   device).cycles
            )
        rows.append(
            (
                device.name,
                geometric_mean(mp),
                geometric_mean(opt),
                geometric_mean(mp) / geometric_mean(opt),
            )
        )
    return ExperimentResult(
        title="Device sensitivity: Figure 4 geomeans on two GPUs (dim 16)",
        headers=["device", "mergepath", "gnnadvisor-opt", "mp/opt"],
        rows=rows,
    )


def test_device_sensitivity(benchmark, show):
    result = run_once(benchmark, _run)
    show(result)
    for row in result.rows:
        _, mp, opt, ratio = row
        assert mp > opt > 1.0
        assert ratio > 1.0
