"""Ablation: AWB-GCN's auto-tuner benefit (evil-row rebalancing).

Compares the AWB-GCN model with and without the runtime auto-tuner across
power-law and structured inputs, reproducing the accelerator-side argument
of Section II: the tuner's value concentrates on power-law inputs.
"""

from conftest import run_once

from repro.baselines import AWBGCNModel
from repro.experiments.reporting import ExperimentResult
from repro.graphs import load_dataset

GRAPHS = ("Cora", "Oregon-1", "Nell", "soc-BlogCatalog", "Yeast", "DD")


def _run():
    model = AWBGCNModel()
    rows = []
    for name in GRAPHS:
        adjacency = load_dataset(name).adjacency
        rows.append(
            (
                name,
                model.completion_time(adjacency, 16) * 1e6,
                model.completion_time_without_tuner(adjacency, 16) * 1e6,
                model.speedup_from_tuner(adjacency, 16),
                len(model.detect_evil_rows(adjacency)),
            )
        )
    return ExperimentResult(
        title="Ablation: AWB-GCN auto-tuner (dim 16)",
        headers=["graph", "tuned_us", "untuned_us", "tuner_speedup",
                 "evil_rows"],
        rows=rows,
    )


def test_ablation_awb_tuner(benchmark, show):
    result = run_once(benchmark, _run)
    show(result)
    speedup = dict(zip(result.column("graph"), result.column("tuner_speedup")))
    assert all(s >= 1.0 for s in speedup.values())
    # Evil-row rebalancing matters on power-law inputs, not structured ones.
    assert speedup["Nell"] > 2.0
    assert speedup["Yeast"] < 1.2
