"""Benchmark: regenerate Figure 9 (1000-core multicore scaling)."""

from conftest import run_once

from repro.experiments import fig9_multicore_scaling


def test_fig9_multicore_scaling(benchmark, show):
    result = run_once(benchmark, fig9_multicore_scaling.run)
    show(result)
    by_key = {(row[0], row[1]): row for row in result.rows}
    n_counts = 5  # 64..1024
    last = 1 + n_counts  # column index of the 1024-core value

    def speedup(graph, kernel):
        return 1.0 / by_key[(graph, kernel)][last]

    # GNNAdvisor struggles on the extreme evil-row graph (Nell); the
    # proposed kernel keeps scaling there (paper: ~2x better at 1024).
    assert speedup("Nell", "mergepath") > 1.5 * speedup("Nell", "gnnadvisor")
    # Both kernels scale on the well-behaved graphs.
    assert speedup("Pubmed", "mergepath") > 3.0
    assert speedup("Twitter-partial", "mergepath") > 3.0
    # Cora is MergePath-SpMM's weakest scaler (merge-path cost < 25 at
    # 1024 cores), trailing the larger Type I inputs.
    assert speedup("Cora", "mergepath") < speedup("Nell", "mergepath")
