"""Benchmark: regenerate Figure 7 (speedup across dimension sizes)."""

from conftest import run_once

from repro.experiments import fig7_dimension_scaling


def test_fig7_dimension_scaling(benchmark, show):
    result = run_once(benchmark, fig7_dimension_scaling.run)
    show(result)
    rows = {row[0]: row[1:] for row in result.rows}
    dims = (128, 64, 32, 16, 8, 4, 2)
    gnna = dict(zip(dims, rows["gnnadvisor"]))
    opt = dict(zip(dims, rows["gnnadvisor-opt"]))
    mp = dict(zip(dims, rows["mergepath"]))
    # GNNAdvisor saturates below 32: little further gain from 16 to 2.
    assert gnna[2] < 1.5 * gnna[16]
    # GNNAdvisor-opt keeps scaling below 32 where the baseline cannot.
    assert opt[2] > 1.5 * gnna[2]
    # MergePath-SpMM leads at every dimension size.
    for dim in dims:
        assert mp[dim] > gnna[dim]
    assert mp[2] > opt[2]
