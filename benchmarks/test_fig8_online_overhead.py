"""Benchmark: regenerate Figure 8 (online scheduling overhead)."""

from conftest import run_once

from repro.experiments import fig8_online_overhead
from repro.experiments.reporting import geometric_mean


def test_fig8_online_overhead(benchmark, show):
    result = run_once(benchmark, fig8_online_overhead.run)
    show(result)
    over = dict(zip(result.column("graph"), result.column("overhead_%")))
    # Paper: ~2% geomean, ~10% worst case (Cora), <1% for com-Amazon.
    assert geometric_mean(result.column("overhead_%")) < 5.0
    assert over["Cora"] == max(over.values())
    assert over["Cora"] < 15.0
    assert over["com-Amazon"] < 1.0
