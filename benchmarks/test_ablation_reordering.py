"""Ablation: MergePath-SpMM needs no reordering.

The paper claims the algorithm "requires no preprocessing, reordering, or
extension of the sparse input matrix".  This bench quantifies it: the
merge-path schedule's load balance and modeled time are (nearly)
invariant under row reorderings, while row-splitting's bottleneck moves
by large factors — reordering is a knob *other* strategies need.
"""

from conftest import run_once

from repro.baselines import RowSplitSchedule
from repro.core.schedule import schedule_for_cost
from repro.experiments.reporting import ExperimentResult
from repro.gpu import mergepath_workload, quadro_rtx_6000, simulate
from repro.graphs import load_dataset
from repro.graphs.reorder import (
    degree_sort_order,
    permute_rows_and_columns,
    random_order,
)

GRAPH = "Wiki-Vote"
THREADS = 1024


def _run():
    device = quadro_rtx_6000()
    base = load_dataset(GRAPH).adjacency
    orderings = {
        "original": base,
        "degree-sorted": permute_rows_and_columns(base, degree_sort_order(base)),
        "shuffled": permute_rows_and_columns(base, random_order(base, seed=3)),
    }
    rows = []
    for label, matrix in orderings.items():
        schedule = schedule_for_cost(matrix, 20, min_threads=1024)
        timing = simulate(
            mergepath_workload(matrix, 16, device, schedule=schedule), device
        )
        rs = RowSplitSchedule.build(matrix, THREADS)
        rows.append(
            (
                label,
                schedule.statistics.atomic_write_fraction,
                timing.cycles,
                rs.load_imbalance,
            )
        )
    return ExperimentResult(
        title=f"Ablation: reordering sensitivity ({GRAPH}, dim 16)",
        headers=["ordering", "mp_atomic_frac", "mp_cycles", "rowsplit_imbalance"],
        rows=rows,
        notes=[
            "merge-path columns should barely move across orderings; "
            "row-splitting imbalance should swing",
        ],
    )


def test_ablation_reordering(benchmark, show):
    result = run_once(benchmark, _run)
    show(result)
    cycles = result.column("mp_cycles")
    assert max(cycles) / min(cycles) < 1.15  # merge-path: reorder-invariant
    imbalance = dict(zip(result.column("ordering"),
                         result.column("rowsplit_imbalance")))
    # Degree sorting concentrates the evil rows into one chunk.
    assert imbalance["degree-sorted"] > 2.0 * imbalance["shuffled"]
