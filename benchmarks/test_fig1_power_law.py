"""Benchmark: regenerate Figure 1 (degree-distribution power-law fits)."""

from conftest import run_once

from repro.experiments import fig1_power_law


def test_fig1_power_law(benchmark, show):
    result = run_once(benchmark, fig1_power_law.run)
    show(result)
    classes = dict(zip(result.column("graph"), result.column("classified")))
    assert classes["Nell"] == "power-law"
    assert classes["Yeast"] == "structured"
