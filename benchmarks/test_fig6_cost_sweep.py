"""Benchmark: regenerate Figure 6 (merge-path cost sweep per dim)."""

from conftest import run_once

from repro.experiments import fig6_cost_sweep


def test_fig6_cost_sweep(benchmark, show):
    result = run_once(benchmark, fig6_cost_sweep.run)
    show(result)
    best = {row[0]: row[1] for row in result.rows}
    # Every dimension's optimum is an interior/cost>2 value: the sweep is
    # meaningful at all dims (the paper's exact argmax values are recorded
    # against ours in EXPERIMENTS.md).
    for dim, cost in best.items():
        assert cost >= 10, (dim, cost)
