"""Benchmark: regenerate Figure 3 (worked merge-path example)."""

from conftest import run_once

from repro.experiments import fig3_example


def test_fig3_example(benchmark, show):
    result = run_once(benchmark, fig3_example.run)
    show(result)
    thread2 = result.rows[1]
    assert thread2[1] == "(1, 6)" and thread2[2] == "(3, 11)"
