"""Benchmark: regenerate Table II (dataset statistics, all 23 graphs)."""

from conftest import run_once

from repro.experiments import table2_datasets


def test_table2_datasets(benchmark, show):
    result = run_once(benchmark, table2_datasets.run)
    show(result)
    assert len(result.rows) == 23
    for row in result.rows:
        assert row[2] == row[3] and row[4] == row[5] and row[8] == row[9]
