"""Benchmark: two-engine underutilization study (Section I motivation)."""

from conftest import run_once

from repro.experiments import engine_balance


def test_engine_balance(benchmark, show):
    result = run_once(benchmark, engine_balance.run)
    show(result)
    # A unified engine always recovers the idle time.
    assert all(s >= 1.0 for s in result.column("unified_speedup"))
    # At least one graph leaves an engine mostly idle.
    assert max(result.column("idle_frac")) > 0.4
