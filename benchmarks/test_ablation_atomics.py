"""Ablation: the value of complete-row tracking.

Forces MergePath-SpMM to update every output row atomically (GNNAdvisor's
indiscriminate-atomics policy grafted onto the merge-path schedule) and
measures the modeled slowdown.  This isolates the paper's core design
decision — partial/complete row classification — from the load-balancing
itself.
"""

from conftest import run_once

from repro.experiments.reporting import ExperimentResult, geometric_mean
from repro.gpu import mergepath_workload, quadro_rtx_6000, simulate
from repro.graphs import load_dataset

GRAPHS = ("Cora", "Pubmed", "email-Euall", "Nell", "com-Amazon",
          "PROTEINS_full", "DD")


def _run():
    device = quadro_rtx_6000()
    rows = []
    for name in GRAPHS:
        adjacency = load_dataset(name).adjacency
        normal = simulate(
            mergepath_workload(adjacency, 16, device, cost=20), device
        ).cycles
        forced = simulate(
            mergepath_workload(
                adjacency, 16, device, cost=20, force_all_atomic=True
            ),
            device,
        ).cycles
        rows.append((name, normal, forced, forced / normal))
    return ExperimentResult(
        title="Ablation: all-atomic MergePath-SpMM (dim 16, cost 20)",
        headers=["graph", "normal_cycles", "all_atomic_cycles", "slowdown"],
        rows=rows,
    )


def test_ablation_force_all_atomic(benchmark, show):
    result = run_once(benchmark, _run)
    show(result)
    slowdowns = result.column("slowdown")
    assert all(s >= 1.0 for s in slowdowns)
    # Complete-row tracking must matter in aggregate.
    assert geometric_mean(slowdowns) > 1.1
