"""Wall-clock throughput benchmarks of the Python executors themselves.

Unlike the figure benchmarks (which report *modeled* GPU time), these time
the actual NumPy executors — useful for tracking regressions in the
library's own performance.
"""

import numpy as np
import pytest

from repro.core import execute_vectorized, schedule_for_cost
from repro.baselines import NeighborGroupSchedule
from repro.graphs import load_dataset


@pytest.fixture(scope="module")
def pubmed():
    graph = load_dataset("Pubmed")
    return graph.adjacency, graph.random_features(16, seed=0)


def test_throughput_schedule_build(benchmark, pubmed):
    adjacency, _ = pubmed
    schedule = benchmark(schedule_for_cost, adjacency, 20)
    assert schedule.n_threads > 1000


def test_throughput_mergepath_executor(benchmark, pubmed):
    adjacency, features = pubmed
    schedule = schedule_for_cost(adjacency, 20)
    output, _ = benchmark(execute_vectorized, schedule, features)
    assert output.shape == (adjacency.n_rows, 16)


def test_throughput_reference_spmm(benchmark, pubmed):
    adjacency, features = pubmed
    output = benchmark(adjacency.multiply_dense, features)
    assert output.shape == (adjacency.n_rows, 16)


def test_throughput_neighbor_group_build(benchmark, pubmed):
    adjacency, _ = pubmed
    schedule = benchmark(NeighborGroupSchedule.build, adjacency)
    assert schedule.n_groups > 0


def test_executors_agree_on_pubmed(pubmed):
    adjacency, features = pubmed
    schedule = schedule_for_cost(adjacency, 20)
    output, _ = execute_vectorized(schedule, features)
    assert np.allclose(output, adjacency.multiply_dense(features))
