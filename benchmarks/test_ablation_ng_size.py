"""Ablation: GNNAdvisor's neighbor-group size sensitivity.

GNNAdvisor's NG size is "user-parameterizable" with the average degree as
the default (Section IV-A).  This bench sweeps it: small groups maximize
parallelism but multiply atomic updates and per-group overhead; large
groups amortize overhead but re-introduce imbalance inside groups.  The
default should sit near the sweet spot — context for why the paper's
baseline is a fair one.
"""

from conftest import run_once

from repro.experiments.reporting import ExperimentResult
from repro.gpu import kernel_time, quadro_rtx_6000
from repro.graphs import load_dataset

GRAPHS = ("Pubmed", "email-Euall", "Nell")
NG_SIZES = (1, 2, 4, 8, 16, 32, None)  # None = average-degree default


def _run():
    device = quadro_rtx_6000()
    rows = []
    for name in GRAPHS:
        adjacency = load_dataset(name).adjacency
        times = {}
        for ng in NG_SIZES:
            label = "default" if ng is None else str(ng)
            times[label] = kernel_time(
                "gnnadvisor", adjacency, 16, device, group_size=ng
            ).microseconds
        best = min(times.values())
        row = [name] + [times[k] for k in times] + [
            times["default"] / best
        ]
        rows.append(tuple(row))
    headers = (
        ["graph"]
        + [("ng_default" if ng is None else f"ng_{ng}") for ng in NG_SIZES]
        + ["default_vs_best"]
    )
    return ExperimentResult(
        title="Ablation: GNNAdvisor neighbor-group size (dim 16, us)",
        headers=headers,
        rows=rows,
        notes=["default_vs_best of 1.0 means the average-degree default "
               "is optimal for that graph"],
    )


def test_ablation_ng_size(benchmark, show):
    result = run_once(benchmark, _run)
    show(result)
    # The average-degree default is within 2.5x of the best swept size.
    assert all(row[-1] < 2.5 for row in result.rows)
