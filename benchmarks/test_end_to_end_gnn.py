"""Benchmark: end-to-end 2-layer GCN inference comparison (extension)."""

from conftest import run_once

from repro.experiments import end_to_end_gnn
from repro.experiments.reporting import geometric_mean


def test_end_to_end_gnn(benchmark, show):
    result = run_once(benchmark, end_to_end_gnn.run)
    show(result)
    speedups = result.column("speedup")
    assert all(s > 1.0 for s in speedups)
    assert geometric_mean(speedups) > 1.3
