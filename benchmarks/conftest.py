"""Benchmark configuration.

Every benchmark regenerates one paper table/figure through its experiment
harness.  The resulting tables are printed (visible with ``pytest -s``)
and, regardless of capture mode, persisted to ``benchmarks/results/`` —
those files are the regenerated figures/tables themselves.  Heavy
experiments run a single round; the tables are the deliverable, the
timing is informative.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


@pytest.fixture
def show(request):
    """Print an ExperimentResult and persist it to benchmarks/results/."""

    def _show(result):
        text = result.format()
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        return result

    return _show
