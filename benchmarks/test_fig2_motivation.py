"""Benchmark: regenerate Figure 2 (motivation kernel times)."""

from conftest import run_once

from repro.experiments import fig2_motivation


def test_fig2_motivation(benchmark, show):
    result = run_once(benchmark, fig2_motivation.run)
    show(result)
    data = {row[0]: row for row in result.rows}
    awb = result.headers.index("awb-gcn")
    gnna = result.headers.index("gnnadvisor")
    serial = result.headers.index("merge-path-serial")
    # Paper shape: AWB-GCN wins the small graphs, loses Nell to GNNAdvisor;
    # the serial merge-path baseline is the worst case on small graphs.
    assert data["Cora"][awb] < data["Cora"][gnna] < data["Cora"][serial]
    assert data["Nell"][gnna] < data["Nell"][awb]
