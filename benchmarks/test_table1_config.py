"""Benchmark: regenerate Table I (simulator parameters)."""

from conftest import run_once

from repro.experiments import table1_config


def test_table1_config(benchmark, show):
    result = run_once(benchmark, table1_config.run)
    show(result)
    text = result.format()
    assert "1024 single-threaded" in text
    assert "limited-4" in text
