"""Unit tests for merge-path cost auto-tuning and the harness CLI."""

import numpy as np
import pytest

from repro.core import tune_merge_path_cost
from repro.core.cost_tuning import DEFAULT_COST_GRID
from repro.experiments.harness import EXPERIMENTS, run_experiments


class TestCostTuning:
    def test_sweep_structure(self, small_power_law):
        sweep = tune_merge_path_cost(small_power_law, 16, costs=(2, 10, 30))
        assert sweep.costs == (2, 10, 30)
        assert len(sweep.cycles) == 3
        assert sweep.best_cost in sweep.costs
        assert sweep.normalized_performance[0] == pytest.approx(1.0)

    def test_best_cost_minimizes_cycles(self, small_power_law):
        sweep = tune_merge_path_cost(small_power_law, 16)
        best_index = list(sweep.costs).index(sweep.best_cost)
        assert sweep.cycles[best_index] == sweep.cycles.min()

    def test_suite_aggregation_is_geomean(self, small_power_law, small_structured):
        a = tune_merge_path_cost(small_power_law, 16, costs=(2, 20))
        b = tune_merge_path_cost(small_structured, 16, costs=(2, 20))
        both = tune_merge_path_cost(
            [small_power_law, small_structured], 16, costs=(2, 20)
        )
        expected = np.sqrt(a.cycles * b.cycles)
        assert np.allclose(both.cycles, expected)

    def test_default_grid_matches_paper_range(self):
        assert DEFAULT_COST_GRID[0] == 2
        assert DEFAULT_COST_GRID[-1] == 50

    def test_rejects_empty_suite(self):
        with pytest.raises(ValueError, match="at least one matrix"):
            tune_merge_path_cost([], 16)

    def test_rejects_unsorted_grid(self, small_power_law):
        with pytest.raises(ValueError, match="ascending"):
            tune_merge_path_cost(small_power_law, 16, costs=(30, 2))


class TestHarness:
    def test_registry_covers_all_artifacts(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "table1", "table2", "e2e", "engines",
        }

    def test_run_experiments_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiments(["fig99"])

    def test_run_and_persist(self, tmp_path):
        results = run_experiments(["fig3", "table1"], output_dir=tmp_path)
        assert set(results) == {"fig3", "table1"}
        assert (tmp_path / "fig3.txt").exists()
        text = (tmp_path / "table1.txt").read_text()
        assert "1024 single-threaded" in text

    def test_cli_list(self, capsys):
        from repro.experiments.harness import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
