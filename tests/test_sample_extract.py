"""Property tests: ego-subgraph extraction vs the SciPy fancy-indexing oracle.

``extract_subgraph(A, nodes)`` is semantically ``A[nodes][:, nodes]``.
These tests pin that equivalence over arbitrary square CSR structures
(including duplicate entries, empty rows, and explicit zeros), the
local→global mapping contract, the add-only-where-missing self-loop
semantics, and the PR 7 version-stamp propagation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats import CSRMatrix
from repro.sample.extract import extract_subgraph, gather_features

scipy_sparse = pytest.importorskip("scipy.sparse")


@st.composite
def square_csr(draw, max_nodes=16, max_row_nnz=8):
    """Arbitrary small square adjacencies, duplicates and zeros included."""
    n = draw(st.integers(1, max_nodes))
    lengths = draw(
        st.lists(st.integers(0, max_row_nnz), min_size=n, max_size=n)
    )
    row_pointers = np.concatenate(([0], np.cumsum(lengths)))
    nnz = int(row_pointers[-1])
    cols = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return CSRMatrix(
        n_rows=n,
        n_cols=n,
        row_pointers=row_pointers,
        column_indices=np.array(cols, dtype=np.int64),
        values=np.array(values),
    )


@st.composite
def matrix_and_nodes(draw):
    matrix = draw(square_csr())
    count = draw(st.integers(1, matrix.n_rows))
    nodes = draw(
        st.permutations(range(matrix.n_rows)).map(
            lambda p: np.array(p[:count], dtype=np.int64)
        )
    )
    return matrix, nodes


@given(case=matrix_and_nodes())
@settings(max_examples=120, deadline=None)
def test_extraction_matches_scipy_fancy_indexing(case):
    matrix, nodes = case
    sub = extract_subgraph(matrix, nodes)
    oracle = scipy_sparse.csr_matrix(
        (matrix.values, matrix.column_indices, matrix.row_pointers),
        shape=matrix.shape,
    )[nodes][:, nodes]
    assert sub.shape == (len(nodes), len(nodes))
    assert np.allclose(sub.to_dense(), oracle.toarray(), atol=1e-12)


@given(case=matrix_and_nodes())
@settings(max_examples=80, deadline=None)
def test_mapping_row_k_is_global_row_nodes_k(case):
    matrix, nodes = case
    sub = extract_subgraph(matrix, nodes)
    dense = matrix.to_dense()
    for local, node in enumerate(nodes):
        assert np.allclose(
            sub.to_dense()[local], dense[node][nodes], atol=1e-12
        )


@given(case=matrix_and_nodes())
@settings(max_examples=80, deadline=None)
def test_self_loops_added_only_where_structurally_missing(case):
    matrix, nodes = case
    sub = extract_subgraph(matrix, nodes, add_self_loops=True)
    # Structural diagonal of the induced subgraph (explicit zeros count).
    ones = matrix.with_values(np.ones_like(matrix.values))
    structure = scipy_sparse.csr_matrix(
        (ones.values, ones.column_indices, ones.row_pointers),
        shape=ones.shape,
    )[nodes][:, nodes]
    has_diag = structure.diagonal() > 0
    plain = extract_subgraph(matrix, nodes)
    expected = plain.to_dense()
    expected[~has_diag, ~has_diag] += 1.0
    assert np.allclose(sub.to_dense(), expected, atol=1e-12)
    # Each inserted loop is one extra stored entry, nothing more.
    assert sub.nnz == plain.nnz + int((~has_diag).sum())


@given(case=matrix_and_nodes())
@settings(max_examples=60, deadline=None)
def test_canonical_layout_and_version(case):
    matrix, nodes = case
    sub = extract_subgraph(matrix.with_version(4), nodes)
    assert sub.version == 4
    # Row-major with sorted columns inside each row.
    for row in range(sub.n_rows):
        cols = sub.column_indices[
            sub.row_pointers[row]:sub.row_pointers[row + 1]
        ]
        assert np.all(np.diff(cols) >= 0)


class TestExtractEdgeCases:
    def test_unversioned_parent_stays_unversioned(self, csr_small):
        square = CSRMatrix.from_dense(csr_small.to_dense())
        assert extract_subgraph(square, np.array([0, 1])).version is None

    def test_full_node_set_in_order_is_identity(self, dense_small):
        matrix = CSRMatrix.from_dense(dense_small)
        sub = extract_subgraph(matrix, np.arange(matrix.n_rows))
        assert np.allclose(sub.to_dense(), dense_small)

    def test_validation(self, dense_small):
        matrix = CSRMatrix.from_dense(dense_small)
        with pytest.raises(ValueError, match="square"):
            extract_subgraph(
                CSRMatrix.from_dense(np.ones((2, 3))), np.array([0])
            )
        with pytest.raises(ValueError, match="empty"):
            extract_subgraph(matrix, np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="distinct"):
            extract_subgraph(matrix, np.array([1, 1]))
        with pytest.raises(ValueError, match="lie in"):
            extract_subgraph(matrix, np.array([99]))

    def test_gather_features_orders_and_copies(self):
        features = np.arange(12.0).reshape(4, 3)
        nodes = np.array([2, 0])
        gathered = gather_features(features, nodes)
        assert np.array_equal(gathered, features[[2, 0]])
        gathered[0, 0] = -1.0
        assert features[2, 0] == 6.0  # the original is untouched

    def test_gather_features_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            gather_features(np.arange(4.0), np.array([0]))
