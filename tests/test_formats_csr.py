"""Unit tests for the CSR container."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, SparseFormatError


class TestConstruction:
    def test_from_dense_round_trip(self, dense_small):
        csr = CSRMatrix.from_dense(dense_small)
        assert np.array_equal(csr.to_dense(), dense_small)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            CSRMatrix.from_dense(np.ones(4))

    def test_from_arrays_defaults_to_unit_values(self):
        csr = CSRMatrix.from_arrays([0, 2, 3], [0, 1, 2], n_cols=3)
        assert np.array_equal(csr.values, [1.0, 1.0, 1.0])

    def test_from_arrays_defaults_to_square(self):
        csr = CSRMatrix.from_arrays([0, 1, 2], [0, 1])
        assert csr.shape == (2, 2)

    def test_identity(self):
        eye = CSRMatrix.identity(5)
        assert np.array_equal(eye.to_dense(), np.eye(5))

    def test_identity_zero(self):
        assert CSRMatrix.identity(0).nnz == 0

    def test_arrays_coerced_to_canonical_dtypes(self):
        csr = CSRMatrix.from_arrays(
            np.array([0, 1], dtype=np.int32), np.array([0], dtype=np.int16)
        )
        assert csr.row_pointers.dtype == np.int64
        assert csr.column_indices.dtype == np.int64
        assert csr.values.dtype == np.float64


class TestProperties:
    def test_shape_and_nnz(self, csr_small, dense_small):
        assert csr_small.shape == dense_small.shape
        assert csr_small.nnz == np.count_nonzero(dense_small)

    def test_row_lengths_match_dense(self, csr_small, dense_small):
        assert np.array_equal(
            csr_small.row_lengths, (dense_small != 0).sum(axis=1)
        )

    def test_density(self):
        csr = CSRMatrix.from_dense(np.eye(4))
        assert csr.density == pytest.approx(0.25)

    def test_density_empty_matrix(self):
        csr = CSRMatrix.from_arrays([0], [], n_cols=0)
        assert csr.density == 0.0


class TestRowAccess:
    def test_row_slice_contents(self, paper_example):
        cols, vals = paper_example.row_slice(1)
        assert len(cols) == 8
        assert len(vals) == 8

    def test_row_slice_empty_row(self, paper_example):
        cols, vals = paper_example.row_slice(0)
        assert len(cols) == 0 and len(vals) == 0

    def test_row_slice_out_of_range(self, paper_example):
        with pytest.raises(IndexError):
            paper_example.row_slice(10)
        with pytest.raises(IndexError):
            paper_example.row_slice(-1)

    def test_iter_rows_covers_all_nnz(self, csr_small):
        total = sum(len(cols) for _, cols, _ in csr_small.iter_rows())
        assert total == csr_small.nnz


class TestConversionsAndOps:
    def test_to_coo_round_trip(self, csr_small):
        assert np.array_equal(
            csr_small.to_coo().to_csr().to_dense(), csr_small.to_dense()
        )

    def test_to_csc_preserves_dense(self, csr_small):
        assert np.array_equal(csr_small.to_csc().to_dense(), csr_small.to_dense())

    def test_transpose(self, csr_small):
        assert np.array_equal(
            csr_small.transpose().to_dense(), csr_small.to_dense().T
        )

    def test_transpose_rectangular(self):
        dense = np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]])
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.transpose().to_dense(), dense.T)

    def test_multiply_dense_matches_matmul(self, csr_small, dense_small):
        x = np.random.default_rng(0).random((12, 5))
        assert np.allclose(csr_small.multiply_dense(x), dense_small @ x)

    def test_multiply_dense_shape_mismatch(self, csr_small):
        with pytest.raises(ValueError, match="dimension mismatch"):
            csr_small.multiply_dense(np.ones((5, 3)))

    def test_multiply_dense_chunking_consistent(self):
        # Exercise the chunked path by monkeypatching would be invasive;
        # instead verify a matrix larger than one chunk boundary interval
        # still agrees with dense matmul on a prefix structure.
        rng = np.random.default_rng(3)
        dense = (rng.random((200, 200)) < 0.1) * 1.0
        csr = CSRMatrix.from_dense(dense)
        x = rng.random((200, 3))
        assert np.allclose(csr.multiply_dense(x), dense @ x)

    def test_sorted_indices_sorts_each_row(self):
        csr = CSRMatrix.from_arrays([0, 3], [2, 0, 1], [10.0, 20.0, 30.0], n_cols=3)
        out = csr.sorted_indices()
        assert np.array_equal(out.column_indices, [0, 1, 2])
        assert np.array_equal(out.values, [20.0, 30.0, 10.0])
        assert np.array_equal(out.to_dense(), csr.to_dense())

    def test_equality(self, csr_small):
        clone = CSRMatrix.from_dense(csr_small.to_dense())
        assert csr_small == clone

    def test_inequality_different_values(self, csr_small):
        other = CSRMatrix(
            n_rows=csr_small.n_rows,
            n_cols=csr_small.n_cols,
            row_pointers=csr_small.row_pointers,
            column_indices=csr_small.column_indices,
            values=csr_small.values * 2,
        )
        assert csr_small != other

    def test_not_hashable(self, csr_small):
        with pytest.raises(TypeError):
            hash(csr_small)


class TestValidationOnConstruction:
    def test_bad_row_pointer_length(self):
        with pytest.raises(SparseFormatError, match="length"):
            CSRMatrix(n_rows=3, n_cols=3, row_pointers=np.array([0, 1]),
                      column_indices=np.array([0]), values=np.array([1.0]))

    def test_decreasing_row_pointers(self):
        with pytest.raises(SparseFormatError, match="non-decreasing"):
            CSRMatrix(n_rows=2, n_cols=2, row_pointers=np.array([0, 2, 1]),
                      column_indices=np.array([0]), values=np.array([1.0]))

    def test_column_out_of_range(self):
        with pytest.raises(SparseFormatError, match="column indices"):
            CSRMatrix(n_rows=1, n_cols=2, row_pointers=np.array([0, 1]),
                      column_indices=np.array([5]), values=np.array([1.0]))

    def test_value_length_mismatch(self):
        with pytest.raises(SparseFormatError, match="equal length"):
            CSRMatrix(n_rows=1, n_cols=2, row_pointers=np.array([0, 1]),
                      column_indices=np.array([0]), values=np.array([1.0, 2.0]))


class TestStrictValidation:
    """Opt-in strict checks: duplicates, order, finiteness."""

    def _arrays(self):
        # Two rows: row 0 -> cols {0, 2}, row 1 -> col 1.
        return (
            np.array([0, 2, 3]),
            np.array([0, 2, 1]),
            np.array([1.0, 2.0, 3.0]),
        )

    def test_plain_validation_accepts_duplicates(self):
        rp, ci, vals = self._arrays()
        ci[1] = 0  # duplicate within row 0
        from repro.formats.validation import validate_csr

        validate_csr(rp, ci, vals, 2, 3)  # structurally legal

    def test_strict_rejects_duplicates(self):
        rp, ci, vals = self._arrays()
        ci[1] = 0
        from repro.formats.validation import validate_csr

        with pytest.raises(SparseFormatError, match="duplicate"):
            validate_csr(rp, ci, vals, 2, 3, strict=True)

    def test_strict_rejects_unsorted_rows(self):
        rp, ci, vals = self._arrays()
        ci[0], ci[1] = 2, 0  # row 0 decreasing
        from repro.formats.validation import validate_csr

        with pytest.raises(SparseFormatError, match="sorted"):
            validate_csr(rp, ci, vals, 2, 3, strict=True)

    def test_strict_allows_row_boundary_decrease(self):
        # col sequence 0,2 | 1 decreases across the row boundary: legal.
        rp, ci, vals = self._arrays()
        from repro.formats.validation import validate_csr

        validate_csr(rp, ci, vals, 2, 3, strict=True)

    def test_strict_rejects_non_finite_values(self):
        rp, ci, vals = self._arrays()
        vals[2] = np.inf
        from repro.formats.validation import validate_csr

        with pytest.raises(SparseFormatError, match="NaN/Inf"):
            validate_csr(rp, ci, vals, 2, 3, strict=True)

    def test_matrix_validate_method(self, csr_small):
        csr_small.validate()
        csr_small.validate(strict=True)

    def test_strict_empty_matrix(self):
        from repro.formats.validation import validate_csr

        validate_csr(
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            0, 0, strict=True,
        )


class TestFingerprint:
    def test_identical_structure_identical_fingerprint(self, dense_small):
        a = CSRMatrix.from_dense(dense_small)
        b = CSRMatrix.from_dense(dense_small.copy())
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_different_structure_different_fingerprint(self, csr_small):
        other = CSRMatrix.from_dense(np.eye(csr_small.n_rows))
        assert csr_small.fingerprint() != other.fingerprint()

    def test_shape_is_part_of_the_key(self):
        # Same (empty) arrays, different logical shapes.
        a = CSRMatrix.from_dense(np.zeros((2, 3)))
        b = CSRMatrix.from_dense(np.zeros((2, 4)))
        assert a.fingerprint() != b.fingerprint()

    def test_values_excluded_by_default(self, dense_small):
        a = CSRMatrix.from_dense(dense_small)
        scaled = CSRMatrix.from_dense(dense_small * 2.0)
        assert a.fingerprint() == scaled.fingerprint()
        assert a.fingerprint(include_values=True) != scaled.fingerprint(
            include_values=True
        )

    def test_include_values_matches_for_equal_values(self, dense_small):
        a = CSRMatrix.from_dense(dense_small)
        b = CSRMatrix.from_dense(dense_small.copy())
        assert a.fingerprint(include_values=True) == b.fingerprint(
            include_values=True
        )

    def test_fingerprint_is_cached(self, csr_small):
        first = csr_small.fingerprint()
        assert csr_small.fingerprint() is first
        valued = csr_small.fingerprint(include_values=True)
        assert csr_small.fingerprint(include_values=True) is valued
        assert valued != first


class TestFingerprintStaleness:
    """Regressions for the stale-fingerprint bug class.

    A cached digest over mutable arrays could describe content that no
    longer exists — and every schedule/plan/batch key in the stack hangs
    off it.  Three defenses are pinned here: frozen buffers, sanctioned
    value rebinding, and version-precise hashing.
    """

    def test_arrays_are_frozen_after_construction(self, csr_small):
        with pytest.raises(ValueError):
            csr_small.values[0] = 99.0
        with pytest.raises(ValueError):
            csr_small.column_indices[0] = 0
        with pytest.raises(ValueError):
            csr_small.row_pointers[0] = 0

    def test_construction_freezes_caller_arrays_share(self, dense_small):
        # from_dense builds fresh arrays; they must come out read-only.
        matrix = CSRMatrix.from_dense(dense_small)
        assert not matrix.values.flags.writeable
        assert not matrix.column_indices.flags.writeable
        assert not matrix.row_pointers.flags.writeable

    def test_with_values_refreshes_value_fingerprint(self, dense_small):
        a = CSRMatrix.from_dense(dense_small)
        structural = a.fingerprint()
        valued = a.fingerprint(include_values=True)
        b = a.with_values(a.values * 3.0)
        assert b.fingerprint() == structural  # structure shared
        assert b.fingerprint(include_values=True) != valued
        np.testing.assert_allclose(b.values, a.values * 3.0)
        assert b.row_pointers is a.row_pointers

    def test_value_fingerprint_detects_rebound_buffer(self, dense_small):
        # The cached value digest is keyed on buffer identity: a sibling
        # with different values never inherits it.
        a = CSRMatrix.from_dense(dense_small)
        fp_a = a.fingerprint(include_values=True)
        b = a.with_values(a.values.copy())
        assert b.fingerprint(include_values=True) == fp_a  # equal content
        c = a.with_values(np.full_like(a.values, 5.0))
        assert c.fingerprint(include_values=True) != fp_a

    def test_with_version_changes_fingerprint(self, csr_small):
        stamped = csr_small.with_version(3)
        assert stamped.fingerprint() != csr_small.fingerprint()
        assert stamped.with_version(3) is stamped  # no-op restamp
        restamped = stamped.with_version(4)
        assert restamped.fingerprint() != stamped.fingerprint()

    def test_epochs_never_share_fingerprints(self, csr_small):
        # Two epochs of a live graph with *identical* structure must
        # still key caches differently.
        fps = {csr_small.with_version(v).fingerprint() for v in range(4)}
        assert len(fps) == 4


class TestVersionPropagation:
    """Derived matrices must carry the live-graph epoch stamp.

    ``to_csc`` / ``transpose`` / ``sorted_indices`` build new containers
    from a (possibly version-stamped) epoch snapshot.  Dropping the
    stamp would silently move the derivative back into the unversioned
    fingerprint space, where it aliases a different epoch's cache
    entries — exactly the staleness class PR 7's version-precise
    fingerprints exist to prevent.
    """

    def test_to_csc_carries_version(self, csr_small):
        stamped = csr_small.with_version(5)
        assert stamped.to_csc().version == 5
        assert csr_small.to_csc().version is None  # unstamped stays so

    def test_csc_round_trip_keeps_fingerprint_epoch_precise(self, csr_small):
        stamped = csr_small.with_version(5)
        back = stamped.to_csc().to_csr()
        assert back.version == 5
        assert back.fingerprint() == stamped.fingerprint()
        assert back.fingerprint() != csr_small.fingerprint()

    def test_transpose_carries_version(self, csr_small):
        stamped = csr_small.with_version(7)
        transposed = stamped.transpose()
        assert transposed.version == 7
        # Double transpose lands back on the stamped fingerprint, not
        # the unversioned one.
        assert (
            transposed.transpose().fingerprint() == stamped.fingerprint()
        )

    def test_sorted_indices_carries_version(self, csr_small):
        stamped = csr_small.with_version(9)
        assert stamped.sorted_indices().version == 9
        assert csr_small.sorted_indices().version is None

    def test_distinct_epochs_stay_distinct_through_derivation(
        self, csr_small
    ):
        # Structurally identical epochs must not collide after a
        # conversion round trip either.
        fps = {
            csr_small.with_version(v).to_csc().to_csr().fingerprint()
            for v in range(3)
        }
        assert len(fps) == 3
