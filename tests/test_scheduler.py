"""Unit tests for online/offline schedule caching (Section III-D)."""

import threading

import numpy as np
import pytest

from repro.core import ScheduleCache, SchedulingMode
from repro.core.spmm import execute_vectorized
from repro.formats import CSRMatrix


def _with_values(matrix: CSRMatrix, values: np.ndarray) -> CSRMatrix:
    """Same structure as ``matrix``, different non-zero values."""
    return CSRMatrix(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        row_pointers=matrix.row_pointers.copy(),
        column_indices=matrix.column_indices.copy(),
        values=values,
    )


class TestScheduleCache:
    def test_offline_computes_once(self, small_power_law):
        cache = ScheduleCache(mode=SchedulingMode.OFFLINE)
        first = cache.get(small_power_law, 20)
        second = cache.get(small_power_law, 20)
        assert first is second
        assert cache.schedule_computations == 1

    def test_distinct_costs_distinct_schedules(self, small_power_law):
        cache = ScheduleCache()
        a = cache.get(small_power_law, 10)
        b = cache.get(small_power_law, 40)
        assert a is not b
        assert cache.schedule_computations == 2

    def test_distinct_matrices_distinct_entries(
        self, small_power_law, small_structured
    ):
        cache = ScheduleCache()
        cache.get(small_power_law, 20)
        cache.get(small_structured, 20)
        assert cache.schedule_computations == 2

    def test_online_clear_forces_recompute(self, small_power_law):
        cache = ScheduleCache(mode=SchedulingMode.ONLINE)
        cache.get(small_power_law, 20)
        cache.clear()
        cache.get(small_power_law, 20)
        assert cache.schedule_computations == 1  # clear also resets counters

    def test_within_inference_reuse(self, small_power_law):
        # Online mode still reuses the schedule across the two kernel
        # invocations of one inference (cleared only at boundaries).
        cache = ScheduleCache(mode=SchedulingMode.ONLINE)
        first = cache.get(small_power_law, 20)
        second = cache.get(small_power_law, 20)
        assert first is second

    def test_wallclock_accounting(self, small_power_law):
        cache = ScheduleCache()
        cache.get(small_power_law, 20)
        assert cache.total_scheduling_seconds > 0.0

    def test_min_threads_part_of_key(self, paper_example):
        cache = ScheduleCache()
        a = cache.get(paper_example, 5, min_threads=4)
        b = cache.get(paper_example, 5, min_threads=20)
        assert a.n_threads != b.n_threads

    def test_schedule_is_valid(self, small_power_law):
        cache = ScheduleCache()
        cache.get(small_power_law, 20).validate()

    def test_content_keying_shares_across_objects(self, small_power_law):
        # Two distinct objects with identical structure must share one
        # schedule — keys are content fingerprints, never id().
        clone = CSRMatrix(
            n_rows=small_power_law.n_rows,
            n_cols=small_power_law.n_cols,
            row_pointers=small_power_law.row_pointers.copy(),
            column_indices=small_power_law.column_indices.copy(),
            values=small_power_law.values.copy(),
        )
        cache = ScheduleCache()
        first = cache.get(small_power_law, 20)
        second = cache.get(clone, 20)
        assert first is second
        assert cache.schedule_computations == 1

    def test_hit_rebinds_to_callers_values(self, small_power_law, rng):
        # Regression: a structural hit from a same-structure matrix with
        # *different* values must execute with the caller's values, not
        # the build-time matrix's.
        doubled = _with_values(small_power_law, small_power_law.values * 2.0)
        cache = ScheduleCache()
        cache.get(small_power_law, 20)
        schedule = cache.get(doubled, 20)
        assert cache.schedule_computations == 1  # still shared structurally
        assert schedule.matrix is doubled
        dense = rng.random((doubled.n_cols, 4))
        output, _ = execute_vectorized(schedule, dense)
        assert np.allclose(output, doubled.multiply_dense(dense))

    def test_rebind_rejects_structural_mismatch(
        self, small_power_law, small_structured
    ):
        cache = ScheduleCache()
        schedule = cache.get(small_power_law, 20)
        with pytest.raises(ValueError, match="structurally different"):
            schedule.rebind(small_structured)

    def test_lru_bound_evicts_oldest(self, small_power_law):
        cache = ScheduleCache(max_entries=2)
        cache.get(small_power_law, 10)
        cache.get(small_power_law, 20)
        cache.get(small_power_law, 40)
        assert cache.entries == 2
        assert cache.evictions == 1
        # The evicted cost-10 schedule must be recomputed on next get.
        cache.get(small_power_law, 10)
        assert cache.schedule_computations == 4

    def test_unbounded_when_max_entries_none(self, small_power_law):
        cache = ScheduleCache(max_entries=None)
        for cost in (5, 10, 20, 40, 80):
            cache.get(small_power_law, cost)
        assert cache.entries == 5
        assert cache.evictions == 0

    def test_concurrent_gets_compute_once(self, small_power_law):
        # Regression: racing workers must not duplicate the scheduling
        # work or observe distinct schedule objects for one key.
        cache = ScheduleCache()
        schedules, errors = [], []
        barrier = threading.Barrier(8)

        def worker() -> None:
            try:
                barrier.wait()
                for _ in range(20):
                    schedules.append(cache.get(small_power_law, 20))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cache.schedule_computations == 1
        assert all(schedule is schedules[0] for schedule in schedules)
