"""Unit tests for online/offline schedule caching (Section III-D)."""

import pytest

from repro.core import ScheduleCache, SchedulingMode


class TestScheduleCache:
    def test_offline_computes_once(self, small_power_law):
        cache = ScheduleCache(mode=SchedulingMode.OFFLINE)
        first = cache.get(small_power_law, 20)
        second = cache.get(small_power_law, 20)
        assert first is second
        assert cache.schedule_computations == 1

    def test_distinct_costs_distinct_schedules(self, small_power_law):
        cache = ScheduleCache()
        a = cache.get(small_power_law, 10)
        b = cache.get(small_power_law, 40)
        assert a is not b
        assert cache.schedule_computations == 2

    def test_distinct_matrices_distinct_entries(
        self, small_power_law, small_structured
    ):
        cache = ScheduleCache()
        cache.get(small_power_law, 20)
        cache.get(small_structured, 20)
        assert cache.schedule_computations == 2

    def test_online_clear_forces_recompute(self, small_power_law):
        cache = ScheduleCache(mode=SchedulingMode.ONLINE)
        cache.get(small_power_law, 20)
        cache.clear()
        cache.get(small_power_law, 20)
        assert cache.schedule_computations == 1  # clear also resets counters

    def test_within_inference_reuse(self, small_power_law):
        # Online mode still reuses the schedule across the two kernel
        # invocations of one inference (cleared only at boundaries).
        cache = ScheduleCache(mode=SchedulingMode.ONLINE)
        first = cache.get(small_power_law, 20)
        second = cache.get(small_power_law, 20)
        assert first is second

    def test_wallclock_accounting(self, small_power_law):
        cache = ScheduleCache()
        cache.get(small_power_law, 20)
        assert cache.total_scheduling_seconds > 0.0

    def test_min_threads_part_of_key(self, paper_example):
        cache = ScheduleCache()
        a = cache.get(paper_example, 5, min_threads=4)
        b = cache.get(paper_example, 5, min_threads=20)
        assert a.n_threads != b.n_threads

    def test_schedule_is_valid(self, small_power_law):
        cache = ScheduleCache()
        cache.get(small_power_law, 20).validate()
