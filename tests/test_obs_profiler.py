"""Profiled sessions, @instrumented semantics, reports and run records."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.report import kernel_breakdowns, render_text


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    obs.set_registry(None)
    obs.set_recorder(None)


class TestProfiled:
    def test_installs_and_restores(self):
        assert not obs.enabled()
        with obs.profiled() as session:
            assert obs.enabled()
            assert obs.get_registry() is session.registry
            assert obs.get_recorder() is session.trace
        assert not obs.enabled()
        assert obs.get_recorder() is None
        assert session.wall_seconds is not None

    def test_nested_sessions_shadow(self):
        with obs.profiled() as outer:
            obs.counter("c").inc()
            with obs.profiled() as inner:
                obs.counter("c").inc(10)
            assert obs.get_registry() is outer.registry
        assert outer.registry.counter("c").value == 1
        assert inner.registry.counter("c").value == 10

    def test_writes_trace_file_even_on_error(self, tmp_path):
        path = tmp_path / "trace.json"
        with pytest.raises(RuntimeError):
            with obs.profiled(trace_path=path):
                with obs.span("doomed"):
                    raise RuntimeError("x")
        document = json.loads(path.read_text())
        (event,) = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert "error" in event["args"]


class TestInstrumented:
    def test_works_with_collection_disabled(self):
        @obs.instrumented
        def f(x):
            return x + 1

        assert not obs.collecting()
        assert f(1) == 2  # plain passthrough, no registry required

    def test_preserves_metadata_and_marker(self):
        @obs.instrumented
        def documented():
            """Doc."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "Doc."
        assert documented.__instrumented__ is True

    def test_records_span_call_and_timer(self):
        @obs.instrumented(name="unit.f")
        def f():
            return 42

        with obs.profiled() as session:
            assert f() == 42
            assert f() == 42
        snapshot = {e["name"]: e for e in session.snapshot()}
        assert snapshot["calls.unit.f"]["value"] == 2
        assert snapshot["time.unit.f"]["count"] == 2
        assert session.trace.n_spans == 2

    def test_exception_propagates_and_marks_span(self):
        @obs.instrumented(name="unit.bad")
        def bad():
            raise KeyError("nope")

        with obs.profiled() as session:
            with pytest.raises(KeyError):
                bad()
        (event,) = [e for e in session.trace.events if e["ph"] == "X"]
        assert "KeyError" in event["args"]["error"]

    def test_default_span_name_drops_package_prefix(self):
        @obs.instrumented
        def f():
            pass

        span_name = f.__instrumented_span__
        assert span_name.startswith("test_obs_profiler.")
        assert span_name.endswith(".f")

    def test_noop_overhead_is_small(self):
        import time

        def plain():
            return 1

        @obs.instrumented
        def wrapped():
            return 1

        n = 50_000
        started = time.perf_counter()
        for _ in range(n):
            plain()
        base = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(n):
            wrapped()
        instrumented = time.perf_counter() - started
        # The disabled wrapper is two global loads and a branch; allow a
        # generous CI-noise margin but catch accidental always-on paths.
        assert instrumented < base * 10 + 0.05


class TestReport:
    def test_render_text_sections(self):
        with obs.profiled() as session:
            obs.counter("c", graph="x").inc(3)
            obs.gauge("g").set(1.5)
            obs.timer("t").observe(0.25)
        text = render_text(session.snapshot())
        assert "Counters" in text and "c{graph=x}" in text and "3" in text
        assert "Gauges" in text
        assert "Timers / histograms" in text

    def test_render_empty(self):
        assert "no metrics" in render_text([])

    def test_kernel_breakdowns(self):
        with obs.profiled() as session:
            obs.gauge(
                "gpu.kernel.cycles", kernel="k", component="issue"
            ).set(10.0)
            obs.gauge(
                "gpu.kernel.cycles", kernel="k", component="total"
            ).set(25.0)
        breakdowns = kernel_breakdowns(session.snapshot())
        assert breakdowns == {"k": {"issue": 10.0, "total": 25.0}}
        assert "Kernel cycle breakdown" in render_text(session.snapshot())


class TestExport:
    def test_write_and_read_round_trip(self, tmp_path):
        record = obs.run_record("unit", metrics=[], wall_seconds=1.5)
        path = obs.write_run_record(record, directory=tmp_path)
        assert path.name == "BENCH_unit.json"
        loaded = obs.latest_record(directory=tmp_path)
        assert loaded["name"] == "unit"
        assert loaded["wall_seconds"] == 1.5
        assert loaded["status"] == "ok"

    def test_latest_by_name_and_missing(self, tmp_path):
        obs.write_run_record(obs.run_record("a"), directory=tmp_path)
        obs.write_run_record(obs.run_record("b"), directory=tmp_path)
        assert obs.latest_record(name="a", directory=tmp_path)["name"] == "a"
        assert obs.latest_record(name="zz", directory=tmp_path) is None
        assert obs.latest_record(directory=tmp_path / "nope") is None

    def test_corrupt_records_skipped(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        obs.write_run_record(obs.run_record("ok"), directory=tmp_path)
        assert [r["name"] for r in obs.read_records(tmp_path)] == ["ok"]

    def test_env_var_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert obs.records_dir() == tmp_path

    def test_diff_snapshots(self):
        before = [
            {"name": "c", "kind": "counter", "labels": {}, "value": 5},
            {"name": "t", "kind": "timer", "labels": {}, "count": 2,
             "total": 4.0, "mean": 2.0},
            {"name": "g", "kind": "gauge", "labels": {}, "value": 1.0},
        ]
        after = [
            {"name": "c", "kind": "counter", "labels": {}, "value": 9},
            {"name": "t", "kind": "timer", "labels": {}, "count": 3,
             "total": 7.0, "mean": 7 / 3},
            {"name": "g", "kind": "gauge", "labels": {}, "value": 3.0},
            {"name": "new", "kind": "counter", "labels": {}, "value": 1},
        ]
        delta = {e["name"]: e for e in obs.diff_snapshots(before, after)}
        assert delta["c"]["value"] == 4
        assert delta["t"]["count"] == 1 and delta["t"]["total"] == 3.0
        assert delta["g"]["value"] == 3.0  # gauges keep the after value
        assert delta["new"]["value"] == 1

    def test_diff_drops_untouched_counters(self):
        entry = {"name": "c", "kind": "counter", "labels": {}, "value": 5}
        assert obs.diff_snapshots([entry], [dict(entry)]) == []
