"""Cross-validation of the sparse substrate against scipy.sparse.

scipy is a dev-only dependency; these tests independently confirm the
containers, conversions, and every SpMM implementation against a mature
external library rather than only against each other.
"""

import numpy as np
import pytest

scipy_sparse = pytest.importorskip("scipy.sparse")

from repro.core import merge_path_spmm
from repro.baselines import gnnadvisor_spmm
from repro.formats import CSRMatrix, ELLMatrix
from repro.graphs import load_dataset, power_law_graph


def _to_scipy(matrix: CSRMatrix):
    return scipy_sparse.csr_matrix(
        (matrix.values, matrix.column_indices, matrix.row_pointers),
        shape=matrix.shape,
    )


class TestAgainstScipy:
    def test_dense_round_trip_matches(self, csr_small):
        assert np.allclose(csr_small.to_dense(), _to_scipy(csr_small).toarray())

    def test_spmm_matches_scipy(self, small_power_law, features):
        x = features(small_power_law.n_cols, 8)
        expected = _to_scipy(small_power_law) @ x
        assert np.allclose(small_power_law.multiply_dense(x), expected)
        assert np.allclose(
            merge_path_spmm(small_power_law, x).output, expected
        )
        assert np.allclose(gnnadvisor_spmm(small_power_law, x)[0], expected)

    def test_spmm_matches_scipy_on_dataset(self):
        graph = load_dataset("Citeseer")
        x = graph.random_features(16, seed=0)
        expected = _to_scipy(graph.adjacency) @ x
        assert np.allclose(
            merge_path_spmm(graph.adjacency, x).output, expected
        )

    def test_transpose_matches_scipy(self, csr_small):
        ours = csr_small.transpose().to_dense()
        theirs = _to_scipy(csr_small).T.toarray()
        assert np.allclose(ours, theirs)

    def test_csc_matches_scipy(self, csr_small):
        csc = csr_small.to_csc()
        theirs = _to_scipy(csr_small).tocsc()
        assert np.array_equal(csc.col_pointers, theirs.indptr)
        assert np.allclose(csc.to_dense(), theirs.toarray())

    def test_ell_spmm_matches_scipy(self):
        matrix = power_law_graph(150, 900, 60, seed=8)
        x = np.random.default_rng(2).random((150, 4))
        assert np.allclose(
            ELLMatrix.from_csr(matrix).multiply_dense(x),
            _to_scipy(matrix) @ x,
        )

    def test_normalized_adjacency_matches_scipy_construction(self):
        from repro.graphs import Graph

        adjacency = power_law_graph(100, 500, 30, seed=1)
        graph = Graph(name="x", adjacency=adjacency)
        ours = graph.normalized_adjacency().to_dense()
        a_hat = _to_scipy(adjacency).toarray() + np.eye(100)
        degrees = (a_hat != 0).sum(axis=1)
        d_inv_sqrt = np.diag(1.0 / np.sqrt(degrees))
        theirs = d_inv_sqrt @ a_hat @ d_inv_sqrt
        assert np.allclose(ours, theirs)
