"""Unit tests for the Graph container and degree analysis."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.graphs import Graph, fit_power_law
from repro.graphs.degree import looks_power_law


def _graph(dense, name="g"):
    return Graph(name=name, adjacency=CSRMatrix.from_dense(dense))


class TestGraph:
    def test_rejects_rectangular_adjacency(self):
        rect = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            Graph(name="bad", adjacency=rect)

    def test_rejects_mismatched_features(self):
        adj = CSRMatrix.identity(4)
        with pytest.raises(ValueError, match="one row per node"):
            Graph(name="bad", adjacency=adj, features=np.ones((3, 2)))

    def test_counts(self):
        g = _graph(np.eye(5))
        assert g.n_nodes == 5 and g.n_edges == 5

    def test_random_features_deterministic(self):
        g = _graph(np.eye(4))
        assert np.array_equal(g.random_features(3, seed=1),
                              g.random_features(3, seed=1))

    def test_with_features(self):
        g = _graph(np.eye(4))
        feats = np.ones((4, 2))
        g2 = g.with_features(feats)
        assert g2.features is feats
        assert g.features is None

    def test_statistics_shortcut(self, small_power_law):
        g = Graph(name="pl", adjacency=small_power_law)
        assert g.statistics.nnz == small_power_law.nnz


class TestNormalizedAdjacency:
    def test_adds_self_loops(self):
        g = _graph(np.zeros((3, 3)))
        norm = g.normalized_adjacency()
        # With no edges, A + I = I and D = I, so the result is I.
        assert np.allclose(norm.to_dense(), np.eye(3))

    def test_symmetric_normalization_values(self):
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        norm = _graph(dense).normalized_adjacency()
        # A + I is all-ones; degrees are 2; D^-1/2 (A+I) D^-1/2 = 0.5.
        assert np.allclose(norm.to_dense(), 0.5 * np.ones((2, 2)))

    def test_without_self_loops(self):
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        norm = _graph(dense).normalized_adjacency(add_self_loops=False)
        assert np.allclose(norm.to_dense(), np.array([[0, 1], [1, 0]]))

    def test_self_loops_added_and_duplicates_merged(self, small_power_law):
        g = Graph(name="pl", adjacency=small_power_law)
        norm = g.normalized_adjacency()
        # Every diagonal entry exists; duplicate edges merge, so the total
        # is bounded by nnz + n and reaches at least n.
        assert g.n_nodes <= norm.nnz <= small_power_law.nnz + g.n_nodes
        dense = norm.to_dense()
        assert (dense.diagonal() > 0).all()


class TestPowerLawFit:
    def test_fit_on_known_power_law(self, small_power_law):
        fit = fit_power_law(small_power_law)
        assert fit.alpha > 0.5
        assert 0 < fit.r_squared <= 1.0

    def test_fit_requires_two_degrees(self):
        with pytest.raises(ValueError, match="two distinct degrees"):
            fit_power_law(CSRMatrix.identity(10))

    def test_classifier_separates_types(self, small_power_law, small_structured):
        assert looks_power_law(small_power_law)
        assert not looks_power_law(small_structured)

    def test_dynamic_range(self, small_power_law):
        fit = fit_power_law(small_power_law)
        assert fit.dynamic_range >= fit.degree_range[1] / max(
            1, fit.degree_range[0]
        ) - 1e-9
