"""Integration tests: ego sampling through the serving stack.

Pins the `submit_ego` contract: class-tier dispatch (never the
per-fingerprint bandit), the pre-charged `sample` attribution stage,
epoch pinning under live updates, and exact agreement with the
independently recomputed subgraph aggregation.
"""

import numpy as np
import pytest

from repro.graphs import power_law_graph
from repro.graphs.delta import EdgeUpdate
from repro.sample import (
    ClassTier,
    NeighborIndexCache,
    set_class_tier,
    set_neighbor_index_cache,
)
from repro.serve.epoch import GraphEpochManager
from repro.serve.service import EgoSubmission, InferenceService


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(n_nodes=300, nnz=2_000, max_degree=80, seed=11)


@pytest.fixture
def fresh_tier():
    previous = set_class_tier(ClassTier())
    try:
        yield
    finally:
        set_class_tier(previous)


@pytest.fixture
def fresh_index_cache():
    previous = set_neighbor_index_cache(NeighborIndexCache())
    try:
        yield
    finally:
        set_neighbor_index_cache(previous)


def _expected(submission, features):
    sub = submission.subgraph
    return sub.matrix.multiply_dense(features[sub.nodes])


class TestSubmitEgo:
    def test_end_to_end_matches_subgraph_aggregation(
        self, graph, fresh_tier, fresh_index_cache
    ):
        features = np.random.default_rng(0).random((graph.n_cols, 8))
        with InferenceService() as service:
            submission = service.submit_ego(
                0,
                features,
                matrix=graph,
                fanouts=(6, 3),
                rng=np.random.default_rng(42),
            )
            assert isinstance(submission, EgoSubmission)
            response = submission.result(timeout=10.0)
        assert response.ok
        assert response.backend.startswith("class:")
        assert submission.subgraph.nodes[0] == 0
        assert np.allclose(
            response.output, _expected(submission, features), atol=1e-9
        )

    def test_class_tier_hits_across_submissions(
        self, graph, fresh_tier, fresh_index_cache
    ):
        from repro.sample import get_class_tier

        features = np.random.default_rng(1).random((graph.n_cols, 4))
        with InferenceService() as service:
            # Closed loop on purpose: identical subgraphs co-batch into a
            # single dispatch, so back-to-back submission is what makes
            # each request its own tier execution.
            for _ in range(4):
                submission = service.submit_ego(
                    0,
                    features,
                    matrix=graph,
                    fanouts=(5, 3),
                    rng=np.random.default_rng(0),
                )
                response = submission.result(timeout=10.0)
                assert response.ok
                assert np.allclose(
                    response.output,
                    _expected(submission, features),
                    atol=1e-9,
                )
        stats = get_class_tier().stats()
        assert stats.requests == 4
        assert stats.misses == 1
        assert stats.hits == 3  # repeat classes reuse the learned winner

    def test_sample_stage_attribution_reconciles(
        self, graph, fresh_tier, fresh_index_cache
    ):
        features = np.random.default_rng(2).random((graph.n_cols, 4))
        with InferenceService() as service:
            submission = service.submit_ego(
                3,
                features,
                matrix=graph,
                rng=np.random.default_rng(7),
            )
            response = submission.result(timeout=10.0)
        assert response.ok
        assert response.attribution is not None
        stages = response.attribution["stages"]
        assert stages["sample"] == pytest.approx(submission.sample_seconds)
        # Stage sum covers sampling *plus* admission-to-reply latency.
        total = (
            submission.sample_seconds
            + response.queue_seconds
            + response.service_seconds
        )
        assert sum(stages.values()) == pytest.approx(total, abs=1e-9)

    def test_deterministic_under_explicit_rng(
        self, graph, fresh_tier, fresh_index_cache
    ):
        features = np.random.default_rng(3).random((graph.n_cols, 4))
        with InferenceService() as service:
            a = service.submit_ego(
                5, features, matrix=graph, rng=np.random.default_rng(9)
            )
            b = service.submit_ego(
                5, features, matrix=graph, rng=np.random.default_rng(9)
            )
            a.result(timeout=10.0)
            b.result(timeout=10.0)
        assert np.array_equal(a.subgraph.nodes, b.subgraph.nodes)

    def test_default_rngs_differ_per_submission(
        self, graph, fresh_tier, fresh_index_cache
    ):
        # Unseeded submissions of the same hub draw distinct neighborhoods
        # (service-local sequence), yet each remains a valid sample.
        hub = int(np.argmax(graph.row_lengths))
        features = np.random.default_rng(4).random((graph.n_cols, 4))
        with InferenceService() as service:
            a = service.submit_ego(hub, features, matrix=graph)
            b = service.submit_ego(hub, features, matrix=graph)
            assert a.result(timeout=10.0).ok
            assert b.result(timeout=10.0).ok
        assert not np.array_equal(a.subgraph.nodes, b.subgraph.nodes)

    def test_full_and_ego_traffic_use_separate_paths(
        self, graph, fresh_tier, fresh_index_cache
    ):
        # Same service, both APIs: the full-graph path keeps its bandit
        # backends, the ego path reports a class-tier backend.
        features = np.random.default_rng(5).random((graph.n_cols, 4))
        with InferenceService() as service:
            ego = service.submit_ego(
                0, features, matrix=graph, rng=np.random.default_rng(0)
            )
            full = service.submit(graph, features)
            ego_response = ego.result(timeout=10.0)
            full_response = full.result(timeout=10.0)
        assert ego_response.ok and full_response.ok
        assert ego_response.backend.startswith("class:")
        assert not full_response.backend.startswith("class:")

    def test_feature_shape_validation_releases_lease(self, graph):
        manager = GraphEpochManager(graph)
        with InferenceService(epoch_manager=manager) as service:
            with pytest.raises(ValueError, match="one row per graph node"):
                service.submit_ego(0, np.ones((3, 2)))
        assert manager.stats()["leases"] == 0

    def test_requires_epoch_manager_for_matrix_none(self, graph):
        with InferenceService() as service:
            with pytest.raises(ValueError, match="epoch-managed"):
                service.submit_ego(0, np.ones((graph.n_cols, 2)))


class TestEgoUnderLiveUpdates:
    def test_epoch_pinned_sampling_and_verification(
        self, graph, fresh_tier, fresh_index_cache
    ):
        # Snapshot dense copies per epoch; every response must match the
        # aggregation of the epoch it *admitted* under, not the latest.
        manager = GraphEpochManager(graph)
        dense_by_epoch = {
            manager.current_epoch: manager.current_snapshot()
            .matrix.to_dense()
        }
        # Insert an edge node 0 does not already have; with fanout -1 the
        # one-hop sample keeps every neighbor, so the new edge *must*
        # appear in post-update samples and must not in pre-update ones.
        row0 = set(
            graph.column_indices[
                graph.row_pointers[0]:graph.row_pointers[1]
            ].tolist()
        )
        target = next(
            c for c in range(1, graph.n_cols) if c not in row0
        )
        features = np.random.default_rng(6).random((graph.n_cols, 4))
        with InferenceService(epoch_manager=manager) as service:
            before = service.submit_ego(
                0, features, fanouts=(-1,), rng=np.random.default_rng(1)
            )
            snapshot = service.apply_updates(
                [EdgeUpdate(op="insert", row=0, col=target, value=5.0)]
            )
            dense_by_epoch[snapshot.epoch] = snapshot.matrix.to_dense()
            after = service.submit_ego(
                0, features, fanouts=(-1,), rng=np.random.default_rng(1)
            )
            responses = [
                before.result(timeout=10.0),
                after.result(timeout=10.0),
            ]
        assert responses[0].ok and responses[1].ok
        assert before.epoch is not None and after.epoch is not None
        assert before.epoch != after.epoch
        assert responses[0].epoch == before.epoch
        assert responses[1].epoch == after.epoch
        for submission, response in zip((before, after), responses):
            dense = dense_by_epoch[response.epoch]
            nodes = submission.subgraph.nodes
            expected = dense[np.ix_(nodes, nodes)] @ features[nodes]
            assert np.allclose(response.output, expected, atol=1e-9)
        # The inserted edge is visible only to the post-update sample.
        assert target not in before.subgraph.nodes.tolist()
        assert target in after.subgraph.nodes.tolist()
