"""Unit tests for Matrix Market and edge-list I/O."""

import io

import numpy as np
import pytest

from repro.formats import (
    CSRMatrix,
    MatrixMarketError,
    read_edge_list,
    read_matrix_market,
    write_matrix_market,
)


def _roundtrip(matrix: CSRMatrix) -> CSRMatrix:
    buffer = io.StringIO()
    write_matrix_market(matrix, buffer, comment="test matrix")
    buffer.seek(0)
    return read_matrix_market(buffer)


class TestMatrixMarket:
    def test_round_trip_preserves_dense(self, csr_small):
        assert np.allclose(_roundtrip(csr_small).to_dense(), csr_small.to_dense())

    def test_round_trip_rectangular(self):
        matrix = CSRMatrix.from_dense(np.array([[0.0, 1.5, 0.0], [2.0, 0.0, 0.0]]))
        out = _roundtrip(matrix)
        assert out.shape == (2, 3)
        assert np.allclose(out.to_dense(), matrix.to_dense())

    def test_pattern_matrix_unit_values(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        matrix = read_matrix_market(io.StringIO(text))
        assert np.array_equal(matrix.to_dense(), np.eye(2))

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 7.0\n"
        )
        matrix = read_matrix_market(io.StringIO(text))
        dense = matrix.to_dense()
        assert dense[1, 0] == 5.0 and dense[0, 1] == 5.0  # mirrored
        assert dense[2, 2] == 7.0  # diagonal not duplicated
        assert matrix.nnz == 3

    def test_comments_and_blank_lines_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "\n"
            "2 2 1\n"
            "% another\n"
            "1 2 3.0\n"
        )
        matrix = read_matrix_market(io.StringIO(text))
        assert matrix.to_dense()[0, 1] == 3.0

    def test_integer_field(self):
        text = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 4\n"
        assert read_matrix_market(io.StringIO(text)).values[0] == 4.0

    def test_rejects_bad_header(self):
        with pytest.raises(MatrixMarketError, match="header"):
            read_matrix_market(io.StringIO("hello world\n"))

    def test_rejects_array_layout(self):
        with pytest.raises(MatrixMarketError, match="coordinate"):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix array real general\n")
            )

    def test_rejects_complex_field(self):
        with pytest.raises(MatrixMarketError, match="unsupported field"):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate complex general\n")
            )

    def test_rejects_wrong_entry_count(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(MatrixMarketError, match="declares 2"):
            read_matrix_market(io.StringIO(text))

    def test_rejects_missing_size_line(self):
        text = "%%MatrixMarket matrix coordinate real general\n% only comments\n"
        with pytest.raises(MatrixMarketError, match="size line"):
            read_matrix_market(io.StringIO(text))

    def test_file_round_trip(self, tmp_path, csr_small):
        path = tmp_path / "matrix.mtx"
        write_matrix_market(csr_small, path)
        assert np.allclose(
            read_matrix_market(path).to_dense(), csr_small.to_dense()
        )


class TestEdgeList:
    def test_basic_parse(self):
        matrix = read_edge_list(["0 1", "1 2", "2 0"])
        assert matrix.shape == (3, 3)
        assert matrix.nnz == 3

    def test_comments_skipped(self):
        matrix = read_edge_list(["# SNAP header", "0 1"])
        assert matrix.nnz == 1

    def test_explicit_node_count(self):
        matrix = read_edge_list(["0 1"], n_nodes=10)
        assert matrix.shape == (10, 10)

    def test_rejects_malformed_line(self):
        with pytest.raises(MatrixMarketError, match="bad edge line"):
            read_edge_list(["42"])

    def test_file_input(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n0 2\n1 0\n")
        matrix = read_edge_list(path)
        assert matrix.nnz == 2


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        from repro.formats import atomic_write_text

        path = tmp_path / "out.txt"
        returned = atomic_write_text(path, "hello\n", encoding="utf-8")
        assert returned == path
        assert path.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        from repro.formats import atomic_write_text

        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new", encoding="utf-8")
        assert path.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        from repro.formats import atomic_write_text

        atomic_write_text(tmp_path / "out.txt", "data", encoding="utf-8")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        import os

        from repro.formats import atomic_write_text

        path = tmp_path / "out.txt"
        path.write_text("original")

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(path, "partial", encoding="utf-8")
        assert path.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_matrix_market_path_write_is_atomic(self, tmp_path, csr_small):
        path = tmp_path / "matrix.mtx"
        write_matrix_market(csr_small, path)
        # Only the destination remains — the temp file was renamed over it.
        assert [p.name for p in tmp_path.iterdir()] == ["matrix.mtx"]
