"""Unit tests for MergePathSchedule classification and statistics."""

import numpy as np
import pytest

from repro.core import build_schedule, schedule_for_cost
from repro.formats import CSRMatrix


class TestPaperExample:
    def test_thread2_assignment(self, paper_example):
        schedule = build_schedule(paper_example, 4)
        a = schedule.assignment(1)
        assert a.start_row == 1 and a.start_nz == 6  # partial start
        assert a.end_row == 3 and a.end_nz == 0  # complete end
        assert a.nnz_range == (6, 11)
        assert a.n_nonzeros == 5

    def test_thread1_has_partial_end(self, paper_example):
        schedule = build_schedule(paper_example, 4)
        a = schedule.assignment(0)
        assert a.start_nz == 0  # starts at the beginning
        assert a.end_nz == 6  # row 1 continues into thread 2

    def test_validate_passes(self, paper_example):
        for n_threads in (1, 2, 4, 8, 16, 26):
            schedule = build_schedule(paper_example, n_threads)
            schedule.validate()

    def test_assignment_out_of_range(self, paper_example):
        schedule = build_schedule(paper_example, 4)
        with pytest.raises(IndexError):
            schedule.assignment(4)

    def test_assignments_list(self, paper_example):
        schedule = build_schedule(paper_example, 4)
        assert len(schedule.assignments()) == 4


class TestInvariants:
    @pytest.mark.parametrize("n_threads", [1, 2, 3, 5, 8, 17, 64])
    def test_random_matrices_validate(self, rng, n_threads):
        for _ in range(5):
            n = int(rng.integers(1, 40))
            dense = (rng.random((n, n)) < 0.25) * 1.0
            schedule = build_schedule(CSRMatrix.from_dense(dense), n_threads)
            schedule.validate()

    def test_nnz_ranges_tile(self, small_power_law):
        schedule = build_schedule(small_power_law, 37)
        nnz = schedule.per_thread_nnz()
        assert nnz.sum() == small_power_law.nnz
        assert (nnz >= 0).all()

    def test_items_bounded_by_cost(self, small_power_law):
        schedule = build_schedule(small_power_law, 37)
        assert schedule.per_thread_items().max() <= schedule.items_per_thread

    def test_single_thread_schedule(self, paper_example):
        schedule = build_schedule(paper_example, 1)
        stats = schedule.statistics
        assert stats.atomic_writes == 0
        assert stats.regular_writes == paper_example.n_rows

    def test_more_threads_than_items(self, paper_example):
        schedule = build_schedule(paper_example, 100)
        schedule.validate()

    def test_empty_matrix(self):
        empty = CSRMatrix.from_arrays([0, 0, 0], [])
        schedule = build_schedule(empty, 4)
        schedule.validate()
        assert schedule.statistics.atomic_writes == 0

    def test_evil_row_split_across_many_threads(self):
        # One row holding everything: every thread gets a chunk of it.
        matrix = CSRMatrix.from_arrays([0, 64], np.arange(64) % 1, n_cols=1)
        schedule = build_schedule(matrix, 8)
        schedule.validate()
        stats = schedule.statistics
        assert stats.split_rows == 1
        assert stats.atomic_writes >= 8 - 1
        assert stats.single_partial_threads >= 6  # middle chunks

    def test_rejects_zero_threads(self, paper_example):
        with pytest.raises(ValueError):
            build_schedule(paper_example, 0)


class TestStatistics:
    def test_write_partition_covers_rows(self, small_power_law):
        schedule = build_schedule(small_power_law, 53)
        stats = schedule.statistics
        assert stats.regular_writes + stats.split_rows == small_power_law.n_rows

    def test_nnz_partition(self, small_power_law):
        stats = build_schedule(small_power_law, 53).statistics
        assert stats.atomic_nnz + stats.regular_nnz == small_power_law.nnz

    def test_atomic_fraction_bounds(self, small_power_law):
        stats = build_schedule(small_power_law, 53).statistics
        assert 0.0 <= stats.atomic_write_fraction <= 1.0
        assert 0.0 <= stats.atomic_nnz_fraction <= 1.0

    def test_more_threads_more_atomics(self, small_power_law):
        few = build_schedule(small_power_law, 8).statistics
        many = build_schedule(small_power_law, 256).statistics
        assert many.atomic_writes > few.atomic_writes

    def test_structured_graph_mostly_regular(self, small_structured):
        stats = schedule_for_cost(small_structured, 20).statistics
        assert stats.atomic_write_fraction < 0.5

    def test_atomic_row_targets_are_split_rows(self, small_power_law):
        schedule = build_schedule(small_power_law, 53)
        targets = schedule.atomic_row_targets()
        assert len(np.unique(targets)) == schedule.statistics.split_rows


class TestScheduleForCost:
    def test_cost_determines_thread_count(self, small_power_law):
        schedule = schedule_for_cost(small_power_law, 10, min_threads=None)
        total = small_power_law.n_rows + small_power_law.nnz
        assert schedule.n_threads == -(-total // 10)

    def test_min_threads_floor(self, paper_example):
        schedule = schedule_for_cost(paper_example, 100, min_threads=16)
        assert schedule.n_threads == 16

    def test_thread_cap_at_merge_items(self, paper_example):
        schedule = schedule_for_cost(paper_example, 1, min_threads=1000)
        assert schedule.n_threads <= 26

    def test_rejects_bad_cost(self, paper_example):
        with pytest.raises(ValueError):
            schedule_for_cost(paper_example, 0)

    def test_higher_cost_fewer_atomics(self, small_power_law):
        low = schedule_for_cost(small_power_law, 4, min_threads=None).statistics
        high = schedule_for_cost(small_power_law, 40, min_threads=None).statistics
        assert high.atomic_writes < low.atomic_writes
