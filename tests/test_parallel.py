"""Unit tests for the multi-threaded CPU executor."""

import numpy as np
import pytest

from repro.core import (
    build_schedule,
    execute_parallel,
    execute_reference,
    execute_vectorized,
)
from repro.formats import CSRMatrix


class TestParallelExecutor:
    @pytest.mark.parametrize("n_workers", [1, 2, 4, 8])
    def test_matches_serial_executor(self, small_power_law, n_workers, features):
        x = features(small_power_law.n_cols, 8)
        schedule = build_schedule(small_power_law, 64)
        serial, _ = execute_vectorized(schedule, x)
        result = execute_parallel(schedule, x, n_workers=n_workers)
        assert np.allclose(result.output, serial)
        assert result.n_workers == n_workers

    def test_accounting_matches_schedule(self, small_power_law, features):
        x = features(small_power_law.n_cols, 4)
        schedule = build_schedule(small_power_law, 64)
        result = execute_parallel(schedule, x, n_workers=3)
        stats = schedule.statistics
        assert result.writes.atomic_writes == stats.atomic_writes
        assert result.writes.regular_writes == stats.regular_writes

    def test_evil_row_contention_correct(self, features):
        # One giant row split across every thread: all workers contend on
        # the same output row through the lock stripes.
        matrix = CSRMatrix.from_arrays([0, 256], np.arange(256) % 4, n_cols=4)
        x = features(4, 6)
        schedule = build_schedule(matrix, 32)
        result = execute_parallel(schedule, x, n_workers=8)
        assert np.allclose(result.output, matrix.multiply_dense(x))

    def test_deterministic_across_runs(self, small_power_law, features):
        x = features(small_power_law.n_cols, 4)
        schedule = build_schedule(small_power_law, 64)
        a = execute_parallel(schedule, x, n_workers=4).output
        b = execute_parallel(schedule, x, n_workers=4).output
        # Atomic adds commute; each segment's internal order is fixed, so
        # results agree to floating-point round-off of the add order.
        assert np.allclose(a, b)

    def test_rejects_bad_worker_count(self, paper_example, features):
        schedule = build_schedule(paper_example, 2)
        with pytest.raises(ValueError):
            execute_parallel(schedule, features(10, 2), n_workers=0)

    def test_shape_mismatch(self, paper_example):
        schedule = build_schedule(paper_example, 2)
        with pytest.raises(ValueError, match="dimension mismatch"):
            execute_parallel(schedule, np.ones((3, 2)))

    def test_empty_matrix(self):
        empty = CSRMatrix.from_arrays([0, 0, 0], [])
        schedule = build_schedule(empty, 2)
        result = execute_parallel(schedule, np.ones((2, 2)), n_workers=2)
        assert result.output.shape == (2, 2)
        assert np.all(result.output == 0.0)

    def test_more_workers_than_schedule_threads(self, paper_example, features):
        # 2 schedule threads, 16 workers: most workers get an empty slice
        # of the thread range and must neither crash nor corrupt output.
        schedule = build_schedule(paper_example, 2)
        x = features(paper_example.n_cols, 4)
        expected, _ = execute_reference(schedule, x)
        result = execute_parallel(schedule, x, n_workers=16)
        assert result.n_workers == 16
        np.testing.assert_allclose(result.output, expected)

    def test_empty_matrix_matches_reference(self):
        empty = CSRMatrix.from_arrays([0, 0, 0, 0], [])
        schedule = build_schedule(empty, 4)
        x = np.ones((3, 5))
        expected, _ = execute_reference(schedule, x)
        result = execute_parallel(schedule, x, n_workers=8)
        np.testing.assert_allclose(result.output, expected)
        assert result.writes.atomic_writes + result.writes.regular_writes >= 0

    def test_width_one_dense_operand(self, small_power_law, features):
        # A single-column operand: the degenerate SpMV shape, where any
        # missed keepdims/squeeze in the worker slicing would surface.
        schedule = build_schedule(small_power_law, 64)
        x = features(small_power_law.n_cols, 1)
        assert x.shape[1] == 1
        expected, _ = execute_reference(schedule, x)
        result = execute_parallel(schedule, x, n_workers=4)
        assert result.output.shape == (small_power_law.n_rows, 1)
        np.testing.assert_allclose(result.output, expected)
