"""Unit tests for fanout sampling and the Zipf seed generator."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.graphs import power_law_graph
from repro.sample.index import NeighborIndex, NeighborIndexCache
from repro.sample.sampler import (
    FanoutSampler,
    ZipfSeedGenerator,
    sample_ego,
)
from repro.sample.index import set_neighbor_index_cache


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(n_nodes=200, nnz=1_400, max_degree=60, seed=3)


@pytest.fixture(scope="module")
def index(graph):
    return NeighborIndex(graph)


class TestFanoutSampler:
    def test_deterministic_under_identical_rng(self, index):
        a = FanoutSampler(index, (10, 5)).sample(
            0, np.random.default_rng(42)
        )
        b = FanoutSampler(index, (10, 5)).sample(
            0, np.random.default_rng(42)
        )
        assert np.array_equal(a.nodes, b.nodes)
        assert a.hop_counts == b.hop_counts

    def test_seed_is_first_and_nodes_distinct(self, index):
        result = FanoutSampler(index, (4, 4)).sample(
            7, np.random.default_rng(0)
        )
        assert result.nodes[0] == 7
        assert len(set(result.nodes.tolist())) == len(result.nodes)

    def test_hop_counts_partition_the_node_set(self, index):
        result = FanoutSampler(index, (6, 3, 2)).sample(
            1, np.random.default_rng(1)
        )
        assert result.hop_counts[0] == 1
        assert sum(result.hop_counts) == len(result.nodes)

    def test_fanout_caps_hop_growth(self, index):
        fanouts = (3, 2)
        result = FanoutSampler(index, fanouts).sample(
            0, np.random.default_rng(5)
        )
        # Hop 1 draws from one frontier node; hop 2 from at most 3.
        assert result.hop_counts[1] <= 3
        if len(result.hop_counts) > 2:
            assert result.hop_counts[2] <= result.hop_counts[1] * 2
        assert len(result.nodes) <= 1 + 3 + 3 * 2

    def test_non_positive_fanout_keeps_all_neighbors(self, index, graph):
        result = FanoutSampler(index, (-1,)).sample(
            0, np.random.default_rng(0)
        )
        row = set(
            graph.column_indices[
                graph.row_pointers[0]:graph.row_pointers[1]
            ].tolist()
        )
        assert set(result.nodes.tolist()) == row | {0}

    def test_sampled_neighbors_are_real_edges(self, index, graph):
        result = FanoutSampler(index, (5,)).sample(
            2, np.random.default_rng(9)
        )
        row = set(
            graph.column_indices[
                graph.row_pointers[2]:graph.row_pointers[3]
            ].tolist()
        )
        assert set(result.nodes[1:].tolist()) <= row

    def test_dead_end_stops_early(self):
        # Node 1 has no neighbors: the walk is just the seed.
        matrix = CSRMatrix.from_dense(
            np.array([[0.0, 1.0], [0.0, 0.0]])
        )
        result = FanoutSampler(NeighborIndex(matrix), (4, 4)).sample(
            1, np.random.default_rng(0)
        )
        assert result.nodes.tolist() == [1]
        assert result.hop_counts == (1, 0)

    def test_validation(self, index):
        with pytest.raises(ValueError, match="at least one hop"):
            FanoutSampler(index, ())
        with pytest.raises(ValueError, match="out of range"):
            FanoutSampler(index, (3,)).sample(
                10_000, np.random.default_rng(0)
            )


class TestSampleEgo:
    def test_returns_consistent_subgraph(self, graph):
        ego = sample_ego(graph, 0, fanouts=(6, 3), rng=np.random.default_rng(0))
        assert ego.seed == 0
        assert ego.nodes[0] == 0
        assert ego.matrix.n_rows == len(ego.nodes)
        assert ego.fanouts == (6, 3)
        dense = graph.to_dense()
        assert np.allclose(
            ego.matrix.to_dense(),
            dense[np.ix_(ego.nodes, ego.nodes)],
        )

    def test_deterministic_with_explicit_rng(self, graph):
        a = sample_ego(graph, 3, rng=np.random.default_rng(11))
        b = sample_ego(graph, 3, rng=np.random.default_rng(11))
        assert np.array_equal(a.nodes, b.nodes)

    def test_uses_process_wide_index_cache(self, graph):
        fresh = NeighborIndexCache()
        previous = set_neighbor_index_cache(fresh)
        try:
            sample_ego(graph, 0, rng=np.random.default_rng(0))
            sample_ego(graph, 1, rng=np.random.default_rng(1))
            assert (fresh.misses, fresh.hits) == (1, 1)
        finally:
            set_neighbor_index_cache(previous)


class TestZipfSeedGenerator:
    def test_ranked_by_descending_degree(self):
        degrees = np.array([1, 9, 3, 9, 0])
        gen = ZipfSeedGenerator(degrees, alpha=1.0)
        # Ties broken by ascending node id.
        assert gen.ranked_nodes.tolist() == [1, 3, 2, 0, 4]

    def test_alpha_zero_is_uniform(self):
        gen = ZipfSeedGenerator(np.arange(5), alpha=0.0)
        assert np.allclose(gen.probabilities, 0.2)

    def test_hubs_dominate_draws(self):
        degrees = np.zeros(50)
        degrees[17] = 100.0
        gen = ZipfSeedGenerator(
            degrees, alpha=1.5, rng=np.random.default_rng(0)
        )
        draws = gen.draw(500)
        assert (draws >= 0).all() and (draws < 50).all()
        # Rank 1 carries by far the largest weight.
        assert (draws == 17).mean() > 0.3

    def test_for_matrix_ranks_by_row_length(self, graph):
        gen = ZipfSeedGenerator.for_matrix(graph, alpha=1.0)
        assert gen.ranked_nodes[0] == int(np.argmax(graph.row_lengths))

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            ZipfSeedGenerator(np.empty(0))
        with pytest.raises(ValueError, match="alpha"):
            ZipfSeedGenerator(np.ones(3), alpha=-0.1)
