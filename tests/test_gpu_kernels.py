"""Unit tests for the per-kernel GPU workload builders."""

import numpy as np
import pytest

from repro.core import schedule_for_cost
from repro.gpu import (
    KERNELS,
    gnnadvisor_workload,
    kernel_time,
    mergepath_workload,
    quadro_rtx_6000,
    row_splitting_workload,
    merge_path_serial_workload,
    cusparse_workload,
)
from repro.gpu.timing import simulate

DEV = quadro_rtx_6000()


class TestMergePathWorkload:
    def test_atomics_match_schedule(self, small_power_law):
        schedule = schedule_for_cost(small_power_law, 20, min_threads=64)
        workload = mergepath_workload(small_power_law, 16, DEV, schedule=schedule)
        assert workload.total_atomic_ops == pytest.approx(
            schedule.statistics.atomic_writes
        )

    def test_packing_below_32(self, small_power_law):
        w16 = mergepath_workload(small_power_law, 16, DEV, cost=20, min_threads=64)
        schedule = schedule_for_cost(small_power_law, 20, min_threads=64)
        assert w16.n_warps == -(-schedule.n_threads // 2)

    def test_replication_above_32(self, small_power_law):
        w64 = mergepath_workload(small_power_law, 64, DEV, cost=20, min_threads=64)
        schedule = schedule_for_cost(small_power_law, 20, min_threads=64)
        assert w64.n_warps == 2 * schedule.n_threads

    def test_force_all_atomic_ablation(self, small_power_law, small_structured):
        normal = mergepath_workload(small_power_law, 16, DEV, cost=20)
        forced = mergepath_workload(
            small_power_law, 16, DEV, cost=20, force_all_atomic=True
        )
        assert forced.total_atomic_ops > normal.total_atomic_ops
        # On a structured graph nearly all writes are regular, so the
        # ablation's cost shows up directly in the modeled time.
        normal_t = simulate(
            mergepath_workload(
                small_structured, 16, DEV, cost=20, min_threads=64
            ),
            DEV,
        ).cycles
        forced_t = simulate(
            mergepath_workload(
                small_structured, 16, DEV, cost=20, min_threads=64,
                force_all_atomic=True,
            ),
            DEV,
        ).cycles
        assert forced_t > normal_t

    def test_default_cost_comes_from_dim(self, small_power_law):
        default = mergepath_workload(small_power_law, 16, DEV)
        explicit = mergepath_workload(small_power_law, 16, DEV, cost=20)
        assert default.n_warps == explicit.n_warps


class TestGNNAdvisorWorkload:
    def test_one_warp_per_group_baseline(self, small_power_law):
        from repro.baselines import NeighborGroupSchedule

        schedule = NeighborGroupSchedule.build(small_power_law)
        workload = gnnadvisor_workload(small_power_law, 16, DEV, schedule=schedule)
        assert workload.n_warps == schedule.n_groups

    def test_opt_packs_groups_below_32(self, small_power_law):
        base = gnnadvisor_workload(small_power_law, 16, DEV)
        opt = gnnadvisor_workload(small_power_law, 16, DEV, opt=True)
        assert opt.n_warps == -(-base.n_warps // 2)

    def test_opt_identical_at_32_and_above(self, small_power_law):
        base = gnnadvisor_workload(small_power_law, 32, DEV)
        opt = gnnadvisor_workload(small_power_law, 32, DEV, opt=True)
        assert base.n_warps == opt.n_warps
        assert simulate(base, DEV).cycles == simulate(opt, DEV).cycles

    def test_all_writes_atomic(self, small_power_law):
        workload = gnnadvisor_workload(small_power_law, 16, DEV)
        from repro.baselines import NeighborGroupSchedule

        groups = NeighborGroupSchedule.build(small_power_law).n_groups
        assert workload.total_atomic_ops == pytest.approx(groups)

    def test_opt_faster_at_dim16(self, small_power_law):
        base = simulate(gnnadvisor_workload(small_power_law, 16, DEV), DEV)
        opt = simulate(gnnadvisor_workload(small_power_law, 16, DEV, opt=True), DEV)
        assert opt.cycles < base.cycles


class TestRowSplittingWorkload:
    def test_one_warp_per_32_rows(self, small_power_law):
        workload = row_splitting_workload(small_power_law, 16, DEV)
        assert workload.n_warps == -(-small_power_law.n_rows // 32)

    def test_no_atomics(self, small_power_law):
        workload = row_splitting_workload(small_power_law, 16, DEV)
        assert workload.total_atomic_ops == 0.0

    def test_low_mem_parallelism(self, small_power_law):
        assert row_splitting_workload(small_power_law, 16, DEV).mem_parallelism < 8


class TestSerialWorkload:
    def test_serial_cycles_positive_on_split_rows(self, small_power_law):
        workload = merge_path_serial_workload(
            small_power_law, 16, DEV, n_threads=256
        )
        assert workload.serial_cycles > 0

    def test_thread_sweep_picks_best(self, small_power_law):
        swept = simulate(
            merge_path_serial_workload(small_power_law, 16, DEV), DEV
        ).cycles
        for threads in (256, 4096):
            fixed = simulate(
                merge_path_serial_workload(
                    small_power_law, 16, DEV, n_threads=threads
                ),
                DEV,
            ).cycles
            assert swept <= fixed + 1e-6


class TestCuSparseWorkload:
    def test_row_per_warp_for_power_law(self, small_power_law):
        workload = cusparse_workload(small_power_law, 16, DEV)
        assert "row_per_warp" in workload.label
        assert workload.n_warps == small_power_law.n_rows

    def test_balanced_for_structured(self, small_structured):
        workload = cusparse_workload(small_structured, 16, DEV)
        assert "balanced" in workload.label

    def test_no_atomics(self, small_structured):
        workload = cusparse_workload(small_structured, 16, DEV)
        assert workload.total_atomic_ops == 0.0


class TestKernelTime:
    def test_registry_complete(self):
        assert set(KERNELS) == {
            "mergepath", "gnnadvisor", "gnnadvisor-opt", "row-splitting",
            "merge-path-serial", "cusparse",
        }

    def test_all_kernels_produce_timings(self, small_power_law):
        for name in KERNELS:
            timing = kernel_time(name, small_power_law, 16)
            assert timing.cycles > 0
            assert timing.microseconds > 0

    def test_unknown_kernel(self, small_power_law):
        with pytest.raises(KeyError, match="unknown kernel"):
            kernel_time("magic", small_power_law, 16)

    def test_mergepath_beats_gnnadvisor_on_power_law(self):
        # Use a Table II graph: on tiny fixtures the 1024-thread floor
        # makes every merge-path boundary a partial row, which is not the
        # regime Figure 4 reports.
        from repro.graphs import load_dataset

        adjacency = load_dataset("Cora").adjacency
        mp = kernel_time("mergepath", adjacency, 16, cost=20)
        gnna = kernel_time("gnnadvisor", adjacency, 16)
        assert mp.cycles < gnna.cycles

    def test_serial_baseline_slowest_of_merge_family(self, small_power_law):
        serial = kernel_time("merge-path-serial", small_power_law, 16)
        mp = kernel_time("mergepath", small_power_law, 16)
        assert serial.cycles > mp.cycles
