"""Tests for the experiment harnesses (small configurations).

These validate that each harness runs end-to-end and that the headline
*shapes* from the paper hold in the reproduced data.  Full-size runs live
in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_power_law,
    fig2_motivation,
    fig3_example,
    fig4_speedup,
    fig5_write_ops,
    fig6_cost_sweep,
    fig7_dimension_scaling,
    fig8_online_overhead,
    fig9_multicore_scaling,
    table1_config,
    table2_datasets,
)
from repro.experiments.reporting import ExperimentResult, format_table, geometric_mean

SMALL_I = ["Cora", "Citeseer", "Pubmed"]
SMALL_II = ["PROTEINS_full"]


class TestReporting:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [(1, 2.5), (10, 0.25)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_result_column_access(self):
        result = ExperimentResult("t", ["x", "y"], [(1, 2), (3, 4)])
        assert result.column("y") == [2, 4]

    def test_result_format_includes_notes(self):
        result = ExperimentResult("t", ["x"], [(1,)], notes=["hello"])
        assert "hello" in result.format()


class TestFig1:
    def test_classification_separates_types(self):
        result = fig1_power_law.run(names=("Cora", "Nell", "Yeast"))
        classes = dict(zip(result.column("graph"), result.column("classified")))
        assert classes["Cora"] == "power-law"
        assert classes["Nell"] == "power-law"
        assert classes["Yeast"] == "structured"


class TestFig2:
    def test_orderings(self):
        result = fig2_motivation.run()
        data = {row[0]: row for row in result.rows}
        headers = result.headers
        awb = headers.index("awb-gcn")
        gnna = headers.index("gnnadvisor")
        serial = headers.index("merge-path-serial")
        rowsplit = headers.index("row-splitting")
        # AWB-GCN best on the two small graphs; serial merge-path worst.
        for graph in ("Cora", "Citeseer"):
            row = data[graph]
            others = [row[i] for i in (gnna, serial, rowsplit)]
            assert row[awb] < min(others)
            assert row[serial] == max(others)
        # GNNAdvisor ahead of AWB-GCN on Nell; AWB ahead of row-splitting.
        assert data["Nell"][gnna] < data["Nell"][awb]
        assert data["Nell"][awb] < data["Nell"][rowsplit]
        # Serial merge-path also beats AWB-GCN on Nell (evil-row handling).
        assert data["Nell"][serial] < data["Nell"][awb]


class TestFig3:
    def test_matches_paper_walkthrough(self):
        result = fig3_example.run()
        thread2 = result.rows[1]
        assert thread2[1] == "(1, 6)"
        assert thread2[2] == "(3, 11)"
        assert thread2[3] == 6 and thread2[4] == 0 and thread2[5] == 5


class TestTables:
    def test_table1_core_scaling(self):
        result = table1_config.run(256)
        text = result.format()
        assert "256 single-threaded" in text
        assert "32 KB per-core slice (8 MB total)" in text

    def test_table2_generated_matches_published(self):
        result = table2_datasets.run()
        assert len(result.rows) == 23
        for row in result.rows:
            assert row[2] == row[3]  # nodes
            assert row[4] == row[5]  # nnz
            assert row[8] == row[9]  # max degree


class TestFig4:
    def test_small_suite_shapes(self):
        result = fig4_speedup.run(names=SMALL_I + SMALL_II)
        mp = result.column("mergepath")
        opt = result.column("gnnadvisor-opt")
        # MergePath-SpMM beats GNNAdvisor everywhere and opt on average.
        assert all(s > 1.0 for s in mp)
        assert geometric_mean(mp) > geometric_mean(opt) > 1.0
        # cuSPARSE loses on the small power-law graphs.
        by_name = dict(zip(result.column("graph"), result.column("cusparse")))
        assert by_name["Cora"] < 1.0


class TestFig5:
    def test_type_separation(self):
        result = fig5_write_ops.run(names=["email-Enron", "email-Euall", "Yeast"])
        frac = dict(zip(result.column("graph"), result.column("atomic_frac")))
        assert frac["Yeast"] < 0.2
        assert frac["email-Euall"] < frac["email-Enron"]


class TestFig6:
    def test_sweep_structure(self):
        result = fig6_cost_sweep.run(
            names=("Cora", "Pubmed"), dims=(16, 128), costs=(2, 10, 30, 50)
        )
        assert [row[0] for row in result.rows] == [16, 128]
        for row in result.rows:
            assert row[1] in (2, 10, 30, 50)
            # Normalized performance at the best cost is the maximum.
            perf = row[3:]
            assert max(perf) == perf[(2, 10, 30, 50).index(row[1])]


class TestFig7:
    def test_mergepath_dominates_and_dims_improve(self):
        result = fig7_dimension_scaling.run(
            names=("Cora", "Pubmed"), dims=(128, 16, 2)
        )
        rows = {row[0]: row[1:] for row in result.rows}
        # Every kernel improves from dim 128 to dim 16.
        for kernel, row in rows.items():
            assert row[1] > row[0]
        # MergePath-SpMM leads at every dimension.
        for i in range(3):
            assert rows["mergepath"][i] >= rows["gnnadvisor"][i]


class TestFig8:
    def test_overheads(self):
        result = fig8_online_overhead.run(names=["Cora", "com-Amazon"])
        over = dict(zip(result.column("graph"), result.column("overhead_%")))
        assert over["Cora"] > over["com-Amazon"]
        assert over["Cora"] < 25.0
        assert over["com-Amazon"] < 1.5


class TestFig9:
    def test_small_run_scales(self):
        result = fig9_multicore_scaling.run(
            graphs=(("Cora", 1.0),), core_counts=(64, 256)
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[2] == pytest.approx(1.0)  # normalized to first count
            assert row[3] < 1.0  # faster at 256 cores
            assert 0.0 <= row[-1] <= 1.0  # memory fraction
