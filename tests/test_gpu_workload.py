"""Unit tests for the GPU workload abstraction and grouping helpers."""

import numpy as np
import pytest

from repro.gpu import GPUWorkload
from repro.gpu.workload import group_reduce_max, group_reduce_sum


def _workload(n_warps=4, **kwargs):
    defaults = dict(
        label="test",
        dim=16,
        warp_issue_cycles=np.full(n_warps, 10.0),
        warp_mem_bytes=np.full(n_warps, 64.0),
        warp_atomic_ops=np.zeros(n_warps),
    )
    defaults.update(kwargs)
    return GPUWorkload(**defaults)


class TestGPUWorkload:
    def test_totals(self):
        w = _workload(4)
        assert w.n_warps == 4
        assert w.total_issue_cycles == 40.0
        assert w.total_mem_bytes == 256.0
        assert w.total_atomic_ops == 0.0

    def test_max_row_sharers_empty(self):
        assert _workload().max_row_sharers == 0

    def test_max_row_sharers(self):
        w = _workload(atomic_sharers=np.array([1, 5, 2]))
        assert w.max_row_sharers == 5

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError, match="equal length"):
            GPUWorkload(
                label="bad",
                dim=16,
                warp_issue_cycles=np.zeros(3),
                warp_mem_bytes=np.zeros(2),
                warp_atomic_ops=np.zeros(3),
            )

    def test_default_mem_parallelism(self):
        assert _workload().mem_parallelism == 8.0


class TestGroupReduce:
    def test_max_exact_groups(self):
        out = group_reduce_max(np.array([1, 5, 2, 4]), 2)
        assert np.array_equal(out, [5, 4])

    def test_max_ragged_tail(self):
        out = group_reduce_max(np.array([1, 5, 9]), 2)
        assert np.array_equal(out, [5, 9])

    def test_sum_exact_groups(self):
        out = group_reduce_sum(np.array([1.0, 5.0, 2.0, 4.0]), 2)
        assert np.array_equal(out, [6.0, 6.0])

    def test_sum_ragged_tail(self):
        out = group_reduce_sum(np.array([1.0, 5.0, 9.0]), 2)
        assert np.array_equal(out, [6.0, 9.0])

    def test_group_size_one_is_identity(self):
        values = np.array([3.0, 1.0, 2.0])
        assert np.array_equal(group_reduce_max(values, 1), values)
        assert np.array_equal(group_reduce_sum(values, 1), values)

    def test_empty_input(self):
        empty = np.array([])
        assert len(group_reduce_max(empty, 4)) == 0
        assert len(group_reduce_sum(empty, 4)) == 0

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            group_reduce_max(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            group_reduce_sum(np.array([1.0]), 0)
