"""Graceful-degradation tests: timeouts, retries, checkpoint/resume."""

import json
import threading
import time

import pytest

from repro.experiments import harness
from repro.experiments.reporting import ExperimentResult
from repro.resilience.checkpoint import BatchCheckpoint, CheckpointError
from repro.resilience.runtime import (
    ExperimentTimeoutError,
    call_with_timeout,
    retry_with_backoff,
)


def _result(title="t") -> ExperimentResult:
    return ExperimentResult(title=title, headers=["x"], rows=[(1,)])


class TestCallWithTimeout:
    def test_passthrough_without_timeout(self):
        assert call_with_timeout(lambda: 42, None) == 42

    def test_fast_call_returns(self):
        assert call_with_timeout(lambda: "ok", 5.0) == "ok"

    def test_slow_call_times_out(self):
        with pytest.raises(ExperimentTimeoutError, match="wall-clock"):
            call_with_timeout(lambda: time.sleep(5), 0.05)

    def test_exception_propagates(self):
        with pytest.raises(KeyError):
            call_with_timeout(lambda: {}["missing"], 5.0)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            call_with_timeout(lambda: None, 0)


class TestRetryWithBackoff:
    def test_first_success_no_retry(self):
        sleeps = []
        assert retry_with_backoff(lambda: 7, sleep=sleeps.append) == 7
        assert sleeps == []

    def test_flaky_call_recovers_with_backoff(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("flake")
            return "done"

        out = retry_with_backoff(
            flaky, attempts=4, base_delay=0.1, factor=2.0, sleep=sleeps.append
        )
        assert out == "done"
        assert sleeps == [0.1, 0.2]  # exponential

    def test_exhausted_attempts_raise_last_error(self):
        def always():
            raise RuntimeError("still broken")

        with pytest.raises(RuntimeError, match="still broken"):
            retry_with_backoff(always, attempts=3, sleep=lambda s: None)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise KeyError("nope")

        with pytest.raises(KeyError):
            retry_with_backoff(
                boom, attempts=5, retry_on=(ValueError,), sleep=lambda s: None
            )
        assert len(calls) == 1

    def test_on_retry_callback(self):
        seen = []

        def flaky():
            if not seen:
                raise ValueError("x")
            return 1

        retry_with_backoff(
            flaky,
            attempts=2,
            sleep=lambda s: None,
            on_retry=lambda i, exc: seen.append((i, type(exc).__name__)),
        )
        assert seen == [(0, "ValueError")]


class TestRetryJitter:
    @staticmethod
    def _always_flaky(countdown):
        state = [countdown]

        def fn():
            if state[0] > 0:
                state[0] -= 1
                raise RuntimeError("flake")
            return "done"

        return fn

    def test_default_schedule_is_bit_identical(self):
        # jitter=0.0 (the default) must not perturb delays at all.
        sleeps = []
        retry_with_backoff(
            self._always_flaky(2), attempts=3, base_delay=0.1, factor=2.0,
            sleep=sleeps.append,
        )
        assert sleeps == [0.1, 0.2]

    def test_jitter_scales_delays_within_bounds(self):
        draws = iter([0.0, 1.0])  # extremes of the uniform draw
        sleeps = []
        retry_with_backoff(
            self._always_flaky(2), attempts=3, base_delay=0.1, factor=2.0,
            jitter=0.5, rng=lambda: next(draws), sleep=sleeps.append,
        )
        # delay * (1 + 0.5*(2u-1)): u=0 halves, u=1 multiplies by 1.5.
        assert sleeps == pytest.approx([0.05, 0.3])

    def test_jitter_is_deterministic_without_injected_rng(self):
        runs = []
        for _ in range(2):
            sleeps = []
            retry_with_backoff(
                self._always_flaky(3), attempts=4, base_delay=0.1,
                jitter=0.25, sleep=sleeps.append,
            )
            runs.append(sleeps)
        assert runs[0] == runs[1]
        # Jittered delays stay inside the +/-25% envelope.
        for delay, nominal in zip(runs[0], [0.1, 0.2, 0.4]):
            assert 0.75 * nominal <= delay <= 1.25 * nominal

    def test_jitter_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            retry_with_backoff(lambda: 1, jitter=1.5)


class TestAbandonedWorkersGauge:
    def test_timeout_increments_and_completion_decrements(self):
        from repro import obs

        release = threading.Event()

        def stuck():
            release.wait(timeout=10.0)
            return "late"

        registry = obs.enable()
        try:
            with pytest.raises(ExperimentTimeoutError):
                call_with_timeout(stuck, 0.05)
            gauge = registry.gauge("resilience.harness.abandoned_workers")
            assert gauge.value == 1.0
            release.set()
            deadline = time.monotonic() + 5.0
            while gauge.value != 0.0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert gauge.value == 0.0
        finally:
            obs.disable()
            release.set()

    def test_fast_call_never_touches_the_gauge(self):
        from repro import obs

        registry = obs.enable()
        try:
            assert call_with_timeout(lambda: 5, 5.0) == 5
            snapshots = [
                s for s in registry.snapshot()
                if s["name"] == "resilience.harness.abandoned_workers"
            ]
            assert snapshots == []
        finally:
            obs.disable()


class TestBatchCheckpoint:
    def test_fresh_open_writes_file(self, tmp_path):
        path = tmp_path / "cp.json"
        cp = BatchCheckpoint.open(path, ["a", "b"])
        assert path.exists()
        assert cp.remaining == ["a", "b"]
        assert not cp.done

    def test_record_and_resume_round_trip(self, tmp_path):
        path = tmp_path / "cp.json"
        cp = BatchCheckpoint.open(path, ["a", "b"])
        cp.record("a", _result("a"))
        resumed = BatchCheckpoint.open(path, ["a", "b"], resume=True)
        assert resumed.remaining == ["b"]
        stored = resumed.result_for("a")
        assert stored is not None and stored.rows == [(1,)]
        assert resumed.result_for("b") is None

    def test_resume_false_discards_progress(self, tmp_path):
        path = tmp_path / "cp.json"
        cp = BatchCheckpoint.open(path, ["a"])
        cp.record("a", _result())
        fresh = BatchCheckpoint.open(path, ["a"], resume=False)
        assert fresh.remaining == ["a"]

    def test_batch_mismatch_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        BatchCheckpoint.open(path, ["a", "b"]).record("a", _result())
        with pytest.raises(CheckpointError, match="does not match"):
            BatchCheckpoint.open(path, ["a", "c"], resume=True)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="cannot read"):
            BatchCheckpoint.open(path, ["a"], resume=True)

    def test_unknown_experiment_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.resilience.checkpoint/1",
                    "names": ["a"],
                    "completed": {"zzz": {}},
                }
            )
        )
        with pytest.raises(CheckpointError, match="does not match"):
            BatchCheckpoint.open(path, ["a", "zzz"], resume=True)

    def test_record_outside_batch_rejected(self, tmp_path):
        cp = BatchCheckpoint.open(tmp_path / "cp.json", ["a"])
        with pytest.raises(CheckpointError, match="not part"):
            cp.record("other", _result())


@pytest.fixture
def fake_experiments(monkeypatch):
    """Replace the experiment registry with fast, controllable fakes."""
    calls = []

    def make(name, fail_times=0, sleep=0.0):
        state = {"failures": 0}

        def run():
            calls.append(name)
            if sleep:
                time.sleep(sleep)
            if state["failures"] < fail_times:
                state["failures"] += 1
                raise RuntimeError(f"{name} transient failure")
            return _result(name)

        return run

    registry = {
        "ok1": make("ok1"),
        "ok2": make("ok2"),
        "flaky": make("flaky", fail_times=1),
        "broken": make("broken", fail_times=99),
        "slow": make("slow", sleep=5.0),
    }
    monkeypatch.setattr(harness, "EXPERIMENTS", registry)
    return calls


class TestRunExperimentsDegradation:
    def test_on_error_record_captures_traceback_and_metrics(
        self, fake_experiments
    ):
        results = harness.run_experiments(
            ["ok1", "broken", "ok2"], on_error="record"
        )
        failed = results["broken"]
        assert failed.failed
        assert "transient failure" in failed.error
        assert "RuntimeError" in failed.traceback
        assert "Traceback" in failed.traceback
        assert isinstance(failed.partial_metrics, list)
        assert not results["ok1"].failed and not results["ok2"].failed

    def test_timeout_recorded_and_batch_continues(self, fake_experiments):
        results = harness.run_experiments(
            ["slow", "ok1"], on_error="record", timeout=0.1
        )
        assert results["slow"].failed
        assert "ExperimentTimeoutError" in results["slow"].error
        assert not results["ok1"].failed

    def test_retries_recover_flaky_experiment(
        self, fake_experiments, monkeypatch
    ):
        monkeypatch.setattr(time, "sleep", lambda s: None)
        results = harness.run_experiments(["flaky"], retries=2)
        assert not results["flaky"].failed
        assert fake_experiments.count("flaky") == 2

    def test_checkpoint_resume_skips_completed(
        self, fake_experiments, tmp_path
    ):
        cp = tmp_path / "cp.json"
        batch = ["ok1", "broken", "ok2"]
        first = harness.run_experiments(
            batch, on_error="record", checkpoint_path=cp
        )
        assert first["broken"].failed
        calls_after_first = list(fake_experiments)
        resumed = harness.run_experiments(
            batch, on_error="record", checkpoint_path=cp, resume=True
        )
        new_calls = fake_experiments[len(calls_after_first):]
        # Completed experiments are not re-run; failures are retried.
        assert "ok1" not in new_calls and "ok2" not in new_calls
        assert "broken" in new_calls
        assert resumed["ok1"].rows == first["ok1"].rows
        assert "resumed from checkpoint" in resumed["ok1"].notes

    def test_resume_requires_checkpoint(self, fake_experiments):
        with pytest.raises(ValueError, match="checkpoint_path"):
            harness.run_experiments(["ok1"], resume=True)

    def test_cli_flags_parse(self, fake_experiments, tmp_path, capsys):
        cp = tmp_path / "cp.json"
        code = harness.main(
            [
                "ok1", "ok2",
                "--timeout", "30",
                "--retries", "1",
                "--checkpoint", str(cp),
            ]
        )
        assert code == 0
        assert cp.exists()
        code = harness.main(
            ["ok1", "ok2", "--checkpoint", str(cp), "--resume"]
        )
        assert code == 0
        # resumed run re-ran nothing
        assert fake_experiments.count("ok1") == 1
        capsys.readouterr()


class TestTimeoutWorkerIsDaemon:
    def test_timed_out_call_does_not_block_interpreter_exit(self):
        """Regression: the timeout worker must be a daemon thread.

        A non-daemon worker abandoned by ``call_with_timeout`` would keep
        the interpreter alive at shutdown until the stuck callable
        finished — here 60s, far past the asserted exit window.
        """
        import os
        import subprocess
        import sys

        script = (
            "import time\n"
            "from repro.resilience.runtime import (\n"
            "    ExperimentTimeoutError, call_with_timeout)\n"
            "try:\n"
            "    call_with_timeout(lambda: time.sleep(60), 0.1)\n"
            "except ExperimentTimeoutError:\n"
            "    print('timed-out-cleanly')\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        started = time.monotonic()
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=30.0,
            env=env,
        )
        elapsed = time.monotonic() - started
        assert proc.returncode == 0, proc.stderr
        assert "timed-out-cleanly" in proc.stdout
        assert elapsed < 20.0, (
            f"interpreter took {elapsed:.1f}s to exit past a timed-out call"
        )
