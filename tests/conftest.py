"""Shared fixtures: small matrices and graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.graphs import power_law_graph, regular_graph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def dense_small(rng):
    """A 12x12 dense array with ~25% non-zeros, including empty rows."""
    dense = (rng.random((12, 12)) < 0.25) * rng.random((12, 12))
    dense[3] = 0.0  # guaranteed empty row
    dense[7] = 0.0
    return dense

@pytest.fixture
def csr_small(dense_small):
    return CSRMatrix.from_dense(dense_small)


@pytest.fixture
def paper_example():
    """The Figure 3 matrix: 10 rows, 16 non-zeros, evil row 1."""
    row_pointers = [0, 0, 8, 11, 12, 12, 13, 14, 15, 16, 16]
    return CSRMatrix.from_arrays(row_pointers, np.arange(16) % 10)


@pytest.fixture(scope="session")
def small_power_law():
    """A 600-node power-law graph with an evil row (session-cached)."""
    return power_law_graph(n_nodes=600, nnz=4_000, max_degree=300, seed=7)


@pytest.fixture(scope="session")
def small_structured():
    """A 600-node near-regular graph (session-cached)."""
    return regular_graph(n_nodes=600, nnz=2_400, max_degree=8, seed=7)


@pytest.fixture
def features(rng):
    """Feature factory: features(n, d) -> dense operand."""
    def make(n: int, d: int) -> np.ndarray:
        return np.random.default_rng(99).random((n, d))

    return make
