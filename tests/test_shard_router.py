"""Tests for the shard router: scatter -> shard pools -> halo gather."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.graphs.generators import power_law_graph
from repro.resilience import faults
from repro.serve.procpool import (
    PoolError,
    ProcPoolConfig,
    WorkerCrashError,
)
from repro.shard import ShardConfig, ShardRouter


def _matrix(seed: int = 0) -> CSRMatrix:
    return power_law_graph(n_nodes=60, nnz=360, max_degree=16, seed=seed)


def _proc_config(**overrides) -> ProcPoolConfig:
    settings = dict(
        heartbeat_interval=0.02,
        heartbeat_timeout=0.6,
        hang_timeout=5.0,
        restart_budget=8,
        restart_window=60.0,
    )
    settings.update(overrides)
    return ProcPoolConfig(**settings)


def _wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _busy_pids(pool):
    with pool._cond:
        return [
            slot.proc.pid
            for slot in pool._slots.values()
            if slot.job is not None
            and not slot.dead
            and slot.proc.is_alive()
        ]


class TestShardConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_shards": 0},
            {"strategy": "metis"},
            {"workers_per_shard": 0},
            {"replay_budget": -1},
            {"partition_cache_capacity": 0},
            {"worker_kernel": "cuda"},
            {"result_transport": "tcp"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)

    def test_defaults_pick_the_fast_path(self):
        config = ShardConfig()
        assert config.worker_kernel == "engine"
        assert config.result_transport == "shm"

    def test_router_forwards_kernel_and_transport_to_pools(self):
        router = ShardRouter(
            ShardConfig(worker_kernel="reference", result_transport="pipe")
        )
        assert router._proc_config.kernel == "reference"
        assert router._proc_config.result_transport == "pipe"


class TestExecution:
    def test_matches_reference_product(self):
        matrix = _matrix()
        dense = np.random.default_rng(0).random((matrix.n_cols, 6))
        with ShardRouter(
            ShardConfig(n_shards=3), proc_config=_proc_config()
        ) as router:
            result = router.execute(matrix, dense)
        assert np.allclose(
            result.output, matrix.multiply_dense(dense), atol=1e-9
        )
        assert result.backend == "shard"
        assert result.shards_used == 3
        assert result.copied_bytes == 0

    def test_repeated_executes_and_pipe_transport_agree(self):
        matrix = _matrix(seed=2)
        dense = np.random.default_rng(2).random((matrix.n_cols, 4))
        expected = matrix.multiply_dense(dense)
        config = ShardConfig(
            n_shards=2, worker_kernel="reference", result_transport="pipe"
        )
        with ShardRouter(config, proc_config=_proc_config()) as router:
            for _ in range(3):
                result = router.execute(matrix, dense)
                assert np.allclose(result.output, expected, atol=1e-9)

    def test_execute_before_start_raises(self):
        router = ShardRouter(ShardConfig(n_shards=2))
        with pytest.raises(PoolError, match="not running"):
            router.execute(_matrix(), np.ones((60, 2)))

    def test_timing_fields_are_populated(self):
        matrix = _matrix()
        dense = np.ones((matrix.n_cols, 3))
        with ShardRouter(
            ShardConfig(n_shards=2), proc_config=_proc_config()
        ) as router:
            result = router.execute(matrix, dense)
        assert result.kernel_seconds >= 0.0
        assert result.scatter_seconds >= 0.0
        assert result.halo_seconds >= 0.0
        assert result.halo_bytes >= 0


class TestPartitionCache:
    def test_cache_hit_on_repeat_and_miss_on_new_epoch(self):
        matrix = _matrix()
        dense = np.ones((matrix.n_cols, 2))
        with ShardRouter(
            ShardConfig(n_shards=2), proc_config=_proc_config()
        ) as router:
            first = router.partition_for(matrix)
            assert router.partition_for(matrix) is first
            assert router.snapshot()["partitions_cached"] == 1
            # A new epoch (fresh values fingerprint) re-partitions.
            bumped = CSRMatrix(
                n_rows=matrix.n_rows,
                n_cols=matrix.n_cols,
                row_pointers=matrix.row_pointers,
                column_indices=matrix.column_indices,
                values=matrix.values * 2.0,
                version=(matrix.version or 0) + 1,
            )
            second = router.partition_for(bumped)
            assert second is not first
            assert router.snapshot()["partitions_cached"] == 2
            router.execute(matrix, dense)

    def test_invalidate_fingerprint_drops_by_structural_key(self):
        matrix = _matrix()
        with ShardRouter(
            ShardConfig(n_shards=2), proc_config=_proc_config()
        ) as router:
            router.partition_for(matrix)
            assert router.invalidate_fingerprint("no-such") == 0
            assert router.invalidate_fingerprint(matrix.fingerprint()) == 1
            assert router.snapshot()["partitions_cached"] == 0

    def test_lru_evicts_oldest_partition(self):
        config = ShardConfig(n_shards=2, partition_cache_capacity=2)
        with ShardRouter(config, proc_config=_proc_config()) as router:
            for seed in range(3):
                router.partition_for(_matrix(seed=seed))
            assert router.snapshot()["partitions_cached"] == 2


class TestSnapshot:
    def test_snapshot_shape(self):
        matrix = _matrix()
        with ShardRouter(
            ShardConfig(n_shards=2), proc_config=_proc_config()
        ) as router:
            router.execute(matrix, np.ones((matrix.n_cols, 2)))
            snapshot = router.snapshot()
        assert snapshot["isolation"] == "shard"
        assert snapshot["n_shards"] == 2
        assert snapshot["executed"] == 1
        assert snapshot["supervisor"]["exhausted"] is False
        assert snapshot["supervisor"]["exhausted_shards"] == []
        assert len(snapshot["shards"]) == 2
        assert snapshot["partition"]["n_shards"] == 2
        assert (
            snapshot["zero_copy"]["per_request_graph_bytes_copied"] == 0
        )

    def test_pool_protocol_surface(self):
        with ShardRouter(
            ShardConfig(n_shards=2), proc_config=_proc_config()
        ) as router:
            assert router.is_quarantined("anything") is False
            assert router.memory_pressure() is False
            assert router.supervisor.exhausted is False


class TestReplay:
    def test_killed_shard_worker_is_replayed(self):
        matrix = _matrix()
        dense = np.random.default_rng(1).random((matrix.n_cols, 4))
        expected = matrix.multiply_dense(dense)
        config = ShardConfig(n_shards=2, replay_budget=2)
        with ShardRouter(config, proc_config=_proc_config()) as router:
            outcome = {}

            def submit():
                with faults.inject(
                    seed=0, delay_proc=1.0, delay_proc_seconds=0.4
                ):
                    outcome["result"] = router.execute(
                        matrix, dense, timeout=30.0
                    )

            thread = threading.Thread(target=submit)
            thread.start()
            assert _wait_for(lambda: _busy_pids(router.pools[0]))
            victim = _busy_pids(router.pools[0])[0]
            time.sleep(0.1)
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            result = outcome["result"]
            assert result.replays >= 1
            assert np.allclose(result.output, expected, atol=1e-9)
            assert router.snapshot()["replays"] >= 1
            assert router.replays_recent(30.0) >= 1

    def test_exhausted_shard_fails_the_batch_with_shard_id(self):
        matrix = _matrix()
        dense = np.random.default_rng(3).random((matrix.n_cols, 3))
        config = ShardConfig(n_shards=2, replay_budget=2)
        with ShardRouter(
            config, proc_config=_proc_config(restart_budget=0)
        ) as router:
            outcome = {}

            def submit():
                try:
                    with faults.inject(
                        seed=0, delay_proc=1.0, delay_proc_seconds=0.4
                    ):
                        router.execute(matrix, dense, timeout=30.0)
                except Exception as exc:  # noqa: BLE001
                    outcome["error"] = exc

            thread = threading.Thread(target=submit)
            thread.start()
            assert _wait_for(lambda: _busy_pids(router.pools[0]))
            victim = _busy_pids(router.pools[0])[0]
            time.sleep(0.1)
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            error = outcome["error"]
            assert isinstance(error, WorkerCrashError)
            assert "shard 0" in str(error)
            assert router.snapshot()["supervisor"]["exhausted_shards"] == [
                0
            ]
            assert router.supervisor.exhausted


class TestResultRelease:
    def test_router_returns_warm_blocks_to_the_shard_pools(self):
        matrix = _matrix()
        dense = np.ones((matrix.n_cols, 2))
        with ShardRouter(
            ShardConfig(n_shards=1), proc_config=_proc_config()
        ) as router:
            pool = router.pools[0]
            router.execute(matrix, dense)
            # The router released the per-shard results after gather, so
            # the pool's free list holds the warm block for reuse.
            with pool._out_lock:
                assert len(pool._out_free) >= 1

    def test_shm_result_release_is_idempotent(self):
        from repro.serve.procpool import ProcessWorkerPool

        matrix = _matrix()
        dense = np.ones((matrix.n_cols, 3))
        config = _proc_config(
            n_workers=1, kernel="engine", result_transport="shm"
        )
        with ProcessWorkerPool(config) as pool:
            result = pool.execute(matrix, dense)
            assert np.allclose(
                result.output, matrix.multiply_dense(dense), atol=1e-9
            )
            result.release()
            assert result.output is None
            result.release()  # second release is a no-op
            with pool._out_lock:
                assert len(pool._out_free) == 1
