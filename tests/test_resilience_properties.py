"""Property tests: degenerate graphs and corrupted inputs vs the oracles.

Every executor and baseline must agree with the independent reference on
valid-but-extreme graphs, and every corruption class must be stopped by
its declared detection layer — over arbitrary generated structures, not
just the fixed chaos-matrix seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    cusparse_like_spmm,
    gnnadvisor_spmm,
    merge_path_serial_spmm,
    row_splitting_spmm,
)
from repro.formats import CSRMatrix
from repro.formats.validation import validate_csr
from repro.resilience.corruption import (
    CORRUPTIONS,
    DEGENERATES,
    STRICT,
    VALIDATE,
)
from repro.resilience.oracles import (
    OracleError,
    reference_spmm,
    verified_spmm,
)


@st.composite
def csr_matrices(draw, max_rows=20, max_cols=14, max_row_nnz=10):
    """Arbitrary small CSR matrices with sorted, unique column indices."""
    n_rows = draw(st.integers(0, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    columns = []
    pointers = [0]
    for _ in range(n_rows):
        length = draw(st.integers(0, min(max_row_nnz, n_cols)))
        row_cols = draw(
            st.lists(
                st.integers(0, n_cols - 1),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        columns.extend(sorted(row_cols))
        pointers.append(len(columns))
    values = draw(
        st.lists(
            st.floats(-8.0, 8.0, allow_nan=False),
            min_size=len(columns),
            max_size=len(columns),
        )
    )
    return CSRMatrix(
        n_rows=n_rows,
        n_cols=n_cols,
        row_pointers=np.asarray(pointers, dtype=np.int64),
        column_indices=np.asarray(columns, dtype=np.int64),
        values=np.asarray(values, dtype=np.float64),
    )


BASELINES = {
    "merge-path-serial": lambda m, d: merge_path_serial_spmm(m, d, 4)[0],
    "row-splitting": lambda m, d: row_splitting_spmm(m, d, 4)[0],
    "gnnadvisor": lambda m, d: gnnadvisor_spmm(m, d)[0],
    "cusparse-like": lambda m, d: cusparse_like_spmm(m, d)[0],
}


class TestArbitraryGraphsAgree:
    @settings(max_examples=40, deadline=None)
    @given(matrix=csr_matrices(), n_threads=st.integers(1, 40))
    def test_verified_spmm_never_needs_fallback(self, matrix, n_threads):
        dense = np.random.default_rng(0).standard_normal((matrix.n_cols, 4))
        for executor in ("vectorized", "reference"):
            result = verified_spmm(
                matrix,
                dense,
                n_threads=n_threads,
                executor=executor,
                fallback=False,
            )
            assert not result.fallback_used

    @settings(max_examples=25, deadline=None)
    @given(matrix=csr_matrices())
    def test_baselines_match_reference(self, matrix):
        dense = np.random.default_rng(1).standard_normal((matrix.n_cols, 3))
        reference = reference_spmm(matrix, dense)
        for name, run in BASELINES.items():
            output = run(matrix, dense)
            assert np.allclose(output, reference, atol=1e-9), name

    @settings(max_examples=25, deadline=None)
    @given(matrix=csr_matrices())
    def test_strict_validation_accepts_canonical_matrices(self, matrix):
        validate_csr(
            matrix.row_pointers,
            matrix.column_indices,
            matrix.values,
            matrix.n_rows,
            matrix.n_cols,
            strict=True,
        )


class TestDegenerateGraphs:
    """The fixed registry of extreme-but-valid graphs (chaos matrix set)."""

    @pytest.mark.parametrize("name", sorted(DEGENERATES))
    @pytest.mark.parametrize("executor", ["vectorized", "reference"])
    def test_executors_agree(self, name, executor):
        matrix = DEGENERATES[name]()
        dense = np.random.default_rng(2).standard_normal((matrix.n_cols, 4))
        result = verified_spmm(
            matrix, dense, n_threads=4, executor=executor, fallback=False
        )
        assert np.allclose(result.output, reference_spmm(matrix, dense))

    @pytest.mark.parametrize("name", sorted(DEGENERATES))
    @pytest.mark.parametrize("baseline", sorted(BASELINES))
    def test_baselines_agree(self, name, baseline):
        matrix = DEGENERATES[name]()
        dense = np.random.default_rng(3).standard_normal((matrix.n_cols, 4))
        output = BASELINES[baseline](matrix, dense)
        assert np.allclose(output, reference_spmm(matrix, dense))


class TestCorruptionClasses:
    """Every corruption class is stopped by its declared layer."""

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_never_silent(self, name, seed):
        from repro.graphs import power_law_graph

        make, layer = CORRUPTIONS[name]
        base = power_law_graph(n_nodes=50, nnz=300, max_degree=14, seed=seed)
        corrupted = make(base, np.random.default_rng(seed))
        must_reject = layer in (VALIDATE, STRICT)
        try:
            validate_csr(
                corrupted.row_pointers,
                corrupted.column_indices,
                corrupted.values,
                corrupted.n_rows,
                corrupted.n_cols,
                strict=layer == STRICT,
            )
        except (ValueError, TypeError):
            return  # rejected by the declared validation layer
        assert not must_reject, f"{name} slipped past validation"
        # Oracle-layer corruption: must be detected (or recovered) at run
        # time, never silently accepted as a clean merge-path result.
        matrix = corrupted.as_matrix()
        dense = np.random.default_rng(seed).standard_normal(
            (matrix.n_cols, 4)
        )
        try:
            result = verified_spmm(matrix, dense, n_threads=16)
        except OracleError:
            return
        assert result.fallback_used, f"{name} produced silent output"
