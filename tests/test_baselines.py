"""Unit tests for all baseline SpMM algorithms."""

import numpy as np
import pytest

from repro.baselines import (
    AWBGCNConfig,
    AWBGCNModel,
    CuSparseKernel,
    NeighborGroupSchedule,
    RowSplitSchedule,
    SerialMergePathSchedule,
    cusparse_like_spmm,
    gnnadvisor_spmm,
    merge_path_serial_spmm,
    row_splitting_spmm,
    select_kernel,
)
from repro.formats import CSRMatrix
from repro.graphs import load_dataset


class TestRowSplitting:
    def test_correctness(self, dense_small, features):
        matrix = CSRMatrix.from_dense(dense_small)
        for n_threads in (1, 3, 12, 30):
            output, _ = row_splitting_spmm(matrix, features(12, 4), n_threads)
            assert np.allclose(output, dense_small @ features(12, 4))

    def test_equal_row_chunks(self, small_power_law):
        schedule = RowSplitSchedule.build(small_power_law, 10)
        rows = schedule.per_thread_rows
        assert rows.sum() == small_power_law.n_rows
        assert rows.max() - rows.min() <= 1

    def test_nnz_partition(self, small_power_law):
        schedule = RowSplitSchedule.build(small_power_law, 10)
        assert schedule.per_thread_nnz.sum() == small_power_law.nnz

    def test_power_law_imbalance_detected(self, small_power_law, small_structured):
        pl = RowSplitSchedule.build(small_power_law, 20).load_imbalance
        st = RowSplitSchedule.build(small_structured, 20).load_imbalance
        assert pl > st

    def test_rejects_zero_threads(self, small_power_law):
        with pytest.raises(ValueError):
            RowSplitSchedule.build(small_power_law, 0)

    def test_shape_mismatch(self, csr_small):
        schedule = RowSplitSchedule.build(csr_small, 2)
        with pytest.raises(ValueError, match="dimension mismatch"):
            schedule.execute(np.ones((3, 2)))


class TestNeighborGroups:
    def test_correctness(self, dense_small, features):
        matrix = CSRMatrix.from_dense(dense_small)
        for group_size in (1, 2, 4, None):
            output, _ = gnnadvisor_spmm(matrix, features(12, 4), group_size)
            assert np.allclose(output, dense_small @ features(12, 4))

    def test_default_group_size_is_average_degree(self, small_power_law):
        schedule = NeighborGroupSchedule.build(small_power_law)
        avg = small_power_law.nnz / small_power_law.n_rows
        assert schedule.group_size == max(1, round(avg))

    def test_groups_tile_each_row(self, paper_example):
        schedule = NeighborGroupSchedule.build(paper_example, 3)
        for row in range(paper_example.n_rows):
            mask = schedule.group_rows == row
            lo = paper_example.row_pointers[row]
            hi = paper_example.row_pointers[row + 1]
            assert schedule.group_lengths[mask].sum() == hi - lo
            if mask.any():
                assert schedule.group_starts[mask].min() == lo
                assert schedule.group_ends[mask].max() == hi

    def test_group_size_bound(self, small_power_law):
        schedule = NeighborGroupSchedule.build(small_power_law, 5)
        assert schedule.group_lengths.max() <= 5
        assert schedule.group_lengths.min() >= 1

    def test_all_updates_atomic(self, paper_example):
        schedule = NeighborGroupSchedule.build(paper_example, 2)
        assert schedule.atomic_writes == schedule.n_groups

    def test_evil_row_sharers(self, paper_example):
        schedule = NeighborGroupSchedule.build(paper_example, 2)
        assert schedule.max_row_sharers == 4  # row 1: 8 nnz / group of 2

    def test_empty_rows_get_no_groups(self, paper_example):
        schedule = NeighborGroupSchedule.build(paper_example, 2)
        assert 0 not in schedule.group_rows  # row 0 is empty

    def test_rejects_bad_group_size(self, paper_example):
        with pytest.raises(ValueError):
            NeighborGroupSchedule.build(paper_example, 0)


class TestSerialMergePath:
    def test_correctness(self, dense_small, features):
        matrix = CSRMatrix.from_dense(dense_small)
        for n_threads in (1, 4, 16):
            output, _ = merge_path_serial_spmm(matrix, features(12, 4), n_threads)
            assert np.allclose(output, dense_small @ features(12, 4))

    def test_carry_count_matches_atomic_segments(self, small_power_law):
        schedule = SerialMergePathSchedule.build(small_power_law, 64)
        assert (
            schedule.carry_count
            == schedule.schedule.statistics.atomic_writes
        )

    def test_serial_nnz_matches_atomic_nnz(self, small_power_law):
        schedule = SerialMergePathSchedule.build(small_power_law, 64)
        assert schedule.serial_nnz == schedule.schedule.statistics.atomic_nnz

    def test_more_threads_more_carries(self, small_power_law):
        few = SerialMergePathSchedule.build(small_power_law, 8)
        many = SerialMergePathSchedule.build(small_power_law, 128)
        assert many.carry_count > few.carry_count


class TestCuSparseLike:
    def test_correctness(self, dense_small, features):
        matrix = CSRMatrix.from_dense(dense_small)
        output, _ = cusparse_like_spmm(matrix, features(12, 4))
        assert np.allclose(output, dense_small @ features(12, 4))

    def test_power_law_selects_row_per_warp(self, small_power_law):
        assert select_kernel(small_power_law).kernel is CuSparseKernel.ROW_PER_WARP

    def test_structured_selects_balanced(self, small_structured):
        assert select_kernel(small_structured).kernel is CuSparseKernel.BALANCED_NNZ

    def test_twitter_selects_feature_major(self):
        twitter = load_dataset("Twitter-partial").adjacency
        assert select_kernel(twitter).kernel is CuSparseKernel.FEATURE_MAJOR

    def test_yeast_not_feature_major(self):
        yeast = load_dataset("Yeast").adjacency
        assert select_kernel(yeast).kernel is CuSparseKernel.BALANCED_NNZ

    def test_plan_reports_reason(self, small_power_law):
        assert "row-per-warp" in select_kernel(small_power_law).reason

    def test_efficiency_ordering(self):
        from repro.baselines.cusparse_like import KERNEL_EFFICIENCY

        assert (
            KERNEL_EFFICIENCY[CuSparseKernel.FEATURE_MAJOR]
            < KERNEL_EFFICIENCY[CuSparseKernel.BALANCED_NNZ]
            < KERNEL_EFFICIENCY[CuSparseKernel.ROW_PER_WARP]
        )


class TestAWBGCN:
    def test_published_cora_time(self):
        cora = load_dataset("Cora").adjacency
        model = AWBGCNModel()
        time_us = model.completion_time(cora, 16) * 1e6
        assert time_us == pytest.approx(4.3, rel=0.15)

    def test_tuner_always_helps_or_neutral(self, small_power_law):
        model = AWBGCNModel()
        assert model.speedup_from_tuner(small_power_law, 16) >= 1.0

    def test_tuner_helps_power_law_more(self, small_power_law, small_structured):
        model = AWBGCNModel()
        assert (
            model.speedup_from_tuner(small_power_law, 16)
            > model.speedup_from_tuner(small_structured, 16)
        )

    def test_evil_row_detection(self, paper_example):
        model = AWBGCNModel(AWBGCNConfig(evil_row_multiple=3.0))
        assert 1 in model.detect_evil_rows(paper_example)

    def test_dedicated_pool_shrinks_with_rows(self):
        model = AWBGCNModel()
        small = load_dataset("Cora").adjacency
        large = load_dataset("Nell").adjacency
        assert model.dedicated_evil_pes(small) == model.config.n_pes
        assert model.dedicated_evil_pes(large) < model.config.n_pes

    def test_row_loads_floor(self, paper_example):
        model = AWBGCNModel()
        loads = model.row_loads(paper_example, 1)
        assert (loads >= model.config.row_overhead_cycles).all()

    def test_rejects_bad_dim(self, paper_example):
        with pytest.raises(ValueError):
            AWBGCNModel().row_loads(paper_example, 0)

    def test_time_scales_with_dim(self):
        nell = load_dataset("Nell").adjacency
        model = AWBGCNModel()
        assert model.completion_time(nell, 64) > model.completion_time(nell, 16)
