"""Unit tests for the MergePath-SpMM executors (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    build_schedule,
    execute_reference,
    execute_vectorized,
    merge_path_spmm,
)
from repro.core.spmm import write_segments
from repro.formats import CSRMatrix


class TestCorrectness:
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 9, 31])
    def test_reference_matches_dense(self, dense_small, n_threads, features):
        matrix = CSRMatrix.from_dense(dense_small)
        schedule = build_schedule(matrix, n_threads)
        x = features(12, 5)
        output, _ = execute_reference(schedule, x)
        assert np.allclose(output, dense_small @ x)

    @pytest.mark.parametrize("n_threads", [1, 2, 4, 9, 31])
    def test_vectorized_matches_dense(self, dense_small, n_threads, features):
        matrix = CSRMatrix.from_dense(dense_small)
        schedule = build_schedule(matrix, n_threads)
        x = features(12, 5)
        output, _ = execute_vectorized(schedule, x)
        assert np.allclose(output, dense_small @ x)

    def test_executors_agree_exactly(self, rng):
        for _ in range(8):
            n = int(rng.integers(1, 30))
            dense = (rng.random((n, n)) < 0.3) * rng.random((n, n))
            matrix = CSRMatrix.from_dense(dense)
            x = rng.random((n, 4))
            for n_threads in (1, 3, 11):
                schedule = build_schedule(matrix, n_threads)
                out_ref, acc_ref = execute_reference(schedule, x)
                out_vec, acc_vec = execute_vectorized(schedule, x)
                assert np.allclose(out_ref, out_vec)
                assert acc_ref == acc_vec

    def test_paper_example_execution(self, paper_example, features):
        x = features(10, 3)
        schedule = build_schedule(paper_example, 4)
        output, accounting = execute_reference(schedule, x)
        assert np.allclose(output, paper_example.to_dense() @ x)
        # Threads 1 and 2 share row 1: exactly two atomic writes.
        assert accounting.atomic_writes == 2

    def test_dimension_one(self, paper_example):
        # SpMV special case.
        x = np.arange(10, dtype=float).reshape(10, 1)
        schedule = build_schedule(paper_example, 4)
        output, _ = execute_vectorized(schedule, x)
        assert np.allclose(output, paper_example.to_dense() @ x)

    def test_mismatched_operand(self, paper_example):
        schedule = build_schedule(paper_example, 2)
        with pytest.raises(ValueError, match="dimension mismatch"):
            execute_vectorized(schedule, np.ones((5, 2)))
        with pytest.raises(ValueError, match="dimension mismatch"):
            execute_reference(schedule, np.ones((5, 2)))


class TestAccountingMatchesSchedule:
    def test_counts_equal_statistics(self, small_power_law, features):
        x = features(small_power_law.n_cols, 4)
        for n_threads in (7, 64, 333):
            schedule = build_schedule(small_power_law, n_threads)
            _, accounting = execute_vectorized(schedule, x)
            stats = schedule.statistics
            assert accounting.atomic_writes == stats.atomic_writes
            assert accounting.regular_writes == stats.regular_writes
            assert accounting.atomic_nnz == stats.atomic_nnz
            assert accounting.regular_nnz == stats.regular_nnz

    def test_reference_counts_equal_statistics(self, paper_example, features):
        x = features(10, 2)
        for n_threads in (1, 2, 4, 13):
            schedule = build_schedule(paper_example, n_threads)
            _, accounting = execute_reference(schedule, x)
            stats = schedule.statistics
            assert accounting.atomic_writes == stats.atomic_writes
            assert accounting.regular_writes == stats.regular_writes


class TestWriteSegments:
    def test_segments_tile_nnz(self, small_power_law):
        schedule = build_schedule(small_power_law, 41)
        segments = write_segments(schedule)
        assert segments.lengths.sum() == small_power_law.nnz
        # Non-empty segments must be contiguous in nnz order.
        nonempty = segments.lengths > 0
        starts = segments.starts[nonempty]
        ends = (segments.starts + segments.lengths)[nonempty]
        assert starts[0] == 0
        assert np.array_equal(starts[1:], ends[:-1])
        assert ends[-1] == small_power_law.nnz

    def test_one_segment_per_row_write(self, small_power_law):
        schedule = build_schedule(small_power_law, 41)
        segments = write_segments(schedule)
        stats = schedule.statistics
        assert segments.n_segments == stats.total_writes

    def test_empty_rows_get_regular_segments(self, paper_example):
        schedule = build_schedule(paper_example, 2)
        segments = write_segments(schedule)
        empty_rows = {0, 4, 9}
        seg_rows = set(segments.rows[segments.lengths == 0].tolist())
        assert empty_rows.issubset(seg_rows)


class TestPublicAPI:
    def test_default_cost_from_dim(self, small_power_law, features):
        x = features(small_power_law.n_cols, 16)
        result = merge_path_spmm(small_power_law, x)
        assert np.allclose(result.output, small_power_law.multiply_dense(x))
        # dim 16 -> paper cost 20, but the 1024-thread floor binds here.
        assert result.schedule.n_threads == min(
            1024, small_power_law.n_rows + small_power_law.nnz
        )

    def test_explicit_thread_count(self, small_power_law, features):
        x = features(small_power_law.n_cols, 4)
        result = merge_path_spmm(small_power_law, x, n_threads=64)
        assert result.schedule.n_threads == 64

    def test_reference_executor_option(self, paper_example, features):
        x = features(10, 3)
        result = merge_path_spmm(paper_example, x, executor="reference",
                                 n_threads=4)
        assert np.allclose(result.output, paper_example.to_dense() @ x)

    def test_unknown_executor(self, paper_example, features):
        with pytest.raises(ValueError, match="unknown executor"):
            merge_path_spmm(paper_example, features(10, 2), executor="cuda")

    def test_rejects_1d_operand(self, paper_example):
        with pytest.raises(ValueError, match="2-D"):
            merge_path_spmm(paper_example, np.ones(10))

    def test_writes_accounting_exposed(self, small_power_law, features):
        x = features(small_power_law.n_cols, 8)
        result = merge_path_spmm(small_power_law, x, cost=10, min_threads=64)
        assert result.writes.atomic_writes == result.schedule.statistics.atomic_writes
