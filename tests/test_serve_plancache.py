"""Unit tests for the serving plan cache (content keys, LRU, threads)."""

import threading

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.serve.plancache import (
    PlanCache,
    compile_plan,
    get_plan_cache,
    set_plan_cache,
)


def _clone(matrix: CSRMatrix) -> CSRMatrix:
    """A structurally identical matrix in fresh arrays (distinct id)."""
    return CSRMatrix(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        row_pointers=matrix.row_pointers.copy(),
        column_indices=matrix.column_indices.copy(),
        values=matrix.values.copy(),
    )


class TestCompiledPlan:
    def test_execute_matches_reference(self, small_power_law, rng):
        dense = rng.random((small_power_law.n_cols, 8))
        plan = compile_plan(small_power_law, cost=20)
        assert np.allclose(
            plan.execute(dense), small_power_law.multiply_dense(dense)
        )

    def test_dimension_mismatch_rejected(self, small_power_law):
        plan = compile_plan(small_power_law, cost=20)
        with pytest.raises(ValueError, match="dimension mismatch"):
            plan.execute(np.zeros((small_power_law.n_cols + 1, 4)))

    def test_nbytes_positive(self, small_power_law):
        assert compile_plan(small_power_law, cost=20).nbytes > 0


class TestPlanCache:
    def test_content_keyed_hit(self, small_power_law):
        cache = PlanCache(capacity=8)
        first = cache.get(small_power_law, cost=20)
        second = cache.get(_clone(small_power_law), cost=20)
        assert first is second
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_hit_rebinds_to_callers_values(self, small_power_law, rng):
        # Regression: PlanCache keys on structure, but a cached plan must
        # never execute with another same-structure matrix's values.
        doubled = CSRMatrix(
            n_rows=small_power_law.n_rows,
            n_cols=small_power_law.n_cols,
            row_pointers=small_power_law.row_pointers.copy(),
            column_indices=small_power_law.column_indices.copy(),
            values=small_power_law.values * 2.0,
        )
        cache = PlanCache(capacity=8)
        cache.get(small_power_law, cost=20)
        plan = cache.get(doubled, cost=20)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)  # structural hit
        assert plan.matrix is doubled
        dense = rng.random((doubled.n_cols, 8))
        assert np.allclose(plan.execute(dense), doubled.multiply_dense(dense))
        # The original matrix's plan is unaffected by the rebind.
        original = cache.get(small_power_law, cost=20)
        assert np.allclose(
            original.execute(dense), small_power_law.multiply_dense(dense)
        )

    def test_default_cost_from_dim(self, small_power_law):
        cache = PlanCache(capacity=8)
        assert cache.get(small_power_law, dim=16) is cache.get(
            small_power_law, dim=16
        )

    def test_requires_cost_or_dim(self, small_power_law):
        with pytest.raises(ValueError, match="cost= or dim="):
            PlanCache().get(small_power_law)

    def test_lru_eviction_by_capacity(self, small_power_law):
        cache = PlanCache(capacity=2)
        cache.get(small_power_law, cost=10)
        cache.get(small_power_law, cost=20)
        cache.get(small_power_law, cost=40)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.evictions == 1
        # The oldest entry (cost 10) was evicted; re-fetching it misses.
        cache.get(small_power_law, cost=10)
        assert cache.stats().misses == 4

    def test_byte_bound_eviction(self, small_power_law):
        cache = PlanCache(capacity=64, max_bytes=1)
        cache.get(small_power_law, cost=10)
        cache.get(small_power_law, cost=20)
        stats = cache.stats()
        # The newest plan is always retained even over budget.
        assert stats.entries == 1
        assert stats.evictions == 1

    def test_byte_accounting_balances(self, small_power_law):
        cache = PlanCache(capacity=1)
        cache.get(small_power_law, cost=10)
        cache.get(small_power_law, cost=20)
        plan = cache.get(small_power_law, cost=20)
        assert cache.stats().bytes == plan.nbytes

    def test_clear_resets(self, small_power_law):
        cache = PlanCache()
        cache.get(small_power_law, cost=20)
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries, stats.bytes) == (
            0, 0, 0, 0,
        )

    def test_hit_rate(self, small_power_law):
        cache = PlanCache()
        cache.get(small_power_law, cost=20)
        cache.get(small_power_law, cost=20)
        cache.get(small_power_law, cost=20)
        assert cache.stats().hit_rate == pytest.approx(2 / 3)

    def test_concurrent_access_single_build(self, small_power_law):
        cache = PlanCache(capacity=8)
        plans, errors = [], []
        barrier = threading.Barrier(8)

        def worker() -> None:
            try:
                barrier.wait()
                for _ in range(20):
                    plans.append(cache.get(small_power_law, cost=20))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cache.stats().misses == 1
        assert all(plan is plans[0] for plan in plans)


class TestProcessWideCache:
    def test_set_and_restore(self):
        replacement = PlanCache(capacity=4)
        previous = set_plan_cache(replacement)
        try:
            assert get_plan_cache() is replacement
        finally:
            set_plan_cache(previous)
        assert get_plan_cache() is previous
