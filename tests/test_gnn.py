"""Unit tests for GNN layers, models, and the inference engine."""

import numpy as np
import pytest

from repro.core.scheduler import SchedulingMode
from repro.formats import CSRMatrix
from repro.gnn import (
    BACKENDS,
    GCN,
    GIN,
    GCNLayer,
    GraphSAGE,
    InferenceEngine,
    relu,
    sigmoid,
    spmm_backend,
)
from repro.graphs import Graph


@pytest.fixture
def tiny_graph(rng):
    dense = (rng.random((20, 20)) < 0.2) * 1.0
    graph = Graph(name="tiny", adjacency=CSRMatrix.from_dense(dense))
    return graph.with_features(rng.random((20, 8)))


class TestActivations:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_sigmoid_range(self):
        out = sigmoid(np.array([-100.0, 0.0, 100.0]))
        assert out[0] < 1e-6 and out[1] == 0.5 and out[2] > 1 - 1e-6


class TestBackends:
    def test_all_backends_agree(self, tiny_graph):
        adjacency = tiny_graph.adjacency
        x = tiny_graph.features
        reference = adjacency.multiply_dense(x)
        for name in BACKENDS:
            assert np.allclose(spmm_backend(name)(adjacency, x), reference), name

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown SpMM backend"):
            spmm_backend("tensor-cores")


class TestGCNLayer:
    def test_forward_matches_manual(self, tiny_graph):
        layer = GCNLayer.random(8, 4, seed=1, backend="reference")
        adjacency = tiny_graph.normalized_adjacency()
        expected = relu(
            adjacency.to_dense() @ (tiny_graph.features @ layer.weight)
        )
        assert np.allclose(layer.forward(adjacency, tiny_graph.features), expected)

    def test_backend_equivalence(self, tiny_graph):
        adjacency = tiny_graph.normalized_adjacency()
        outputs = []
        for backend in ("reference", "mergepath", "gnnadvisor", "cusparse"):
            layer = GCNLayer.random(8, 4, seed=1, backend=backend)
            outputs.append(layer.forward(adjacency, tiny_graph.features))
        for out in outputs[1:]:
            assert np.allclose(out, outputs[0])

    def test_rejects_bad_feature_width(self, tiny_graph):
        layer = GCNLayer.random(5, 4)
        with pytest.raises(ValueError, match="feature width"):
            layer.forward(tiny_graph.adjacency, tiny_graph.features)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError, match="2-D"):
            GCNLayer(np.ones(3))

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError, match="activation"):
            GCNLayer(np.ones((2, 2)), activation="gelu")


class TestModels:
    def test_gcn_forward_shape(self, tiny_graph):
        model = GCN.random([8, 16, 4], seed=0)
        out = model.forward(tiny_graph)
        assert out.shape == (20, 4)

    def test_gcn_last_layer_linear(self, tiny_graph):
        model = GCN.random([8, 4], seed=0)
        out = model.forward(tiny_graph)
        assert (out < 0).any()  # no ReLU on the output layer

    def test_gcn_rejects_width_mismatch(self):
        bad = [GCNLayer.random(4, 8), GCNLayer.random(4, 2)]
        with pytest.raises(ValueError, match="width mismatch"):
            GCN(bad)

    def test_gcn_needs_features(self, tiny_graph):
        model = GCN.random([8, 4])
        bare = Graph(name="bare", adjacency=tiny_graph.adjacency)
        with pytest.raises(ValueError, match="features"):
            model.forward(bare)

    def test_graphsage_forward_shape(self, tiny_graph):
        model = GraphSAGE.random([8, 4], seed=0)
        assert model.forward(tiny_graph).shape == (20, 4)

    def test_graphsage_mean_aggregation_rows_normalized(self, tiny_graph):
        mean_adj = GraphSAGE._mean_adjacency(tiny_graph)
        sums = mean_adj.to_dense().sum(axis=1)
        nonzero = tiny_graph.adjacency.row_lengths > 0
        assert np.allclose(sums[nonzero], 1.0)

    def test_gin_forward_shape(self, tiny_graph):
        model = GIN.random([8, 6, 4], seed=0)
        assert model.forward(tiny_graph).shape == (20, 4)

    def test_gin_eps_changes_output(self, tiny_graph):
        a = GIN.random([8, 4], seed=0, eps=0.0).forward(tiny_graph)
        b = GIN.random([8, 4], seed=0, eps=1.0).forward(tiny_graph)
        assert not np.allclose(a, b)

    def test_all_models_backend_invariant(self, tiny_graph):
        for cls in (GCN, GraphSAGE, GIN):
            ref = cls.random([8, 4], seed=3, backend="reference").forward(tiny_graph)
            mp = cls.random([8, 4], seed=3, backend="mergepath").forward(tiny_graph)
            assert np.allclose(ref, mp), cls.__name__


class TestInferenceEngine:
    def test_online_one_schedule_per_inference(self, tiny_graph):
        model = GCN.random([8, 8, 8], seed=0)
        engine = InferenceEngine(mode=SchedulingMode.ONLINE)
        report = engine.infer(model, tiny_graph)
        assert report.schedule_computations == 1
        assert report.kernel_invocations == 2

    def test_offline_amortizes_schedules(self, tiny_graph):
        model = GCN.random([8, 8, 8], seed=0)
        engine = InferenceEngine(mode=SchedulingMode.OFFLINE)
        first = engine.infer(model, tiny_graph)
        second = engine.infer(model, tiny_graph)
        assert first.schedule_computations == 1
        assert second.schedule_computations == 0
        assert second.modeled_schedule_cycles == 0.0

    def test_output_matches_plain_model(self, tiny_graph):
        model = GCN.random([8, 8, 8], seed=0, backend="reference")
        engine = InferenceEngine(mode=SchedulingMode.ONLINE)
        report = engine.infer(model, tiny_graph)
        assert np.allclose(report.output, model.forward(tiny_graph))

    def test_overhead_bounded(self, tiny_graph):
        model = GCN.random([8, 8, 8], seed=0)
        report = InferenceEngine(SchedulingMode.ONLINE).infer(model, tiny_graph)
        assert 0.0 < report.scheduling_overhead < 1.0
