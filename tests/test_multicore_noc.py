"""Unit tests for the mesh NoC, DRAM model, and trace generation."""

import numpy as np
import pytest

from repro.baselines import NeighborGroupSchedule
from repro.core import build_schedule
from repro.multicore import table1_machine
from repro.multicore.dram import DramModel
from repro.multicore.noc import MeshNetwork
from repro.multicore.trace import (
    ATOMIC,
    WRITE,
    AddressMap,
    gnnadvisor_traces,
    mergepath_traces,
)


class TestMesh:
    def test_coordinates(self):
        mesh = MeshNetwork(table1_machine(64))  # 8x8
        assert mesh.coordinates(0) == (0, 0)
        assert mesh.coordinates(9) == (1, 1)
        assert mesh.coordinates(63) == (7, 7)

    def test_coordinates_out_of_range(self):
        mesh = MeshNetwork(table1_machine(64))
        with pytest.raises(IndexError):
            mesh.coordinates(64)

    def test_hops_manhattan(self):
        mesh = MeshNetwork(table1_machine(64))
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 9) == 2
        assert mesh.hops(0, 63) == 14

    def test_base_latency(self):
        mesh = MeshNetwork(table1_machine(64))
        assert mesh.base_latency(0, 63) == 2 * 14

    def test_record_message_accumulates_flit_hops(self):
        mesh = MeshNetwork(table1_machine(64))
        mesh.record_message(0, 9, payload_bytes=64)  # 8 flits, 2 hops
        assert mesh.total_flit_hops == 16

    def test_record_bulk_equivalent_to_messages(self):
        a = MeshNetwork(table1_machine(64))
        b = MeshNetwork(table1_machine(64))
        for _ in range(5):
            a.record_message(3, 42, 64)
        b.record_bulk(3, 42, 64, count=5)
        assert a.total_flit_hops == b.total_flit_hops
        assert a.max_link_load() == b.max_link_load()

    def test_contention_factor_increases_with_load(self):
        mesh = MeshNetwork(table1_machine(64))
        low = mesh.contention_factor(1_000_000)
        mesh.record_bulk(0, 63, 64, count=10_000)
        high = mesh.contention_factor(1_000)
        assert high > low >= 1.0

    def test_contention_disabled(self):
        machine = table1_machine(64)
        from dataclasses import replace

        machine = replace(machine, noc=replace(machine.noc, link_contention=False))
        mesh = MeshNetwork(machine)
        mesh.record_bulk(0, 63, 64, count=10_000)
        assert mesh.contention_factor(1.0) == 1.0

    def test_reset(self):
        mesh = MeshNetwork(table1_machine(64))
        mesh.record_message(0, 63, 64)
        mesh.reset()
        assert mesh.total_flit_hops == 0


class TestDram:
    def test_latency_and_accounting(self):
        dram = DramModel(table1_machine(1024))
        latency = dram.record_access(64)
        assert latency == pytest.approx(100.0)
        assert dram.accesses == 1
        assert dram.bytes_transferred == 64

    def test_queueing_grows_with_traffic(self):
        dram = DramModel(table1_machine(1024))
        idle = dram.queueing_factor(1_000)
        for _ in range(10_000):
            dram.record_access(64)
        busy = dram.queueing_factor(1_000)
        assert busy > idle

    def test_controller_interleaving(self):
        dram = DramModel(table1_machine(1024))
        assert dram.controller_of(0) != dram.controller_of(1)
        assert dram.controller_of(32) == dram.controller_of(0)


class TestAddressMap:
    def test_regions_disjoint_and_ordered(self):
        amap = AddressMap(n_rows=100, nnz=500, dim=16)
        assert amap.rp_base < amap.cp_base < amap.val_base < amap.xw_base
        assert amap.xw_base < amap.out_base < amap.total_lines

    def test_dense_row_lines(self):
        amap = AddressMap(n_rows=10, nnz=20, dim=16)
        assert amap.lines_per_dense_row == 1
        amap64 = AddressMap(n_rows=10, nnz=20, dim=64)
        assert amap64.lines_per_dense_row == 4

    def test_line_lookup_vectorized(self):
        amap = AddressMap(n_rows=100, nnz=500, dim=16)
        j = np.array([0, 15, 16])
        lines = amap.cp_line(j)
        assert lines[0] == lines[1]  # same 64-byte line (16 ints)
        assert lines[2] == lines[0] + 1


class TestTraces:
    def test_mergepath_traces_cover_reads_and_writes(self, small_power_law):
        schedule = build_schedule(small_power_law, 16)
        traces = mergepath_traces(schedule, dim=16)
        assert len(traces) == 16
        amap = AddressMap(small_power_law.n_rows, small_power_law.nnz, 16)
        kinds = np.concatenate([t.kinds for t in traces])
        lines = np.concatenate([t.lines for t in traces])
        # Every output row line is written exactly by the write segments.
        write_mask = kinds != 0
        written = set(lines[write_mask].tolist())
        out_lines = set(
            range(amap.out_base, amap.out_base + small_power_law.n_rows)
        )
        assert written.issubset(out_lines)
        # Atomic writes exist (the power-law fixture splits rows).
        assert (kinds == ATOMIC).any()
        assert (kinds == WRITE).any()

    def test_mergepath_write_counts_match_schedule(self, small_power_law):
        schedule = build_schedule(small_power_law, 16)
        traces = mergepath_traces(schedule, dim=16)
        stats = schedule.statistics
        atomics = sum(int((t.kinds == ATOMIC).sum()) for t in traces)
        assert atomics == stats.atomic_writes  # dim 16 -> 1 line per row

    def test_mergepath_compute_scales_with_nnz(self, small_power_law):
        schedule = build_schedule(small_power_law, 8)
        traces = mergepath_traces(schedule, dim=16)
        total = sum(t.compute_cycles for t in traces)
        assert total >= small_power_law.nnz * 4  # >= fma cycles per nnz

    def test_gnnadvisor_traces_all_atomic(self, small_power_law):
        schedule = NeighborGroupSchedule.build(small_power_law)
        traces = gnnadvisor_traces(schedule, dim=16, n_cores=8)
        kinds = np.concatenate([t.kinds for t in traces])
        assert (kinds[kinds != 0] == ATOMIC).all()
        atomics = int((kinds == ATOMIC).sum())
        assert atomics == schedule.n_groups

    def test_gnnadvisor_round_robin_balance(self, small_power_law):
        schedule = NeighborGroupSchedule.build(small_power_law)
        traces = gnnadvisor_traces(schedule, dim=16, n_cores=8)
        accesses = np.array([t.n_accesses for t in traces])
        assert accesses.max() < 2.0 * max(1, accesses.mean())

    def test_trace_dedupe_removes_consecutive_repeats(self, small_power_law):
        schedule = build_schedule(small_power_law, 4)
        for trace in mergepath_traces(schedule, dim=16):
            pair_equal = (trace.lines[1:] == trace.lines[:-1]) & (
                trace.kinds[1:] == trace.kinds[:-1]
            )
            assert not pair_equal.any()
