"""Unit tests for GPU device description and model constants."""

import pytest

from repro.gpu import GPUDevice, ModelParams, quadro_rtx_6000


class TestDevice:
    def test_rtx6000_published_specs(self):
        dev = quadro_rtx_6000()
        assert dev.n_sms == 72
        assert dev.cuda_cores == 4608
        assert dev.clock_ghz == pytest.approx(1.44)
        assert dev.mem_bandwidth_gbps == pytest.approx(672.0)
        assert dev.warp_size == 32

    def test_bytes_per_cycle(self):
        dev = quadro_rtx_6000()
        assert dev.bytes_per_cycle == pytest.approx(672.0 / 1.44)

    def test_max_resident_warps(self):
        dev = quadro_rtx_6000()
        assert dev.max_resident_warps == 72 * 32

    def test_cycle_conversions(self):
        dev = quadro_rtx_6000()
        assert dev.cycles_to_microseconds(1440) == pytest.approx(1.0)
        assert dev.cycles_to_seconds(1.44e9) == pytest.approx(1.0)

    def test_custom_params_carried(self):
        params = ModelParams(launch_cycles=0.0)
        dev = quadro_rtx_6000(params)
        assert dev.params.launch_cycles == 0.0

    def test_params_frozen(self):
        with pytest.raises(Exception):
            quadro_rtx_6000().params.launch_cycles = 1.0

    def test_custom_device(self):
        dev = GPUDevice(
            name="toy", n_sms=2, cuda_cores=128, clock_ghz=1.0,
            mem_bandwidth_gbps=100.0,
        )
        assert dev.bytes_per_cycle == pytest.approx(100.0)
