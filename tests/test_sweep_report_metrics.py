"""Unit tests for multicore sweeps, GPU reports, and GNN metrics."""

import numpy as np
import pytest

from repro.gnn.metrics import (
    accuracy,
    cross_entropy,
    planted_community_labels,
    softmax,
)
from repro.gpu import kernel_time
from repro.gpu.report import breakdown_table, compare_kernels, comparison_table
from repro.multicore.sweep import ScalingCurve, sweep_core_counts


class TestScalingSweep:
    def test_sweep_shapes(self, small_power_law):
        curve = sweep_core_counts(
            small_power_law, "mergepath", core_counts=(32, 64, 128)
        )
        assert curve.core_counts == (32, 64, 128)
        assert curve.normalized[0] == pytest.approx(1.0)
        assert len(curve.completion_cycles) == 3

    def test_total_speedup(self, small_structured):
        curve = sweep_core_counts(
            small_structured, "mergepath", core_counts=(32, 128)
        )
        assert curve.total_speedup > 1.0

    def test_stall_detection(self):
        curve = ScalingCurve(
            kernel="x",
            core_counts=(64, 128, 256),
            completion_cycles=np.array([100.0, 50.0, 48.0]),
            compute_cycles=np.array([10.0, 5.0, 2.5]),
            memory_cycles=np.array([90.0, 45.0, 45.5]),
        )
        assert curve.scaling_stalls_after() == 128
        assert curve.compute_speedup == pytest.approx(4.0)

    def test_no_stall_reported_when_scaling(self):
        curve = ScalingCurve(
            kernel="x",
            core_counts=(64, 128),
            completion_cycles=np.array([100.0, 52.0]),
            compute_cycles=np.array([1.0, 0.5]),
            memory_cycles=np.array([99.0, 51.5]),
        )
        assert curve.scaling_stalls_after() is None

    def test_unknown_kernel(self, small_power_law):
        with pytest.raises(KeyError, match="unknown kernel"):
            sweep_core_counts(small_power_law, "magic")

    def test_unsorted_counts(self, small_power_law):
        with pytest.raises(ValueError, match="ascending"):
            sweep_core_counts(small_power_law, "mergepath",
                              core_counts=(128, 64))


class TestGPUReport:
    def test_breakdown_marks_binding_component(self, small_power_law):
        timing = kernel_time("mergepath", small_power_law, 16)
        table = breakdown_table(timing)
        assert "<- binding" in table
        assert "MergePath-SpMM" in table

    def test_compare_sorted_fastest_first(self, small_power_law):
        timings = compare_kernels(
            small_power_law, 16, kernels=("mergepath", "merge-path-serial")
        )
        assert timings[0].cycles <= timings[1].cycles

    def test_comparison_table_renders(self, small_power_law):
        timings = compare_kernels(
            small_power_law, 16, kernels=("mergepath", "gnnadvisor")
        )
        table = comparison_table(timings)
        assert "vs_fastest" in table

    def test_comparison_table_empty(self):
        with pytest.raises(ValueError):
            comparison_table([])


class TestMetrics:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(10, 4))
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs > 0).all()

    def test_softmax_stability_large_logits(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(probs).all()

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert cross_entropy(logits, np.array([0, 1])) < 1e-6

    def test_cross_entropy_uniform(self):
        logits = np.zeros((5, 4))
        assert cross_entropy(logits, np.zeros(5, dtype=int)) == pytest.approx(
            np.log(4)
        )

    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 4.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_label_shape_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2)), np.zeros((3, 1)))
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_planted_labels(self):
        labels = planted_community_labels(100, 7, seed=1)
        assert labels.shape == (100,)
        assert labels.min() >= 0 and labels.max() < 7
        with pytest.raises(ValueError):
            planted_community_labels(10, 0)
