"""End-to-end tests for the update-race chaos suite (``chaos-update``)."""

import json

import pytest

from repro.resilience.chaos_update import (
    UpdateChaosReport,
    main,
    run_update_chaos,
)


@pytest.fixture(scope="module")
def report() -> UpdateChaosReport:
    return run_update_chaos(seed=0)


class TestUpdateChaosSuite:
    def test_full_coverage_and_pass(self, report):
        assert report.coverage == 1.0, report.render()
        assert report.passed, report.render()
        assert not report.silent

    def test_demonstrates_live_update_machinery(self, report):
        assert len(report.epochs_served) >= 2
        assert report.retired_epochs >= 1
        assert report.compactions >= 1
        assert report.plan_repairs >= 1
        assert report.invalidated_keys >= 1
        assert report.verified_responses >= 1
        assert report.update_batches >= 1
        assert report.updates_applied >= report.update_batches

    def test_expected_case_names_present(self, report):
        names = {case.name for case in report.cases}
        assert "update-stream/epoch-pinned-responses" in names
        assert "update-mid-compile/no-deadlock-no-tear" in names
        assert "update-mid-eviction/no-stale-reuse" in names
        assert "retirement/precise-invalidation" in names
        assert "health/epoch-lag-and-backlog" in names

    def test_serialization_and_render(self, report):
        payload = report.to_dict()
        assert payload["coverage"] == 1.0
        assert payload["passed"] is True
        demos = payload["demonstrations"]
        assert demos["distinct_epochs"] >= 2
        assert demos["compactions"] >= 1
        assert demos["plan_repairs"] >= 1
        assert demos["epochs_served"] == sorted(report.epochs_served)
        assert len(payload["cases"]) == len(report.cases)
        rendered = report.render()
        assert "detection coverage: 100%" in rendered
        assert "SILENT" not in rendered

    def test_deterministic_across_seeds(self):
        # Different seeds still converge to full coverage — the suite's
        # assertions are invariants, not golden values.
        other = run_update_chaos(seed=3)
        assert other.coverage == 1.0, other.render()
        assert other.passed

    def test_empty_report_is_vacuously_covered_but_fails(self):
        empty = UpdateChaosReport(seed=0)
        assert empty.coverage == 1.0
        assert not empty.passed  # no demonstrations -> not a pass


class TestCli:
    def test_cli_writes_json_report(self, tmp_path):
        out = tmp_path / "report.json"
        code = main(["--seed", "0", "--no-record", "--json-out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["coverage"] == 1.0
        assert payload["passed"] is True
        assert payload["n_cases"] == 5

    def test_cli_writes_run_record(self, tmp_path):
        code = main(["--seed", "0", "--bench-dir", str(tmp_path)])
        assert code == 0
        doc = json.loads((tmp_path / "BENCH_chaos_update.json").read_text())
        assert doc["schema"] == "repro.obs.runs/2"
        record = doc["runs"][-1]
        assert record["status"] == "ok"
        assert record["chaos_update"]["passed"] is True
