"""Unit tests for request-scoped tracing (ledgers, activation, recorder)."""

import threading
import time

import pytest

from repro.obs.rtrace import (
    FlightRecorder,
    Ledger,
    RequestContext,
    activate,
    active_contexts,
    attribute,
    count,
    new_trace_id,
    stage,
)


class TestTraceIds:
    def test_unique_and_nonempty(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert all(ids)

    def test_context_new_assigns_id(self):
        a = RequestContext.new(request_id=1, route="r")
        b = RequestContext.new(request_id=2, route="r")
        assert a.trace_id != b.trace_id
        assert a.route == "r" and a.request_id == 1


class TestLedger:
    def test_accumulates_and_totals(self):
        ledger = Ledger()
        ledger.add("queue", 0.5)
        ledger.add("queue", 0.25)
        ledger.add("kernel", 1.0)
        assert ledger.stages() == {"queue": 0.75, "kernel": 1.0}
        assert ledger.total() == pytest.approx(1.75)

    def test_negative_clamped(self):
        ledger = Ledger()
        ledger.add("queue", -1.0)
        assert ledger.total() == 0.0

    def test_events(self):
        ledger = Ledger()
        ledger.count("plan_cache_hit")
        ledger.count("plan_cache_hit", 2)
        assert ledger.events() == {"plan_cache_hit": 3}

    def test_to_dict_is_a_snapshot(self):
        ledger = Ledger()
        ledger.add("queue", 1.0)
        doc = ledger.to_dict()
        ledger.add("queue", 1.0)
        assert doc["stages"]["queue"] == 1.0


class TestActivation:
    def test_inactive_stage_is_noop(self):
        # Must not raise and must not leak state.
        with stage("kernel"):
            pass
        assert active_contexts() == ()

    def test_activate_and_restore(self):
        ctx = RequestContext.new()
        assert active_contexts() == ()
        with activate(ctx):
            assert active_contexts() == (ctx,)
        assert active_contexts() == ()

    def test_none_entries_filtered(self):
        with activate(None):
            assert active_contexts() == ()
        ctx = RequestContext.new()
        with activate(None, ctx, None):
            assert active_contexts() == (ctx,)

    def test_stage_attributes_to_all_active(self):
        a, b = RequestContext.new(), RequestContext.new()
        with activate(a, b):
            with stage("kernel"):
                time.sleep(0.01)
        # Shared stages are charged at full wall value to each member.
        assert a.ledger.stages()["kernel"] >= 0.01
        assert b.ledger.stages()["kernel"] >= 0.01
        assert a.ledger is not b.ledger

    def test_nested_stages_self_time(self):
        ctx = RequestContext.new()
        with activate(ctx):
            with stage("kernel"):
                with stage("plan_compile"):
                    time.sleep(0.02)
        stages = ctx.ledger.stages()
        # The compile seconds land in plan_compile only; kernel keeps
        # its (tiny) self time, so the sum never double-counts.
        assert stages["plan_compile"] >= 0.02
        assert stages["kernel"] < 0.02

    def test_nested_activation_replaces_and_restores(self):
        outer, inner = RequestContext.new(), RequestContext.new()
        with activate(outer):
            with activate(inner):
                with stage("scatter"):
                    time.sleep(0.005)
            assert active_contexts() == (outer,)
        assert "scatter" in inner.ledger.stages()
        assert "scatter" not in outer.ledger.stages()

    def test_propagation_across_thread(self):
        """Contexts travel by value; activation is per-thread, explicit."""
        ctx = RequestContext.new()

        def worker():
            # The spawned thread starts with no inherited context.
            assert active_contexts() == ()
            with activate(ctx):
                with stage("kernel"):
                    time.sleep(0.01)

        thread = threading.Thread(target=worker)
        with activate(ctx):
            thread.start()
            thread.join()
        assert ctx.ledger.stages()["kernel"] >= 0.01

    def test_attribute_and_count_helpers(self):
        ctx = RequestContext.new()
        attribute("queue", 1.0)  # inactive: no-op
        count("plan_cache_hit")
        assert ctx.ledger.total() == 0.0
        with activate(ctx):
            attribute("queue", 1.0)
            count("plan_cache_hit", 2)
        assert ctx.ledger.stages() == {"queue": 1.0}
        assert ctx.ledger.events() == {"plan_cache_hit": 2}


class TestSummary:
    def test_summary_shape(self):
        ctx = RequestContext.new(request_id=7, route="cora")
        ctx.ledger.add("queue", 0.5)
        ctx.ledger.count("plan_compile")
        doc = ctx.summary(status="ok", backend="vectorized")
        assert doc["trace_id"] == ctx.trace_id
        assert doc["request_id"] == 7
        assert doc["route"] == "cora"
        assert doc["status"] == "ok"
        assert doc["backend"] == "vectorized"
        assert doc["total_seconds"] == pytest.approx(0.5)
        assert doc["stages"] == {"queue": 0.5}
        assert doc["events"] == {"plan_compile": 1}


def _summary(total, status="ok", **extra):
    return {"status": status, "total_seconds": total,
            "stages": {}, "events": {}, **extra}


class TestFlightRecorder:
    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(failed_capacity=0)

    def test_retains_slowest(self):
        recorder = FlightRecorder(capacity=3)
        for total in (0.1, 0.5, 0.2, 0.9, 0.05, 0.4):
            recorder.record(_summary(total))
        ranked = [s["total_seconds"] for s in recorder.slowest()]
        assert ranked == [0.9, 0.5, 0.4]
        assert recorder.recorded == 6
        assert len(recorder) == 3

    def test_bounded_under_overload(self):
        recorder = FlightRecorder(capacity=4, failed_capacity=4)
        for i in range(10_000):
            recorder.record(_summary(i * 1e-6))
        assert len(recorder) == 4
        assert recorder.recorded == 10_000

    def test_failure_ring_keeps_most_recent(self):
        recorder = FlightRecorder(capacity=2, failed_capacity=2)
        for i in range(5):
            recorder.record(_summary(0.0, status="error", seq=i))
        failures = recorder.failures()
        assert [f["seq"] for f in failures] == [3, 4]
        assert recorder.slowest() == []

    def test_slowest_n(self):
        recorder = FlightRecorder(capacity=8)
        for total in (0.3, 0.1, 0.2):
            recorder.record(_summary(total))
        assert [s["total_seconds"] for s in recorder.slowest(2)] == [0.3, 0.2]

    def test_to_dict(self):
        recorder = FlightRecorder(capacity=2, failed_capacity=2)
        recorder.record(_summary(0.5))
        recorder.record(_summary(0.0, status="rejected"))
        doc = recorder.to_dict()
        assert doc["recorded"] == 2
        assert len(doc["slowest"]) == 1
        assert len(doc["failures"]) == 1
        assert doc["capacity"] == 2
