"""Unit tests for the fault-injection layer (`repro.resilience.faults`)."""

import numpy as np
import pytest

from repro.core.spmm import merge_path_spmm
from repro.graphs import power_law_graph
from repro.resilience import faults
from repro.resilience.faults import ExecutionFaultError, FaultPlan


@pytest.fixture
def graph():
    return power_law_graph(n_nodes=120, nnz=720, max_degree=40, seed=3)


class TestFaultPlan:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_atomic=1.5)
        with pytest.raises(ValueError):
            FaultPlan(bitflip=-0.1)

    def test_accounting(self):
        plan = FaultPlan()
        plan.note_injected("bitflip", 3)
        plan.note_injected("bitflip")
        plan.note_detected("bitflip", 2)
        plan.note_recovered("fallback")
        assert plan.injected == {"bitflip": 4}
        assert plan.detected == {"bitflip": 2}
        assert plan.recovered == {"fallback": 1}
        assert plan.total_injected == 4

    def test_nonpositive_counts_ignored(self):
        plan = FaultPlan()
        plan.note_injected("x", 0)
        plan.note_injected("x", -2)
        assert plan.total_injected == 0

    def test_same_seed_same_draws(self):
        a, b = FaultPlan(seed=9), FaultPlan(seed=9)
        assert a.rng.random(5).tolist() == b.rng.random(5).tolist()


class TestInjectContext:
    def test_no_plan_by_default(self):
        assert faults.active_plan() is None

    def test_inject_activates_and_restores(self):
        with faults.inject(seed=1, bitflip=0.5) as plan:
            assert faults.active_plan() is plan
            assert plan.bitflip == 0.5
        assert faults.active_plan() is None

    def test_plans_nest(self):
        with faults.inject(seed=1) as outer:
            with faults.inject(seed=2) as inner:
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer

    def test_plan_and_kwargs_conflict(self):
        with pytest.raises(TypeError):
            with faults.inject(FaultPlan(), seed=3):
                pass  # pragma: no cover

    def test_detected_externally_credits_active_plan(self):
        with faults.inject() as plan:
            faults.detected_externally("some-check")
        assert plan.detected == {"some-check": 1}
        faults.detected_externally("no-plan-active")  # must not raise


class TestFlipMantissaBit:
    def test_perturbs_value_reversibly(self):
        arr = np.array([1.0, 2.0, 3.0])
        faults.flip_mantissa_bit(arr, 1)
        assert arr[1] != 2.0 and np.isfinite(arr[1])
        faults.flip_mantissa_bit(arr, 1)
        assert arr[1] == 2.0

    def test_rejects_non_float64(self):
        with pytest.raises(TypeError):
            faults.flip_mantissa_bit(np.array([1.0], dtype=np.float32), 0)


class TestExecutorInjection:
    """Injected executor faults must corrupt the output (so oracles can see)."""

    @pytest.mark.parametrize("executor", ["vectorized", "reference"])
    @pytest.mark.parametrize(
        "kwargs",
        [{"drop_atomic": 1.0}, {"bitflip": 0.7}, {"fail_unit": 5}],
        ids=["drop-atomic", "bitflip", "fail-unit"],
    )
    def test_fault_changes_output(self, graph, executor, kwargs):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((graph.n_cols, 6))
        clean = merge_path_spmm(graph, dense, n_threads=31, executor=executor)
        with faults.inject(seed=0, **kwargs) as plan:
            faulty = merge_path_spmm(
                graph, dense, n_threads=31, executor=executor
            )
        assert plan.total_injected > 0
        assert not np.allclose(faulty.output, clean.output)

    def test_no_plan_output_is_clean(self, graph, csr_small, dense_small):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((graph.n_cols, 4))
        result = merge_path_spmm(graph, dense, n_threads=17)
        assert np.allclose(result.output, graph.multiply_dense(dense))


class TestTimingModelInjection:
    def test_gpu_halted_warp_detected(self, graph):
        from repro.gpu.device import quadro_rtx_6000
        from repro.gpu.kernels import mergepath_workload
        from repro.gpu.timing import simulate

        device = quadro_rtx_6000()
        workload = mergepath_workload(graph, 16, device)
        simulate(workload, device)  # clean run passes the self-check
        with faults.inject(fail_unit=2) as plan:
            with pytest.raises(ExecutionFaultError, match="halted"):
                simulate(workload, device)
        assert plan.injected.get("halted_warp") == 1

    def test_multicore_halted_core_detected(self, graph):
        from repro.multicore.kernels import run_mergepath

        run_mergepath(graph, 8, n_cores=16)  # clean run completes
        with faults.inject(fail_unit=1) as plan:
            with pytest.raises(ExecutionFaultError, match="halted"):
                run_mergepath(graph, 8, n_cores=16)
        assert plan.injected.get("halted_core") == 1
