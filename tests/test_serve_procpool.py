"""Tests for the process-isolated worker pool and its service wiring."""

import os
import signal
import time

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.graphs.generators import power_law_graph
from repro.resilience import faults
from repro.serve.procpool import (
    QUARANTINED,
    WORKER_CRASHED,
    ProcessWorkerPool,
    ProcPoolConfig,
    QuarantinedError,
    WorkerCrashError,
    poison_key,
    rss_bytes,
)
from repro.serve.service import InferenceService, ServeConfig


def _matrix(seed: int = 0) -> CSRMatrix:
    return power_law_graph(n_nodes=40, nnz=200, max_degree=12, seed=seed)


def _config(**overrides) -> ProcPoolConfig:
    settings = dict(
        n_workers=2,
        heartbeat_interval=0.02,
        heartbeat_timeout=0.5,
        hang_timeout=0.6,
        poison_threshold=2,
        restart_budget=8,
        restart_window=60.0,
    )
    settings.update(overrides)
    return ProcPoolConfig(**settings)


def _wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"heartbeat_interval": 0.0},
            {"heartbeat_timeout": -1.0},
            {"hang_timeout": 0.0},
            {"poison_threshold": 0},
            {"quarantine_capacity": 0},
            {"segment_cache_capacity": 0},
            {"restart_budget": -1},
            {"start_method": "threads"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ProcPoolConfig(**kwargs)


class TestPoisonKey:
    def test_deterministic_and_content_sensitive(self):
        matrix = _matrix()
        fp = matrix.fingerprint(include_values=True)
        dense = np.ones((matrix.n_cols, 4))
        assert poison_key(fp, dense) == poison_key(fp, dense.copy())
        other = dense.copy()
        other[0, 0] += 1.0
        assert poison_key(fp, dense) != poison_key(fp, other)
        assert poison_key(fp, dense) != poison_key(fp + "x", dense)


class TestRssBytes:
    def test_own_rss_is_positive(self):
        assert rss_bytes() > 0

    def test_unknown_pid_reports_zero(self):
        assert rss_bytes(2**22 + 12345) == 0


class TestProcessWorkerPool:
    def test_executes_correctly_with_zero_graph_copy(self):
        matrix = _matrix()
        dense = np.random.default_rng(0).random((matrix.n_cols, 4))
        with ProcessWorkerPool(_config(n_workers=1)) as pool:
            result = pool.execute(matrix, dense)
            np.testing.assert_allclose(
                result.output, matrix.multiply_dense(dense),
                rtol=1e-12, atol=1e-12,
            )
            assert result.copied_bytes == 0
            assert result.kernel_seconds >= 0.0
            assert result.ipc_seconds >= 0.0
            # A second request over the same graph reuses the segment.
            pool.execute(matrix, dense)
            snapshot = pool.snapshot()
            assert snapshot["executed"] == 2
            assert snapshot["segments"]["active"] == 1
            assert snapshot["zero_copy"]["per_request_graph_bytes_copied"] == 0

    def test_crash_contained_and_respawned(self):
        matrix = _matrix(1)
        dense = np.ones((matrix.n_cols, 3))
        with ProcessWorkerPool(_config()) as pool:
            with faults.inject(seed=0, crash_proc=1.0):
                with pytest.raises(WorkerCrashError) as excinfo:
                    pool.execute(matrix, dense)
            assert excinfo.value.reason == "crash"
            assert excinfo.value.status == WORKER_CRASHED
            # The supervisor respawns; the pool keeps serving.
            result = pool.execute(matrix, dense)
            np.testing.assert_allclose(
                result.output, matrix.multiply_dense(dense)
            )
            assert pool.supervisor.restarts >= 1

    def test_hang_is_reaped_at_the_budget(self):
        matrix = _matrix(2)
        dense = np.ones((matrix.n_cols, 2))
        with ProcessWorkerPool(_config(n_workers=1)) as pool:
            started = time.monotonic()
            with faults.inject(seed=0, hang_proc=1.0):
                with pytest.raises(WorkerCrashError) as excinfo:
                    pool.execute(matrix, dense, timeout=0.3)
            elapsed = time.monotonic() - started
            assert excinfo.value.reason == "hang-timeout"
            assert elapsed < 5.0
            assert pool.kills["hang-timeout"] == 1

    def test_poison_key_quarantined_after_threshold(self):
        matrix = _matrix(3)
        dense = np.ones((matrix.n_cols, 2))
        key = poison_key(matrix.fingerprint(include_values=True), dense)
        with ProcessWorkerPool(_config(poison_threshold=2)) as pool:
            with faults.inject(seed=0, crash_proc=1.0):
                for _ in range(2):
                    with pytest.raises(WorkerCrashError):
                        pool.execute(matrix, dense, keys=(key,))
            assert pool.is_quarantined(key)
            assert pool.quarantine_size() == 1
            # The quarantined content fails fast without touching a worker.
            restarts = pool.supervisor.restarts
            with pytest.raises(QuarantinedError) as excinfo:
                pool.execute(matrix, dense, keys=(key,))
            assert excinfo.value.status == QUARANTINED
            assert pool.supervisor.restarts == restarts
            # Different content still serves.
            other = dense + 1.0
            other_key = poison_key(
                matrix.fingerprint(include_values=True), other
            )
            result = pool.execute(matrix, other, keys=(other_key,))
            np.testing.assert_allclose(
                result.output, matrix.multiply_dense(other)
            )

    def test_torn_segment_detected_republished_and_retried(self):
        matrix = _matrix(4)
        dense = np.random.default_rng(4).random((matrix.n_cols, 3))
        with ProcessWorkerPool(_config()) as pool:
            pool.execute(matrix, dense)
            with pool._seg_lock:
                segment = next(iter(pool._segments.values()))
            buffer = segment.buffer()
            offset = segment.meta.values_offset
            buffer[offset] = buffer[offset] ^ 0xFF
            # Respawned workers must re-attach (and re-verify) the pages.
            killed = set()
            with pool._cond:
                for slot in pool._slots.values():
                    if not slot.dead and slot.proc.is_alive():
                        killed.add(slot.proc.pid)
            for pid in killed:
                os.kill(pid, signal.SIGKILL)
            assert _wait_for(
                lambda: len(
                    {
                        s.proc.pid
                        for s in pool._slots.values()
                        if not s.dead and s.proc.is_alive()
                    }
                    - killed
                )
                >= pool.config.n_workers
            )
            result = pool.execute(matrix, dense)
            np.testing.assert_allclose(
                result.output, matrix.multiply_dense(dense),
                rtol=1e-12, atol=1e-12,
            )
            assert pool.republished >= 1

    def test_closed_pool_refuses_work(self):
        matrix = _matrix(5)
        pool = ProcessWorkerPool(_config(n_workers=1))
        pool.start()
        pool.close()
        from repro.serve.procpool import PoolError

        with pytest.raises(PoolError):
            pool.execute(matrix, np.ones((matrix.n_cols, 1)))


class TestServiceProcessIsolation:
    def _service(self, **proc_overrides):
        return InferenceService(
            config=ServeConfig(
                max_queue=64,
                max_batch=2,
                max_wait_ms=1.0,
                n_workers=2,
                verify=True,
                request_timeout=5.0,
                isolation="process",
            ),
            proc_config=_config(**proc_overrides),
        )

    def test_isolation_validated(self):
        with pytest.raises(ValueError):
            ServeConfig(isolation="container")

    def test_serves_and_attributes_ipc(self):
        matrix = _matrix(6)
        dense = np.random.default_rng(6).random((matrix.n_cols, 4))
        with self._service() as service:
            response = service.submit(matrix, dense).result(timeout=30.0)
            assert response.ok
            np.testing.assert_allclose(
                response.output, matrix.multiply_dense(dense),
                rtol=1e-9, atol=1e-9,
            )
            assert response.backend == "procpool"
            stages = response.attribution["stages"]
            assert "ipc" in stages
            assert "kernel" in stages
            health = service.health()
            assert "procpool" in health.snapshot
            zero_copy = health.snapshot["procpool"]["zero_copy"]
            assert zero_copy["per_request_graph_bytes_copied"] == 0

    def test_kill_worker_mid_batch_fails_only_that_batch(self):
        """A SIGKILLed worker takes down exactly its batch; queued
        requests still complete and the pool respawns."""
        matrix = _matrix(7)
        rng = np.random.default_rng(7)
        with self._service() as service:
            pool = service._proc_pool
            with faults.inject(
                seed=0, delay_proc=1.0, delay_proc_seconds=0.4
            ):
                victim_dense = rng.random((matrix.n_cols, 3))
                victim = service.submit(matrix, victim_dense)
                assert _wait_for(
                    lambda: any(
                        s.job is not None
                        for s in pool._slots.values()
                        if not s.dead
                    )
                )
            # Aim at the victim's worker before anything else goes busy.
            with pool._cond:
                busy = [
                    s.proc.pid
                    for s in pool._slots.values()
                    if s.job is not None and not s.dead and s.proc.is_alive()
                ]
            queued = []
            for _ in range(3):
                dense = rng.random((matrix.n_cols, 3))
                queued.append((dense, service.submit(matrix, dense)))
            for pid in busy:
                os.kill(pid, signal.SIGKILL)
            victim_response = victim.result(timeout=30.0)
            assert victim_response.status == WORKER_CRASHED
            assert victim_response.output is None
            for dense, future in queued:
                response = future.result(timeout=30.0)
                assert response.ok, response.error
                np.testing.assert_allclose(
                    response.output, matrix.multiply_dense(dense),
                    rtol=1e-9, atol=1e-9,
                )
            assert _wait_for(lambda: pool.supervisor.restarts >= 1)

    def test_quarantined_content_is_refused_at_admission(self):
        matrix = _matrix(8)
        dense = np.ones((matrix.n_cols, 2))
        with self._service() as service:
            with faults.inject(seed=0, crash_proc=1.0):
                for _ in range(2):
                    response = service.submit(matrix, dense).result(
                        timeout=30.0
                    )
                    assert response.status == WORKER_CRASHED
            refused = service.submit(matrix, dense).result(timeout=30.0)
            assert refused.status == QUARANTINED
            health = service.health()
            assert any(
                cause.kind == "worker-quarantine-active"
                for cause in health.causes
            )
            # Different content keeps serving.
            other = dense + 1.0
            response = service.submit(matrix, other).result(timeout=30.0)
            assert response.ok, response.error
