"""End-to-end tests for the serving chaos matrix (``chaos-serve``)."""

import json

import pytest

from repro.resilience.chaos_serve import ServeChaosReport, main, run_serve_chaos


@pytest.fixture(scope="module")
def report() -> ServeChaosReport:
    return run_serve_chaos(seed=0)


class TestServeChaosMatrix:
    def test_full_coverage_and_pass(self, report):
        assert report.coverage == 1.0, report.render()
        assert report.passed, report.render()
        assert not report.silent

    def test_demonstrates_every_guard(self, report):
        assert report.breaker_trips >= 1
        assert report.breaker_recoveries >= 1
        assert report.worker_restarts >= 1
        assert report.deadline_shed >= 1
        # The open-breaker phase routed traffic through the verified floor.
        assert report.floor_requests >= 1
        assert report.verified_responses >= 1

    def test_expected_case_names_present(self, report):
        names = {case.name for case in report.cases}
        assert "persistent-fault/breaker-trips" in names
        assert "open-breaker/isolates-backend" in names
        assert "half-open/recovers-to-healthy" in names
        assert "worker-crash/batch-fails-cleanly" in names
        assert "worker-crash/supervisor-restarts" in names
        assert "bitflip/verified-fallback" in names
        assert "corrupt-matrix/nan-values" in names
        assert "expired-deadline/shed-before-execution" in names

    def test_serialization_and_render(self, report):
        payload = report.to_dict()
        assert payload["coverage"] == 1.0
        assert payload["passed"] is True
        demos = payload["demonstrations"]
        assert demos["breaker_trips"] >= 1
        assert demos["worker_restarts"] >= 1
        assert len(payload["cases"]) == len(report.cases)
        rendered = report.render()
        assert "detection coverage: 100%" in rendered
        assert "SILENT" not in rendered

    def test_empty_report_is_vacuously_covered_but_fails(self):
        empty = ServeChaosReport(seed=0)
        assert empty.coverage == 1.0
        assert not empty.passed  # no demonstrations -> not a pass


class TestCli:
    def test_cli_writes_json_report(self, tmp_path):
        out = tmp_path / "report.json"
        code = main(["--seed", "0", "--no-record", "--json-out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert payload["coverage"] == 1.0
