"""Property-based tests (hypothesis) for the core invariants.

These are the load-balance and correctness guarantees the paper's
algorithm rests on, checked over arbitrary CSR structures:

* merge-path splits tile the matrix exactly, with bounded per-thread cost;
* every output row is owned by exactly one regular writer or by atomic
  writers only;
* the executors agree with dense ground truth and with each other;
* format conversions are lossless.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import build_schedule, execute_reference, execute_vectorized
from repro.core.merge_path import merge_path_splits, thread_diagonals
from repro.formats import CSRMatrix
from repro.formats.stats import gini_coefficient


@st.composite
def csr_matrices(draw, max_rows=24, max_cols=16, max_row_nnz=12):
    """Arbitrary small CSR matrices, including empty and evil rows."""
    n_rows = draw(st.integers(1, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    lengths = draw(
        st.lists(st.integers(0, max_row_nnz), min_size=n_rows, max_size=n_rows)
    )
    row_pointers = np.concatenate(([0], np.cumsum(lengths)))
    nnz = int(row_pointers[-1])
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return CSRMatrix(
        n_rows=n_rows,
        n_cols=n_cols,
        row_pointers=row_pointers,
        column_indices=np.array(cols, dtype=np.int64),
        values=np.array(values),
    )


@given(matrix=csr_matrices(), n_threads=st.integers(1, 40))
@settings(max_examples=120, deadline=None)
def test_schedule_invariants_hold(matrix, n_threads):
    """Tiling, cost bound, and row-ownership partition, for any input."""
    schedule = build_schedule(matrix, n_threads)
    schedule.validate()


@given(matrix=csr_matrices(), n_threads=st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_executors_match_ground_truth(matrix, n_threads):
    """Both executors equal A @ X and agree on write accounting."""
    x = np.random.default_rng(0).random((matrix.n_cols, 3))
    schedule = build_schedule(matrix, n_threads)
    expected = matrix.to_dense() @ x
    out_ref, acc_ref = execute_reference(schedule, x)
    out_vec, acc_vec = execute_vectorized(schedule, x)
    assert np.allclose(out_ref, expected, atol=1e-9)
    assert np.allclose(out_vec, expected, atol=1e-9)
    assert acc_ref == acc_vec


@given(matrix=csr_matrices(), n_threads=st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_splits_are_monotone_and_exhaustive(matrix, n_threads):
    """Boundary coordinates are sorted and cover the whole merge path."""
    diagonals = thread_diagonals(matrix, n_threads)
    coords = merge_path_splits(matrix, diagonals)
    assert (np.diff(coords[:, 0]) >= 0).all()
    assert (np.diff(coords[:, 1]) >= 0).all()
    assert tuple(coords[0]) == (0, 0)
    assert tuple(coords[-1]) == (matrix.n_rows, matrix.nnz)


@given(matrix=csr_matrices())
@settings(max_examples=60, deadline=None)
def test_format_round_trips(matrix):
    """CSR -> COO -> CSR and CSR -> CSC -> CSR preserve the dense matrix."""
    dense = matrix.to_dense()
    assert np.allclose(matrix.to_coo().to_csr().to_dense(), dense)
    assert np.allclose(matrix.to_csc().to_csr().to_dense(), dense)
    assert np.allclose(matrix.transpose().transpose().to_dense(), dense)


@given(matrix=csr_matrices())
@settings(max_examples=60, deadline=None)
def test_spmm_identity(matrix):
    """A @ I = dense(A) for every structure."""
    identity = np.eye(matrix.n_cols)
    schedule = build_schedule(matrix, 4)
    output, _ = execute_vectorized(schedule, identity)
    assert np.allclose(output, matrix.to_dense())


@given(
    lengths=st.lists(st.integers(0, 100), min_size=1, max_size=50)
)
@settings(max_examples=100, deadline=None)
def test_gini_bounds(lengths):
    """The Gini coefficient always lies in [0, 1)."""
    g = gini_coefficient(np.array(lengths))
    assert 0.0 <= g < 1.0


@given(matrix=csr_matrices(), cost=st.integers(1, 30))
@settings(max_examples=60, deadline=None)
def test_cost_bound_is_respected(matrix, cost):
    """No thread ever exceeds the merge-path cost."""
    from repro.core import schedule_for_cost

    schedule = schedule_for_cost(matrix, cost, min_threads=None)
    assert schedule.per_thread_items().max(initial=0) <= cost


@given(matrix=csr_matrices(), n_threads=st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_atomic_rows_have_multiple_or_single_foreign_writers(matrix, n_threads):
    """A row is regular iff exactly one thread owns all of its non-zeros."""
    schedule = build_schedule(matrix, n_threads)
    boundaries = schedule.start_nnzs
    rp = matrix.row_pointers
    atomic_rows = set(np.unique(schedule.atomic_row_targets()).tolist())
    for row in range(matrix.n_rows):
        lo, hi = rp[row], rp[row + 1]
        if lo == hi:
            continue
        # Threads whose nnz range intersects [lo, hi).
        owners = {
            int(np.searchsorted(schedule.end_nnzs, j, side="right"))
            for j in (lo, hi - 1)
        }
        if len(owners) > 1:
            assert row in atomic_rows
