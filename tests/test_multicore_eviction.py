"""Tests for L2-eviction directory cleanup and the A100 device profile."""

import numpy as np
import pytest

from repro.gpu import a100_like, quadro_rtx_6000
from repro.multicore import MulticoreSystem, table1_machine
from repro.multicore.cache import SetAssociativeCache
from repro.multicore.config import CacheConfig
from repro.multicore.trace import ThreadTrace


class TestAccessWithVictim:
    def test_hit_reports_no_victim(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=128, associativity=2))
        cache.access(0)
        hit, victim = cache.access_with_victim(0)
        assert hit and victim is None

    def test_fill_without_eviction(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=128, associativity=2))
        hit, victim = cache.access_with_victim(0)
        assert not hit and victim is None

    def test_eviction_reports_lru_victim(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=128, associativity=2))
        cache.access(0)
        cache.access(1)
        hit, victim = cache.access_with_victim(2)
        assert not hit and victim == 0


class TestL2EvictionCleansDirectory:
    def test_directory_dropped_on_l2_eviction(self):
        machine = table1_machine(4)
        system = MulticoreSystem(machine)
        # All lines homed at slice 0 (line % 4 == 0); slice is 2 MB at 4
        # cores, so force conflict misses within one set instead: lines
        # spaced by 4 * n_sets collide in the same set of slice 0.
        n_sets = machine.l2_slice.n_sets
        assoc = machine.l2_slice.associativity
        stride = 4 * n_sets
        lines = [i * stride for i in range(assoc + 1)]
        trace = ThreadTrace(
            lines=np.array(lines, dtype=np.int64),
            kinds=np.zeros(len(lines), dtype=np.int8),
            compute_cycles=0.0,
        )
        system.run([trace])
        # The first line was evicted from slice 0, so its directory entry
        # (core 0 was a sharer) must be gone.
        assert system.directory.sharers_of(lines[0]) == ()
        assert system.l2_slices[0].stats.evictions >= 1

    def test_l1_copy_recalled_on_l2_eviction(self):
        machine = table1_machine(4)
        system = MulticoreSystem(machine)
        n_sets = machine.l2_slice.n_sets
        assoc = machine.l2_slice.associativity
        stride = 4 * n_sets
        lines = [i * stride for i in range(assoc + 1)]
        trace = ThreadTrace(
            lines=np.array(lines, dtype=np.int64),
            kinds=np.zeros(len(lines), dtype=np.int8),
            compute_cycles=0.0,
        )
        system.run([trace])
        assert not system.l1s[0].contains(lines[0])


class TestDeviceProfiles:
    def test_a100_specs(self):
        device = a100_like()
        assert device.n_sms == 108
        assert device.mem_bandwidth_gbps == pytest.approx(1555.0)
        assert device.max_warps_per_sm == 64

    def test_a100_more_bandwidth_per_cycle(self):
        assert a100_like().bytes_per_cycle > 2 * quadro_rtx_6000().bytes_per_cycle
