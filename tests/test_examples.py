"""Smoke tests: the lighter example scripts run end to end.

The heavy examples (multicore_scaling, kernel_comparison on big inputs)
are exercised through their underlying harnesses elsewhere; here the
quick ones run exactly as a user would invoke them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, argv: list[str] | None = None):
    saved_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved_argv


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "verified against dense reference" in out
    assert "atomic" in out


def test_node_classification_runs(capsys):
    _run("node_classification.py")
    out = capsys.readouterr().out
    assert "2-layer GCN" in out


def test_cost_tuning_runs(capsys):
    _run("cost_tuning.py", ["Cora"])
    out = capsys.readouterr().out
    assert "tuned_cost" in out


@pytest.mark.parametrize(
    "name",
    ["quickstart.py", "gcn_inference.py", "kernel_comparison.py",
     "multicore_scaling.py", "cost_tuning.py", "node_classification.py"],
)
def test_examples_exist_and_have_docstring(name):
    text = (EXAMPLES / name).read_text()
    assert text.startswith('"""'), f"{name} missing module docstring"
    assert "Run:" in text, f"{name} missing run instructions"
