"""Smoke tests: every example script runs end to end in quick mode.

Examples are the first code a new user runs, and nothing else imports
them — without these tests they'd rot silently as the library's API
moves.  Each one is run exactly as a user would invoke it (``runpy``
with ``__main__`` semantics), with small arguments where the script
accepts them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, argv: list[str] | None = None):
    saved_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved_argv


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "verified against dense reference" in out
    assert "atomic" in out


def test_node_classification_runs(capsys):
    _run("node_classification.py")
    out = capsys.readouterr().out
    assert "2-layer GCN" in out


def test_cost_tuning_runs(capsys):
    _run("cost_tuning.py", ["Cora"])
    out = capsys.readouterr().out
    assert "tuned_cost" in out


def test_gcn_inference_runs(capsys):
    _run("gcn_inference.py")
    out = capsys.readouterr().out
    assert "offline" in out.lower() or "online" in out.lower()


def test_kernel_comparison_runs(capsys):
    _run("kernel_comparison.py", ["Cora", "8"])
    out = capsys.readouterr().out
    assert "mergepath" in out.lower() or "merge" in out.lower()


def test_multicore_scaling_runs(capsys):
    _run("multicore_scaling.py", ["Cora"])
    out = capsys.readouterr().out
    assert "core" in out.lower()


def test_fast_inference_runs(capsys):
    _run("fast_inference.py")
    out = capsys.readouterr().out
    assert "winner:" in out
    assert "fused GCN" in out


def test_sharded_serving_runs(capsys):
    _run("sharded_serving.py", ["2"])
    out = capsys.readouterr().out
    assert "verified against the dense reference" in out
    assert "halo rows" in out
    assert "shard pools" in out


ALL_EXAMPLES = [
    "quickstart.py", "gcn_inference.py", "kernel_comparison.py",
    "multicore_scaling.py", "cost_tuning.py", "node_classification.py",
    "fast_inference.py", "sharded_serving.py",
]


def test_every_example_on_disk_is_tested():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(ALL_EXAMPLES), (
        "examples/ changed: update ALL_EXAMPLES and add a runner test"
    )


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_examples_exist_and_have_docstring(name):
    text = (EXAMPLES / name).read_text()
    assert text.startswith('"""'), f"{name} missing module docstring"
    assert "Run:" in text, f"{name} missing run instructions"
