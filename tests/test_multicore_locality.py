"""Unit tests for locality-aware thread placement."""

import numpy as np
import pytest

from repro.core import build_schedule
from repro.multicore import MulticoreSystem, table1_machine
from repro.multicore.locality import (
    apply_placement,
    linear_placement,
    tile_placement,
)
from repro.multicore.trace import mergepath_traces


class TestPlacements:
    def test_linear_identity(self):
        assert np.array_equal(linear_placement(5), [0, 1, 2, 3, 4])

    def test_tile_placement_is_bijection(self):
        machine = table1_machine(64)
        placement = tile_placement(machine, 64, tile=4)
        assert sorted(placement.tolist()) == list(range(64))

    def test_tile_placement_groups_neighbours(self):
        machine = table1_machine(64)  # 8x8 mesh
        placement = tile_placement(machine, 64, tile=4)
        # The first 16 threads all land inside the top-left 4x4 tile.
        first = placement[:16]
        xs, ys = first % 8, first // 8
        assert xs.max() < 4 and ys.max() < 4

    def test_tile_one_is_linear_order(self):
        machine = table1_machine(64)
        assert np.array_equal(tile_placement(machine, 64, tile=1),
                              linear_placement(64))

    def test_tile_rejects_bad_args(self):
        machine = table1_machine(64)
        with pytest.raises(ValueError):
            tile_placement(machine, 64, tile=0)
        with pytest.raises(ValueError):
            tile_placement(machine, 100, tile=4)


class TestApplyPlacement:
    def test_reorders_traces(self, small_power_law):
        machine = table1_machine(64)
        schedule = build_schedule(small_power_law, 64)
        traces = mergepath_traces(schedule, 16)
        placement = tile_placement(machine, 64, tile=4)
        slots = apply_placement(traces, placement, 64)
        assert len(slots) == 64
        for thread, core in enumerate(placement):
            assert slots[core] is traces[thread]

    def test_rejects_length_mismatch(self, small_power_law):
        schedule = build_schedule(small_power_law, 8)
        traces = mergepath_traces(schedule, 16)
        with pytest.raises(ValueError, match="placement covers"):
            apply_placement(traces, np.arange(4), 64)

    def test_rejects_duplicate_core(self, small_power_law):
        schedule = build_schedule(small_power_law, 2)
        traces = mergepath_traces(schedule, 16)
        with pytest.raises(ValueError, match="assigned twice"):
            apply_placement(traces, np.array([3, 3]), 64)

    def test_placed_run_matches_workload(self, small_power_law):
        """Total work is placement-invariant; only latency shifts."""
        machine = table1_machine(64)
        schedule = build_schedule(small_power_law, 64)
        traces = mergepath_traces(schedule, 16)
        linear = MulticoreSystem(machine).run(
            apply_placement(traces, linear_placement(64), 64)
        )
        tiled = MulticoreSystem(machine).run(
            apply_placement(traces, tile_placement(machine, 64), 64)
        )
        assert linear.dram_accesses == tiled.dram_accesses
        ratio = tiled.completion_cycles / linear.completion_cycles
        assert 0.7 < ratio < 1.3
