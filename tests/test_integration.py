"""Cross-module integration tests: the paper's claims end to end."""

import numpy as np
import pytest

from repro import (
    CSRMatrix,
    Graph,
    load_dataset,
    merge_path_spmm,
    power_law_graph,
    schedule_for_cost,
)
from repro.baselines import gnnadvisor_spmm, merge_path_serial_spmm, row_splitting_spmm
from repro.gnn import GCN
from repro.gpu import kernel_time
from repro.multicore import run_gnnadvisor, run_mergepath


class TestAlgorithmsAgreeEndToEnd:
    def test_all_kernels_same_product_on_dataset(self):
        graph = load_dataset("Citeseer")
        x = graph.random_features(8, seed=1)
        expected = graph.adjacency.multiply_dense(x)
        assert np.allclose(merge_path_spmm(graph.adjacency, x).output, expected)
        assert np.allclose(gnnadvisor_spmm(graph.adjacency, x)[0], expected)
        assert np.allclose(
            merge_path_serial_spmm(graph.adjacency, x, 64)[0], expected
        )
        assert np.allclose(
            row_splitting_spmm(graph.adjacency, x, 16)[0], expected
        )

    def test_gcn_on_generated_power_law(self):
        adjacency = power_law_graph(300, 2_000, 120, seed=11)
        graph = Graph(name="gen", adjacency=adjacency)
        model = GCN.random([8, 16, 4], seed=2)
        out = model.forward(graph, graph.random_features(8, seed=3))
        reference = GCN(
            [  # same weights, reference backend
                type(layer)(layer.weight, layer.activation_name, "reference")
                for layer in model.layers
            ]
        ).forward(graph, graph.random_features(8, seed=3))
        assert np.allclose(out, reference)


class TestPaperClaims:
    def test_load_balance_vs_row_splitting(self):
        """Merge-path bounds per-thread work where row-splitting cannot."""
        from repro.baselines import RowSplitSchedule

        adjacency = load_dataset("Nell").adjacency
        threads = 1024
        mp = schedule_for_cost(
            adjacency, (adjacency.n_rows + adjacency.nnz) // threads,
            min_threads=None,
        )
        rs = RowSplitSchedule.build(adjacency, threads)
        mp_imbalance = mp.per_thread_items().max() / mp.per_thread_items().mean()
        rs_imbalance = rs.per_thread_nnz.max() / rs.per_thread_nnz.mean()
        assert mp_imbalance < 1.5
        assert rs_imbalance > 3.0

    def test_no_preprocessing_of_csr(self):
        """MergePath-SpMM consumes the CSR arrays untouched."""
        adjacency = load_dataset("Cora").adjacency
        rp = adjacency.row_pointers.copy()
        cp = adjacency.column_indices.copy()
        merge_path_spmm(adjacency, np.ones((adjacency.n_cols, 4)))
        assert np.array_equal(adjacency.row_pointers, rp)
        assert np.array_equal(adjacency.column_indices, cp)

    def test_gpu_speedup_headline(self):
        """MergePath-SpMM outperforms GNNAdvisor on the Table II suite."""
        from repro.experiments.reporting import geometric_mean

        ratios = []
        for name in ("Cora", "Pubmed", "email-Euall", "Nell", "DD"):
            adjacency = load_dataset(name).adjacency
            base = kernel_time("gnnadvisor", adjacency, 16).cycles
            ours = kernel_time("mergepath", adjacency, 16, cost=20).cycles
            ratios.append(base / ours)
        assert geometric_mean(ratios) > 1.3

    def test_multicore_headline(self):
        """MergePath-SpMM scales past GNNAdvisor at high core counts.

        Uses Cora: on the tiny synthetic fixture both kernels hit the same
        evil-row serialization wall, which is not the Figure 9 regime.
        """
        adjacency = load_dataset("Cora").adjacency
        mp64 = run_mergepath(adjacency, 16, 64).completion_cycles
        mp512 = run_mergepath(adjacency, 16, 512).completion_cycles
        gn64 = run_gnnadvisor(adjacency, 16, 64).completion_cycles
        gn512 = run_gnnadvisor(adjacency, 16, 512).completion_cycles
        assert (mp64 / mp512) > (gn64 / gn512)

    def test_schedule_reuse_is_bitwise_identical(self):
        """Offline reuse returns the same decomposition (Section III-D)."""
        adjacency = load_dataset("Cora").adjacency
        a = schedule_for_cost(adjacency, 20)
        b = schedule_for_cost(adjacency, 20)
        assert np.array_equal(a.start_nnzs, b.start_nnzs)
        assert np.array_equal(a.start_rows, b.start_rows)

    def test_dimension_sweep_correctness(self):
        """The kernel is correct at every studied dimension size."""
        adjacency = power_law_graph(200, 1_500, 90, seed=5)
        rng = np.random.default_rng(0)
        for dim in (2, 4, 8, 16, 32, 64, 128):
            x = rng.random((200, dim))
            result = merge_path_spmm(adjacency, x)
            assert np.allclose(result.output, adjacency.multiply_dense(x))
