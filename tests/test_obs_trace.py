"""Chrome-trace recorder tests: JSON schema validity and span nesting."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.trace import TraceRecorder


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    obs.set_registry(None)
    obs.set_recorder(None)


REQUIRED_COMPLETE_EVENT_KEYS = {"ph", "name", "cat", "ts", "dur", "pid", "tid"}


class TestTraceSchema:
    def test_document_shape(self, tmp_path):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            pass
        path = recorder.write(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ms"

    def test_complete_events_carry_required_keys(self):
        recorder = TraceRecorder()
        with recorder.span("s", category="test", nnz=5):
            pass
        (event,) = [e for e in recorder.events if e["ph"] == "X"]
        assert REQUIRED_COMPLETE_EVENT_KEYS <= set(event)
        assert event["name"] == "s"
        assert event["cat"] == "test"
        assert event["dur"] >= 0.0
        assert event["args"]["nnz"] == 5

    def test_args_coerced_to_jsonable(self, tmp_path):
        recorder = TraceRecorder()
        with recorder.span("s", matrix=object()):
            pass
        # Must not raise on serialization.
        recorder.write(tmp_path / "trace.json")

    def test_instant_event(self):
        recorder = TraceRecorder()
        recorder.instant("tick", step=1)
        (event,) = [e for e in recorder.events if e["ph"] == "i"]
        assert event["args"]["step"] == 1


class TestNesting:
    def test_nested_spans_contained_and_depth_tagged(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        spans = {e["name"]: e for e in recorder.events if e["ph"] == "X"}
        outer, inner = spans["outer"], spans["inner"]
        assert outer["args"]["depth"] == 0
        assert inner["args"]["depth"] == 1
        # Chrome reconstructs nesting from time containment on one tid.
        assert outer["tid"] == inner["tid"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_exception_marks_span_errored(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            with recorder.span("failing"):
                raise ValueError("boom")
        (event,) = [e for e in recorder.events if e["ph"] == "X"]
        assert event["args"]["error"] == "ValueError: boom"

    def test_n_spans(self):
        recorder = TraceRecorder()
        with recorder.span("a"):
            pass
        with recorder.span("b"):
            pass
        assert recorder.n_spans == 2


class TestModuleLevelSpan:
    def test_noop_without_recorder(self):
        assert obs.get_recorder() is None
        with obs.span("anything") as args:
            assert args is None

    def test_records_with_active_recorder(self):
        recorder = TraceRecorder()
        obs.set_recorder(recorder)
        with obs.span("working", x=1):
            obs.instant("mid")
        assert recorder.n_spans == 1
        assert any(e["ph"] == "i" for e in recorder.events)
