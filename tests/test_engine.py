"""Unit tests for the engine fast path: arena, plans, cache, pipeline."""

import numpy as np
import pytest

from repro.core import build_schedule, execute_vectorized
from repro.core.schedule import schedule_for_cost
from repro.engine import (
    AGGREGATE_FIRST,
    TRANSFORM_FIRST,
    Arena,
    EnginePlanCache,
    FusedGCNPipeline,
    choose_ordering,
    compile_engine_plan,
    engine_spmm,
    execute_engine,
)
from repro.formats import CSRMatrix
from repro.gnn.models import GCN
from repro.resilience import faults


class TestArena:
    def test_reuses_backing_storage(self):
        arena = Arena()
        first = arena.take("buf", (4, 8))
        second = arena.take("buf", (4, 8))
        assert first.shape == second.shape == (4, 8)
        assert arena.allocations == 1
        assert arena.reuses == 1

    def test_take_zeroes_by_default(self):
        arena = Arena()
        buf = arena.take("buf", (3, 3))
        buf.fill(7.0)
        again = arena.take("buf", (3, 3))
        assert np.all(again == 0.0)
        dirty = arena.take("buf", (3, 3), zero=False)
        assert dirty.shape == (3, 3)  # contents unspecified, shape right

    def test_grows_geometrically(self):
        arena = Arena()
        arena.take("buf", (4,))
        arena.take("buf", (100,))
        assert arena.allocations == 2
        # A smaller request after growth reuses the big backing buffer.
        arena.take("buf", (50,))
        assert arena.allocations == 2

    def test_release_drops_bytes(self):
        arena = Arena()
        arena.take("buf", (64,))
        assert arena.nbytes > 0
        arena.release()
        assert arena.nbytes == 0


class TestEnginePlan:
    @pytest.mark.parametrize("strategy", ["grouped", "reduceat"])
    @pytest.mark.parametrize("dim", [1, 4, 33])
    def test_matches_vectorized_executor(
        self, small_power_law, features, strategy, dim
    ):
        x = features(small_power_law.n_cols, dim)
        schedule = schedule_for_cost(small_power_law, 30)
        expected, accounting = execute_vectorized(schedule, x)
        plan = compile_engine_plan(small_power_law, schedule=schedule)
        out = plan.execute(x, strategy=strategy)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-12)
        assert plan.accounting == accounting

    def test_paper_example(self, paper_example, features):
        x = features(paper_example.n_cols, 6)
        plan = compile_engine_plan(paper_example, cost=4)
        np.testing.assert_allclose(
            plan.execute(x), paper_example.multiply_dense(x)
        )

    def test_empty_matrix(self):
        empty = CSRMatrix.from_arrays([0, 0, 0], [])
        plan = compile_engine_plan(empty, cost=4)
        out = plan.execute(np.ones((2, 3)))
        assert out.shape == (2, 3)
        assert np.all(out == 0.0)

    def test_out_parameter_is_filled_in_place(self, paper_example, features):
        x = features(paper_example.n_cols, 4)
        plan = compile_engine_plan(paper_example, cost=4)
        buf = np.full((paper_example.n_rows, 4), 9.0)
        returned = plan.execute(x, out=buf)
        assert returned is buf
        np.testing.assert_allclose(buf, paper_example.multiply_dense(x))

    def test_out_shape_mismatch_rejected(self, paper_example, features):
        plan = compile_engine_plan(paper_example, cost=4)
        with pytest.raises(ValueError, match="out must be"):
            plan.execute(
                features(paper_example.n_cols, 4), out=np.zeros((1, 4))
            )

    def test_dimension_mismatch_rejected(self, paper_example):
        plan = compile_engine_plan(paper_example, cost=4)
        with pytest.raises(ValueError, match="dimension mismatch"):
            plan.execute(np.ones((3, 2)))

    def test_unknown_strategy_rejected(self, paper_example, features):
        plan = compile_engine_plan(paper_example, cost=4)
        with pytest.raises(ValueError, match="unknown strategy"):
            plan.execute(features(paper_example.n_cols, 2), strategy="magic")
        with pytest.raises(ValueError, match="unknown strategy"):
            compile_engine_plan(paper_example, cost=4, strategy="magic")

    def test_feature_blocking_matches_unblocked(
        self, small_power_law, features
    ):
        x = features(small_power_law.n_cols, 20)
        wide = compile_engine_plan(small_power_law, dim=20, block=64)
        narrow = compile_engine_plan(small_power_law, dim=20, block=7)
        np.testing.assert_allclose(narrow.execute(x), wide.execute(x))

    def test_rebind_swaps_values_not_structure(self, paper_example, features):
        plan = compile_engine_plan(paper_example, cost=4)
        scaled = CSRMatrix(
            n_rows=paper_example.n_rows,
            n_cols=paper_example.n_cols,
            row_pointers=paper_example.row_pointers,
            column_indices=paper_example.column_indices,
            values=paper_example.values * 3.0,
        )
        rebound = plan.rebind(scaled)
        x = features(paper_example.n_cols, 3)
        np.testing.assert_allclose(
            rebound.execute(x), 3.0 * plan.execute(x), rtol=1e-12
        )

    def test_honors_fault_injection(self, small_power_law, features):
        # Chaos parity: a fault plan that zeroes segment sums must change
        # the engine's output exactly like the core executors'.
        x = features(small_power_law.n_cols, 4)
        plan = compile_engine_plan(small_power_law, dim=4)
        clean = plan.execute(x)
        with faults.inject(seed=3, drop_atomic=1.0) as fault_plan:
            faulty = plan.execute(x)
        assert fault_plan.total_injected > 0
        assert not np.allclose(faulty, clean)

    def test_execute_engine_returns_accounting(
        self, small_power_law, features
    ):
        x = features(small_power_law.n_cols, 8)
        schedule = build_schedule(small_power_law, 64)
        expected, accounting = execute_vectorized(schedule, x)
        out, acc = execute_engine(schedule, x)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-12)
        assert acc == accounting


class TestEnginePlanCache:
    def test_hit_on_same_content(self, small_power_law):
        cache = EnginePlanCache(capacity=4)
        a = cache.get(small_power_law, 30)
        b = cache.get(small_power_law, 30)
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_rebinds_on_same_structure_different_values(
        self, paper_example, features
    ):
        cache = EnginePlanCache(capacity=4)
        cache.get(paper_example, 4)
        scaled = CSRMatrix(
            n_rows=paper_example.n_rows,
            n_cols=paper_example.n_cols,
            row_pointers=paper_example.row_pointers,
            column_indices=paper_example.column_indices,
            values=paper_example.values * 2.0,
        )
        plan = cache.get(scaled, 4)
        x = features(paper_example.n_cols, 2)
        np.testing.assert_allclose(
            plan.execute(x), scaled.multiply_dense(x), rtol=1e-12
        )

    def test_lru_eviction(self, paper_example, small_power_law):
        cache = EnginePlanCache(capacity=1)
        cache.get(paper_example, 4)
        cache.get(small_power_law, 30)
        assert len(cache) == 1
        cache.get(paper_example, 4)
        assert cache.misses == 3  # evicted entry recompiled

    def test_requires_some_sizing_hint(self, paper_example):
        cache = EnginePlanCache()
        with pytest.raises(ValueError, match="pass cost=, dim=, or schedule="):
            cache.get(paper_example)

    def test_engine_spmm_cached_entry_point(self, small_power_law, features):
        x = features(small_power_law.n_cols, 8)
        out = engine_spmm(small_power_law, x)
        np.testing.assert_allclose(
            out, small_power_law.multiply_dense(x), rtol=1e-9, atol=1e-12
        )


class TestFusedPipeline:
    def test_ordering_by_flop_count(self):
        assert choose_ordering(100, 1_000, 32, 8).ordering == TRANSFORM_FIRST
        assert choose_ordering(100, 1_000, 8, 32).ordering == AGGREGATE_FIRST
        # Ties go transform-first (the accelerators' conventional order).
        assert choose_ordering(100, 1_000, 8, 8).ordering == TRANSFORM_FIRST

    def test_flop_model(self):
        plan = choose_ordering(10, 100, 4, 2)
        assert plan.flops_transform_first == 2.0 * 10 * 4 * 2 + 2.0 * 100 * 2
        assert plan.flops_aggregate_first == 2.0 * 10 * 4 * 2 + 2.0 * 100 * 4
        assert plan.flops == plan.flops_transform_first
        assert plan.spmm_width == 2

    def test_matches_layerwise_forward(self, small_power_law, features):
        model = GCN.random([12, 16, 3], seed=5)
        x = features(small_power_law.n_cols, 12)
        pipeline = FusedGCNPipeline(model, small_power_law)
        fused = pipeline.forward(x)
        hidden = x
        for layer in model.layers:
            hidden = layer.forward(small_power_law, hidden)
        np.testing.assert_allclose(fused, hidden, rtol=1e-9, atol=1e-12)

    def test_widening_layer_uses_aggregate_first(self, small_power_law):
        model = GCN.random([4, 32], seed=1)
        pipeline = FusedGCNPipeline(model, small_power_law)
        assert pipeline.layer_plans[0].ordering == AGGREGATE_FIRST
        assert pipeline.total_flops == pipeline.layer_plans[0].flops

    def test_single_plan_shared_across_layers(self, small_power_law, features):
        model = GCN.random([8, 8, 8, 8], seed=2)
        pipeline = FusedGCNPipeline(model, small_power_law)
        out = pipeline.forward(features(small_power_law.n_cols, 8))
        assert out.shape == (small_power_law.n_rows, 8)
        # One compiled plan serves every layer of every forward pass.
        assert pipeline.plan is not None
        again = pipeline.forward(features(small_power_law.n_cols, 8))
        np.testing.assert_allclose(out, again)
