"""Unit tests for the Table I machine configuration."""

import pytest

from repro.multicore import table1_machine
from repro.multicore.config import CacheConfig


class TestCacheConfig:
    def test_geometry(self):
        cache = CacheConfig(size_bytes=4 * 1024, associativity=4)
        assert cache.n_lines == 64
        assert cache.n_sets == 16

    def test_degenerate_small_cache(self):
        cache = CacheConfig(size_bytes=64, associativity=4)
        assert cache.n_sets == 1


class TestTable1Machine:
    def test_reference_configuration(self):
        m = table1_machine(1024)
        assert m.n_cores == 1024
        assert m.clock_ghz == 1.0
        assert m.l1.size_bytes == 4 * 1024
        assert m.l1.hit_cycles == 1
        assert m.l2_slice.size_bytes == 8 * 1024
        assert m.directory_pointers == 4
        assert m.dram.n_controllers == 32
        assert m.dram.latency_ns == 100.0
        assert m.dram.bandwidth_gbps == 320.0
        assert m.noc.hop_cycles == 2
        assert m.noc.flit_bits == 64
        assert m.simd_width == 4

    def test_total_l2_constant_across_core_counts(self):
        for cores in (64, 128, 256, 512, 1024):
            assert table1_machine(cores).total_l2_bytes == 8 * 1024 * 1024

    def test_controllers_scale_down(self):
        assert table1_machine(512).dram.n_controllers == 16
        assert table1_machine(64).dram.n_controllers == 2

    def test_bandwidth_constant(self):
        assert table1_machine(64).dram.bandwidth_gbps == 320.0

    def test_mesh_dimensions(self):
        m = table1_machine(1024)
        assert (m.mesh_width, m.mesh_height) == (32, 32)
        m = table1_machine(128)
        assert m.mesh_width * m.mesh_height >= 128

    def test_dram_latency_cycles(self):
        assert table1_machine(1024).dram_latency_cycles == pytest.approx(100.0)

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            table1_machine(0)

    def test_cycles_to_seconds(self):
        assert table1_machine(64).cycles_to_seconds(1e9) == pytest.approx(1.0)
