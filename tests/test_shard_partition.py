"""Tests for the graph partitioners behind sharded serving.

The load-bearing guarantee is the property test at the bottom: for any
valid CSR matrix, any shard count, and either strategy, the sharded data
path (scatter -> per-shard SpMM -> halo gather) must equal the
full-graph scipy oracle *bit for bit* on integer-valued inputs — the
partition may change where work happens, never what is computed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats import CSRMatrix
from repro.graphs.generators import power_law_graph
from repro.resilience.oracles import reference_spmm
from repro.shard import (
    STRATEGIES,
    build_partition,
    contiguous_block_assignment,
    edge_cut_assignment,
    partition_graph,
)


def _operand(matrix, width=5, seed=0):
    """Integer-valued float64 operand so shard summation is exact."""
    rng = np.random.default_rng(seed)
    return rng.integers(-4, 5, size=(matrix.n_cols, width)).astype(np.float64)


def _graph(seed=0):
    return power_law_graph(160, 960, 24, seed=seed)


class TestAssignments:
    def test_block_covers_every_column_in_range(self):
        matrix = _graph()
        assignment = contiguous_block_assignment(matrix, 4)
        assert assignment.shape == (matrix.n_cols,)
        assert assignment.min() >= 0 and assignment.max() < 4
        # Contiguous: shard ids never decrease along the column axis.
        assert (np.diff(assignment) >= 0).all()

    def test_block_single_shard_is_all_zero(self):
        matrix = _graph()
        assert not contiguous_block_assignment(matrix, 1).any()

    def test_edge_cut_respects_shard_range(self):
        matrix = _graph()
        assignment = edge_cut_assignment(matrix, 3, seed=7)
        assert assignment.shape == (matrix.n_cols,)
        assert assignment.min() >= 0 and assignment.max() < 3

    def test_edge_cut_shrinks_halo_on_hidden_cluster_graph(self):
        # Two 30-column clusters whose labels are shuffled: the
        # contiguous block split cannot see them, greedy affinity can,
        # so greedy should leave far fewer boundary (halo) rows.
        perm = np.random.default_rng(0).permutation(60)
        blocks = []
        for base in (0, 30):
            for row in range(30):
                cols = (base + np.arange(5) + row) % 30 + base
                blocks.append(np.sort(perm[cols]))
        lengths = [len(b) for b in blocks]
        matrix = CSRMatrix(
            n_rows=60,
            n_cols=60,
            row_pointers=np.concatenate(([0], np.cumsum(lengths))),
            column_indices=np.concatenate(blocks),
            values=np.ones(sum(lengths)),
        )
        block = partition_graph(matrix, 2, strategy="block")
        greedy = partition_graph(matrix, 2, strategy="edge-cut")
        assert greedy.stats.halo_rows < block.stats.halo_rows

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            contiguous_block_assignment(_graph(), 0)
        with pytest.raises(ValueError, match="slack"):
            edge_cut_assignment(_graph(), 2, slack=0.5)


class TestBuildPartition:
    def test_shards_tile_the_nnz_exactly(self):
        matrix = _graph()
        for strategy in STRATEGIES:
            partition = partition_graph(matrix, 4, strategy=strategy)
            assert sum(p.nnz for p in partition.shards) == matrix.nnz
            owned = np.concatenate([p.cols for p in partition.shards])
            assert np.array_equal(np.sort(owned), np.arange(matrix.n_cols))

    def test_halo_rows_are_multi_shard_rows(self):
        partition = partition_graph(_graph(), 4)
        counts = np.zeros(partition.n_rows, dtype=int)
        for part in partition.shards:
            counts[part.rows] += 1
        assert np.array_equal(
            partition.halo_rows, np.flatnonzero(counts >= 2)
        )
        assert np.array_equal(partition.row_shard_counts, counts)

    def test_local_matrices_carry_version(self):
        matrix = _graph().with_version(7)
        partition = partition_graph(matrix, 3)
        assert all(p.matrix.version == 7 for p in partition.shards)

    def test_bad_assignment_shape_rejected(self):
        matrix = _graph()
        with pytest.raises(ValueError, match="shape"):
            build_partition(matrix, np.zeros(3, dtype=np.int64), 2)

    def test_out_of_range_assignment_rejected(self):
        matrix = _graph()
        bad = np.zeros(matrix.n_cols, dtype=np.int64)
        bad[0] = 5
        with pytest.raises(ValueError, match="shard ids"):
            build_partition(matrix, bad, 2)

    def test_empty_matrix_partitions_cleanly(self):
        matrix = CSRMatrix(
            n_rows=4,
            n_cols=6,
            row_pointers=np.zeros(5, dtype=np.int64),
            column_indices=np.zeros(0, dtype=np.int64),
            values=np.zeros(0),
        )
        partition = partition_graph(matrix, 3)
        assert partition.stats.balance == 1.0
        assert partition.stats.edge_cut == 0.0
        out = partition.spmm(np.ones((6, 2)))
        assert np.array_equal(out, np.zeros((4, 2)))


class TestStats:
    def test_stats_fields_are_consistent(self):
        matrix = _graph()
        partition = partition_graph(matrix, 4)
        stats = partition.stats
        assert stats.n_shards == 4
        assert sum(stats.nnz_per_shard) == matrix.nnz
        assert stats.balance >= 1.0
        assert 0.0 <= stats.edge_cut <= 1.0
        assert stats.halo_rows == len(partition.halo_rows)
        assert stats.gather_rows == sum(stats.rows_per_shard)
        assert stats.distinct_rows >= stats.halo_rows

    def test_halo_bytes_prices_surplus_row_copies(self):
        partition = partition_graph(_graph(), 4)
        stats = partition.stats
        surplus = stats.gather_rows - stats.distinct_rows
        assert stats.halo_bytes(8) == surplus * 8 * 8
        single = partition_graph(_graph(), 1)
        assert single.stats.halo_bytes(8) == 0

    def test_to_dict_round_trips_via_json_types(self):
        import json

        payload = partition_graph(_graph(), 2).stats.to_dict()
        assert json.loads(json.dumps(payload))["n_shards"] == 2


class TestScatterGather:
    def test_scatter_slices_cover_operand_once(self):
        matrix = _graph()
        partition = partition_graph(matrix, 4)
        dense = _operand(matrix)
        blocks = partition.scatter(dense)
        assert sum(len(b) for b in blocks) == matrix.n_cols
        for part, block in zip(partition.shards, blocks):
            assert np.array_equal(block, dense[part.cols])

    def test_scatter_rejects_wrong_operand_shape(self):
        partition = partition_graph(_graph(), 2)
        with pytest.raises(ValueError, match="operand"):
            partition.scatter(np.ones((3, 2)))

    def test_gather_rejects_wrong_output_count_and_shape(self):
        matrix = _graph()
        partition = partition_graph(matrix, 2)
        with pytest.raises(ValueError, match="shard outputs"):
            partition.gather([None], width=2)
        bad = [
            np.zeros((1, 2)) if len(p.rows) != 1 else np.zeros((2, 2))
            for p in partition.shards
        ]
        with pytest.raises(ValueError, match="shape"):
            partition.gather(bad, width=2)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("n_shards", [1, 3, 7])
    def test_spmm_matches_dense_oracle(self, strategy, n_shards):
        matrix = _graph(seed=3)
        dense = _operand(matrix, width=6, seed=3)
        partition = partition_graph(matrix, n_shards, strategy=strategy)
        expected = matrix.multiply_dense(dense)
        assert np.array_equal(partition.spmm(dense), expected)


@st.composite
def integer_csr_matrices(draw, max_rows=24, max_cols=16, max_row_nnz=10):
    """Arbitrary CSR matrices with integer-valued float64 entries.

    Integer values keep every partial sum exactly representable, so the
    sharded accumulation order cannot perturb the result and the oracle
    comparison below can demand bit-for-bit equality.
    """
    n_rows = draw(st.integers(1, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    lengths = draw(
        st.lists(st.integers(0, max_row_nnz), min_size=n_rows, max_size=n_rows)
    )
    row_pointers = np.concatenate(([0], np.cumsum(lengths)))
    nnz = int(row_pointers[-1])
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    values = draw(
        st.lists(st.integers(-8, 8), min_size=nnz, max_size=nnz)
    )
    return CSRMatrix(
        n_rows=n_rows,
        n_cols=n_cols,
        row_pointers=row_pointers,
        column_indices=np.array(cols, dtype=np.int64),
        values=np.array(values, dtype=np.float64),
    )


@given(
    matrix=integer_csr_matrices(),
    n_shards=st.integers(1, 6),
    strategy=st.sampled_from(STRATEGIES),
    seed=st.integers(0, 3),
)
@settings(max_examples=120, deadline=None)
def test_sharded_spmm_equals_scipy_oracle_bitwise(
    matrix, n_shards, strategy, seed
):
    """scatter -> per-shard SpMM -> halo gather == full-graph oracle.

    Bit-for-bit (``np.array_equal``), in row order, for any valid CSR,
    any shard count, and both partition strategies — the acceptance
    property from the sharding design.
    """
    rng = np.random.default_rng(seed)
    dense = rng.integers(-4, 5, size=(matrix.n_cols, 3)).astype(np.float64)
    partition = partition_graph(
        matrix, n_shards, strategy=strategy, seed=seed
    )
    expected = reference_spmm(matrix, dense)
    assert np.array_equal(partition.spmm(dense), expected)


@given(matrix=integer_csr_matrices(), n_shards=st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_arbitrary_assignment_partitions_are_exact(matrix, n_shards):
    """Even a pathological hand-rolled assignment stays exact."""
    rng = np.random.default_rng(matrix.nnz + n_shards)
    assignment = rng.integers(0, n_shards, size=matrix.n_cols)
    partition = build_partition(matrix, assignment, n_shards)
    dense = rng.integers(-4, 5, size=(matrix.n_cols, 2)).astype(np.float64)
    assert np.array_equal(
        partition.spmm(dense), reference_spmm(matrix, dense)
    )
