"""Unit and integration tests for the multicore interval simulator."""

import numpy as np
import pytest

from repro.multicore import MulticoreSystem, table1_machine
from repro.multicore.kernels import run_gnnadvisor, run_mergepath
from repro.multicore.trace import ATOMIC, READ, WRITE, ThreadTrace


def _trace(lines, kinds=None, compute=0.0):
    lines = np.asarray(lines, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(len(lines), dtype=np.int8)
    return ThreadTrace(lines=lines, kinds=np.asarray(kinds, dtype=np.int8),
                       compute_cycles=compute)


class TestSystem:
    def test_idle_machine(self):
        system = MulticoreSystem(table1_machine(64))
        result = system.run([])
        assert result.completion_cycles == 0.0

    def test_compute_only_core(self):
        system = MulticoreSystem(table1_machine(64))
        result = system.run([_trace([], compute=1234.0)])
        assert result.completion_cycles == pytest.approx(1234.0)
        assert result.memory_cycles == 0.0

    def test_l1_hit_after_miss(self):
        system = MulticoreSystem(table1_machine(64))
        result = system.run([_trace([5, 5, 5, 5])])
        assert result.l1_hit_rate == pytest.approx(3 / 4)

    def test_completion_is_slowest_core(self):
        system = MulticoreSystem(table1_machine(64))
        heavy = _trace(list(range(0, 6400, 64)))
        light = _trace([0])
        result = system.run([heavy, light])
        assert result.completion_cycles == pytest.approx(
            result.per_core_cycles.max()
        )
        assert result.per_core_cycles[0] > result.per_core_cycles[1]

    def test_remote_access_costs_more_than_local(self):
        machine = table1_machine(64)
        # Line 0 is homed at slice 0; line 63 at slice 63 (opposite corner).
        local = MulticoreSystem(machine).run([_trace([0])])
        remote = MulticoreSystem(machine).run([_trace([63])])
        assert remote.completion_cycles > local.completion_cycles

    def test_dram_charged_once_while_l2_resident(self):
        system = MulticoreSystem(table1_machine(64))
        result = system.run([_trace([0, 0])])
        assert result.dram_accesses == 1

    def test_atomic_rmw_serialization(self):
        machine = table1_machine(64)
        # 8 cores all atomically updating the same output line.
        traces = [
            _trace([100], kinds=[ATOMIC]) for _ in range(8)
        ]
        contended = MulticoreSystem(machine).run(traces)
        solo = MulticoreSystem(machine).run([_trace([100], kinds=[ATOMIC])])
        assert contended.completion_cycles > 3 * solo.completion_cycles

    def test_write_invalidates_reader(self):
        machine = table1_machine(64)
        system = MulticoreSystem(machine)
        # Core 0 reads line 7, core 1 writes it: a sharer gets invalidated.
        system.run([_trace([7]), _trace([7], kinds=[WRITE])])
        assert system.directory.stats.invalidations_sent >= 1

    def test_rejects_too_many_traces(self):
        system = MulticoreSystem(table1_machine(4))
        with pytest.raises(ValueError, match="traces"):
            system.run([_trace([0])] * 5)

    def test_contention_factors_at_least_one(self, small_power_law):
        result = run_mergepath(small_power_law, 16, 64)
        assert result.noc_contention_factor >= 1.0
        assert result.dram_queueing_factor >= 1.0


class TestKernelRunners:
    def test_mergepath_scales_on_clean_graph(self, small_structured):
        t64 = run_mergepath(small_structured, 16, 64).completion_cycles
        t256 = run_mergepath(small_structured, 16, 256).completion_cycles
        assert t256 < t64

    def test_gnnadvisor_runs(self, small_power_law):
        result = run_gnnadvisor(small_power_law, 16, 64)
        assert result.completion_cycles > 0
        assert result.directory.invalidations_sent > 0

    def test_mergepath_fewer_invalidations_than_gnnadvisor(
        self, small_power_law
    ):
        mp = run_mergepath(small_power_law, 16, 128)
        gnna = run_gnnadvisor(small_power_law, 16, 128)
        assert (
            mp.directory.invalidations_sent < gnna.directory.invalidations_sent
        )

    def test_breakdown_components_sum(self, small_power_law):
        result = run_mergepath(small_power_law, 16, 64)
        assert result.compute_cycles + result.memory_cycles == pytest.approx(
            result.completion_cycles
        )
