"""Tests for row-splitting on the multicore machine."""

import numpy as np
import pytest

from repro.baselines import RowSplitSchedule
from repro.multicore import run_mergepath, run_row_splitting
from repro.multicore.trace import WRITE, row_splitting_traces


class TestRowSplittingTraces:
    def test_covers_all_rows_and_nnz(self, small_power_law):
        schedule = RowSplitSchedule.build(small_power_law, 8)
        traces = row_splitting_traces(schedule, dim=16)
        assert len(traces) == 8
        kinds = np.concatenate([t.kinds for t in traces])
        writes = int((kinds == WRITE).sum())
        assert writes == small_power_law.n_rows  # one write per row

    def test_no_atomics(self, small_power_law):
        schedule = RowSplitSchedule.build(small_power_law, 8)
        traces = row_splitting_traces(schedule, dim=16)
        kinds = np.concatenate([t.kinds for t in traces])
        assert (kinds <= WRITE).all()

    def test_imbalanced_access_counts(self, small_power_law):
        schedule = RowSplitSchedule.build(small_power_law, 64)
        traces = row_splitting_traces(schedule, dim=16)
        accesses = np.array([t.n_accesses for t in traces])
        assert accesses.max() > 2.0 * accesses.mean()


class TestRowSplittingRuns:
    def test_no_write_invalidations(self, small_power_law):
        result = run_row_splitting(small_power_law, 16, 64)
        # Rows are exclusively owned, so the only invalidations are
        # limited-4 pointer evictions on widely read-shared lines.
        assert (
            result.directory.invalidations_sent
            == result.directory.pointer_evictions
        )

    def test_loses_to_mergepath_on_power_law(self, small_power_law):
        rowsplit = run_row_splitting(small_power_law, 16, 128)
        mergepath = run_mergepath(small_power_law, 16, 128)
        assert mergepath.completion_cycles < rowsplit.completion_cycles

    def test_bottleneck_core_holds_evil_chunk(self, small_power_law):
        result = run_row_splitting(small_power_law, 16, 64)
        per_core = result.per_core_cycles
        assert per_core.max() > 3.0 * per_core.mean()
