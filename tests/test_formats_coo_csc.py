"""Unit tests for COO and CSC containers."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSCMatrix, CSRMatrix, SparseFormatError


class TestCOO:
    def test_from_edges_defaults(self):
        coo = COOMatrix.from_edges([(0, 1), (2, 0)], n_rows=3)
        assert coo.shape == (3, 3)
        assert np.array_equal(coo.values, [1.0, 1.0])

    def test_from_edges_rectangular(self):
        coo = COOMatrix.from_edges([(0, 4)], n_rows=2, n_cols=5)
        assert coo.shape == (2, 5)

    def test_to_dense_sums_duplicates(self):
        coo = COOMatrix(
            n_rows=2, n_cols=2,
            rows=np.array([0, 0]), cols=np.array([1, 1]),
            values=np.array([2.0, 3.0]),
        )
        assert coo.to_dense()[0, 1] == 5.0

    def test_deduplicate_merges(self):
        coo = COOMatrix(
            n_rows=2, n_cols=2,
            rows=np.array([0, 1, 0]), cols=np.array([1, 0, 1]),
            values=np.array([2.0, 4.0, 3.0]),
        )
        out = coo.deduplicate()
        assert out.nnz == 2
        assert np.array_equal(out.to_dense(), coo.to_dense())

    def test_deduplicate_empty(self):
        coo = COOMatrix.from_edges(np.empty((0, 2)), n_rows=3)
        assert coo.deduplicate().nnz == 0

    def test_to_csr_round_trip(self, dense_small):
        csr = CSRMatrix.from_dense(dense_small)
        assert np.array_equal(csr.to_coo().to_csr().to_dense(), dense_small)

    def test_to_csr_orders_rows(self):
        coo = COOMatrix(
            n_rows=3, n_cols=3,
            rows=np.array([2, 0, 1]), cols=np.array([0, 1, 2]),
            values=np.array([1.0, 2.0, 3.0]),
        )
        csr = coo.to_csr()
        assert np.array_equal(csr.row_pointers, [0, 1, 2, 3])
        assert np.array_equal(csr.to_dense(), coo.to_dense())

    def test_row_out_of_range_rejected(self):
        with pytest.raises(SparseFormatError, match="row indices"):
            COOMatrix(n_rows=2, n_cols=2, rows=np.array([2]),
                      cols=np.array([0]), values=np.array([1.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(SparseFormatError, match="equal length"):
            COOMatrix(n_rows=2, n_cols=2, rows=np.array([0, 1]),
                      cols=np.array([0]), values=np.array([1.0]))

    def test_negative_shape_rejected(self):
        with pytest.raises(SparseFormatError, match="non-negative"):
            COOMatrix(n_rows=-1, n_cols=2, rows=np.array([], dtype=int),
                      cols=np.array([], dtype=int), values=np.array([]))


class TestCSC:
    def test_from_csr_round_trip(self, csr_small):
        csc = csr_small.to_csc()
        assert np.array_equal(csc.to_csr().to_dense(), csr_small.to_dense())

    def test_col_lengths(self, dense_small):
        csc = CSRMatrix.from_dense(dense_small).to_csc()
        assert np.array_equal(csc.col_lengths, (dense_small != 0).sum(axis=0))

    def test_col_slice(self, dense_small):
        csc = CSRMatrix.from_dense(dense_small).to_csc()
        rows, vals = csc.col_slice(0)
        expected = np.nonzero(dense_small[:, 0])[0]
        assert np.array_equal(np.sort(rows), expected)

    def test_col_slice_out_of_range(self, csr_small):
        csc = csr_small.to_csc()
        with pytest.raises(IndexError):
            csc.col_slice(csc.n_cols)

    def test_bad_col_pointer_length(self):
        with pytest.raises(SparseFormatError, match="length"):
            CSCMatrix(n_rows=2, n_cols=3, col_pointers=np.array([0, 1]),
                      row_indices=np.array([0]), values=np.array([1.0]))

    def test_decreasing_col_pointers(self):
        with pytest.raises(SparseFormatError, match="non-decreasing"):
            CSCMatrix(n_rows=2, n_cols=2, col_pointers=np.array([0, 2, 1]),
                      row_indices=np.array([0]), values=np.array([1.0]))

    def test_row_index_out_of_range(self):
        with pytest.raises(SparseFormatError, match="row indices"):
            CSCMatrix(n_rows=2, n_cols=1, col_pointers=np.array([0, 1]),
                      row_indices=np.array([5]), values=np.array([1.0]))

    def test_nnz(self, csr_small):
        assert csr_small.to_csc().nnz == csr_small.nnz
