"""End-to-end request tracing through the serving stack.

Covers the PR's acceptance criteria: trace contexts survive the queue
and worker-thread boundary, batched requests keep distinct ids and
non-aliasing ledgers, stage attribution reconciles with end-to-end
latency, the flight recorder stays bounded under overload, and a
deliberately slowed backend shows up as kernel time rather than queue
time.
"""

import time

import pytest

from repro.obs.rtrace import FlightRecorder
from repro.obs.slo import SLObjective, SLOTracker
from repro.serve.dispatch import AdaptiveDispatcher, Backend
from repro.serve.plancache import PlanCache
from repro.serve.service import InferenceService, ServeConfig


def _service(config=None, backends=None, **kwargs):
    dispatcher = AdaptiveDispatcher(
        backends, plan_cache=PlanCache(), epsilon=0.0
    )
    return InferenceService(dispatcher, config, **kwargs)


def _delayed_backend(name, delay):
    def run(matrix, dense, plans, plan_dim):
        time.sleep(delay)
        return matrix.multiply_dense(dense)

    return Backend(name, run)


class TestTracePropagation:
    def test_response_carries_trace_and_attribution(
        self, small_power_law, rng
    ):
        dense = rng.random((small_power_law.n_cols, 8))
        with _service() as service:
            response = service.infer(small_power_law, dense, timeout=10.0)
        assert response.ok
        assert response.trace_id
        stages = response.attribution["stages"]
        assert "queue" in stages and "kernel" in stages

    def test_stage_sum_reconciles_with_latency(self, small_power_law, rng):
        dense = rng.random((small_power_law.n_cols, 8))
        with _service() as service:
            responses = [
                service.infer(small_power_law, dense, timeout=10.0)
                for _ in range(4)
            ]
        for response in responses:
            total = response.queue_seconds + response.service_seconds
            stage_sum = sum(response.attribution["stages"].values())
            assert stage_sum == pytest.approx(total, abs=1e-9)

    def test_batched_requests_keep_distinct_ids_and_ledgers(
        self, small_power_law, rng
    ):
        config = ServeConfig(max_batch=8, max_wait_ms=50.0, n_workers=1)
        dense = rng.random((small_power_law.n_cols, 8))
        with _service(config) as service:
            blocker = service.submit(
                small_power_law, rng.random((small_power_law.n_cols, 4))
            )
            futures = [
                service.submit(small_power_law, dense) for _ in range(6)
            ]
            responses = [f.result(timeout=10.0) for f in futures]
            blocker.result(timeout=10.0)
        batched = [r for r in responses if r.batch_size > 1]
        assert batched, "expected at least one multi-request batch"
        ids = [r.trace_id for r in responses]
        assert len(set(ids)) == len(ids)
        # Ledgers never alias: per-request queue waits differ even when
        # the batch shares one kernel execution, and mutating one dict
        # cannot touch another's.
        ledgers = [r.attribution for r in responses]
        for i, ledger in enumerate(ledgers):
            ledger["stages"][f"probe_{i}"] = float(i)
        for i, ledger in enumerate(ledgers):
            probes = [k for k in ledger["stages"] if k.startswith("probe_")]
            assert probes == [f"probe_{i}"]

    def test_deadline_shed_attributed_to_queue(self, small_power_law, rng):
        config = ServeConfig(max_batch=1, max_wait_ms=0.0, n_workers=1)
        backends = [_delayed_backend("slow", 0.05)]
        recorder = FlightRecorder()
        with _service(config, backends, flight_recorder=recorder) as service:
            blocker = service.submit(
                small_power_law, rng.random((small_power_law.n_cols, 4))
            )
            shed = [
                service.submit(
                    small_power_law,
                    rng.random((small_power_law.n_cols, 4)),
                    deadline_ms=5.0,
                )
                for _ in range(3)
            ]
            responses = [f.result(timeout=10.0) for f in shed]
            blocker.result(timeout=10.0)
        expired = [r for r in responses if r.deadline_exceeded]
        assert expired
        for response in expired:
            stages = response.attribution["stages"]
            assert stages["queue"] > 0.0
            assert "kernel" not in stages
        # Shed requests land in the failure ring with their ledgers.
        failures = recorder.failures()
        assert any(f["status"] == "deadline_exceeded" for f in failures)

    def test_rejected_requests_recorded_without_trace(
        self, small_power_law, rng
    ):
        config = ServeConfig(
            max_queue=1, max_batch=1, max_wait_ms=0.0, n_workers=1
        )
        backends = [_delayed_backend("slow", 0.05)]
        recorder = FlightRecorder()
        slo = SLOTracker()
        with _service(
            config, backends, flight_recorder=recorder, slo_tracker=slo
        ) as service:
            futures = [
                service.submit(
                    small_power_law,
                    rng.random((small_power_law.n_cols, 4)),
                    route="hot",
                )
                for _ in range(12)
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        rejected = [r for r in responses if r.rejected]
        assert rejected
        recorded = {f["status"] for f in recorder.failures()}
        assert "rejected" in recorded
        # Sheds burn the route's error budget.
        assert slo.route_report("hot")["violations"] >= len(rejected)


class TestSlowBackendAttribution:
    def test_slow_backend_blames_kernel_not_queue(
        self, small_power_law, rng
    ):
        config = ServeConfig(max_batch=1, max_wait_ms=0.0, n_workers=1)
        backends = [_delayed_backend("molasses", 0.04)]
        recorder = FlightRecorder(capacity=4)
        with _service(config, backends, flight_recorder=recorder) as service:
            for _ in range(3):  # closed loop: queue wait stays negligible
                response = service.infer(
                    small_power_law,
                    rng.random((small_power_law.n_cols, 4)),
                    timeout=10.0,
                )
                assert response.ok
        slowest = recorder.slowest(1)[0]
        assert slowest["stages"]["kernel"] >= 0.02
        assert slowest["stages"]["kernel"] > slowest["stages"].get(
            "queue", 0.0
        )


class TestFlightRecorderUnderLoad:
    def test_bounded_under_overload(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=4, max_batch=2, max_wait_ms=1.0, n_workers=1
        )
        recorder = FlightRecorder(capacity=4, failed_capacity=4)
        with _service(config, flight_recorder=recorder) as service:
            futures = [
                service.submit(
                    small_power_law, rng.random((small_power_law.n_cols, 4))
                )
                for _ in range(64)
            ]
            for future in futures:
                future.result(timeout=30.0)
        assert recorder.recorded == 64
        assert len(recorder) <= 8


class TestSloWiring:
    def test_routes_fed_per_request(self, small_power_law, rng):
        slo = SLOTracker(
            default_objective=SLObjective(threshold_ms=60_000.0)
        )
        with _service(slo_tracker=slo) as service:
            for route in ("a", "b", "a"):
                service.infer(
                    small_power_law,
                    rng.random((small_power_law.n_cols, 4)),
                    timeout=10.0,
                    route=route,
                )
        assert slo.route_report("a")["samples"] == 2
        assert slo.route_report("b")["samples"] == 1

    def test_health_surfaces_slo_exhaustion(self, small_power_law, rng):
        # A 1e-4 ms threshold every request violates -> budget exhausted
        # -> DEGRADED with the slo cause once enough samples exist.
        slo = SLOTracker(
            default_objective=SLObjective(threshold_ms=1e-4, window=64)
        )
        with _service(slo_tracker=slo) as service:
            for _ in range(20):
                service.infer(
                    small_power_law,
                    rng.random((small_power_law.n_cols, 4)),
                    timeout=10.0,
                )
            report = service.health()
        assert report.status == "degraded"
        assert any(c.kind == "slo-budget-exhausted" for c in report.causes)

    def test_worker_crash_finalizes_traces(self, small_power_law, rng):
        from repro.resilience import faults

        recorder = FlightRecorder()
        config = ServeConfig(
            max_batch=1, max_wait_ms=0.0, n_workers=1, restart_budget=3
        )
        with _service(config, flight_recorder=recorder) as service:
            with faults.inject(seed=0, crash_worker=1.0):
                response = service.submit(
                    small_power_law, rng.random((small_power_law.n_cols, 4))
                ).result(timeout=10.0)
        assert response.status == "error"
        assert response.trace_id
        stages = response.attribution["stages"]
        # Never-executed work reconciles through queue + other.
        assert set(stages) <= {"queue", "batch_form", "other"}
        assert any(
            f["status"] == "error" for f in recorder.failures()
        )
