"""Unit tests for the metric primitives and registry (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.metrics import NULL_METRIC, MetricRegistry


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """No test leaks an active registry into the rest of the suite."""
    yield
    obs.set_registry(None)
    obs.set_recorder(None)


class TestCounter:
    def test_increments(self):
        registry = MetricRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricRegistry().counter("c").inc(-1)

    def test_labels_distinguish_series(self):
        registry = MetricRegistry()
        registry.counter("c", kind="a").inc(1)
        registry.counter("c", kind="b").inc(2)
        assert registry.counter("c", kind="a").value == 1
        assert registry.counter("c", kind="b").value == 2

    def test_get_or_create_returns_same_object(self):
        registry = MetricRegistry()
        assert registry.counter("c", x=1) is registry.counter("c", x=1)

    def test_thread_safety(self):
        registry = MetricRegistry()
        counter = registry.counter("c")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricRegistry().gauge("g")
        gauge.set(10.0)
        gauge.add(-2.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_aggregates(self):
        histogram = MetricRegistry().histogram("h")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["total"] == 10.0
        assert snap["mean"] == 2.5
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0

    def test_percentiles(self):
        histogram = MetricRegistry().histogram("h")
        for value in range(101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0

    def test_empty_snapshot(self):
        snap = MetricRegistry().histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0


class TestTimer:
    def test_context_manager_observes_elapsed(self):
        timer = MetricRegistry().timer("t")
        with timer:
            pass
        assert timer.count == 1
        assert timer.total >= 0.0

    def test_kind(self):
        assert MetricRegistry().timer("t").kind == "timer"


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("m")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("m")

    def test_snapshot_sorted_and_complete(self):
        registry = MetricRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(1.0)
        names = [entry["name"] for entry in registry.snapshot()]
        assert names == sorted(names)
        assert len(registry) == 2

    def test_reset(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0


class TestNoOpMode:
    def test_disabled_accessors_return_null(self):
        obs.set_registry(None)
        assert not obs.enabled()
        assert obs.counter("x") is NULL_METRIC
        assert obs.gauge("x") is NULL_METRIC
        assert obs.histogram("x") is NULL_METRIC
        assert obs.timer("x") is NULL_METRIC

    def test_null_metric_absorbs_everything(self):
        NULL_METRIC.inc(3)
        NULL_METRIC.set(1.0)
        NULL_METRIC.observe(2.0)
        with NULL_METRIC:
            pass
        assert NULL_METRIC.snapshot() == {}

    def test_empty_registry_is_still_active(self):
        # Regression guard: an empty registry is falsy via __len__, but
        # must still collect (`is not None`, not truthiness).
        registry = obs.enable()
        try:
            assert len(registry) == 0
            obs.counter("c").inc()
            assert registry.counter("c").value == 1
        finally:
            obs.disable()

    def test_enable_disable_round_trip(self):
        registry = obs.enable()
        assert obs.enabled() and obs.get_registry() is registry
        returned = obs.disable()
        assert returned is registry
        assert not obs.enabled()
