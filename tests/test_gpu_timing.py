"""Unit tests for the GPU timing model's mechanisms."""

import numpy as np
import pytest

from repro.gpu import GPUWorkload, quadro_rtx_6000, scheduling_time, simulate

DEV = quadro_rtx_6000()


def _workload(n_warps=100, issue=10.0, bytes_=64.0, atomics=0.0, **kwargs):
    return GPUWorkload(
        label="test",
        dim=kwargs.pop("dim", 16),
        warp_issue_cycles=np.full(n_warps, issue),
        warp_mem_bytes=np.full(n_warps, bytes_),
        warp_atomic_ops=np.full(n_warps, atomics),
        **kwargs,
    )


class TestSimulate:
    def test_empty_workload_is_launch_only(self):
        timing = simulate(_workload(n_warps=0), DEV)
        assert timing.cycles == DEV.params.launch_cycles

    def test_launch_always_included(self):
        timing = simulate(_workload(), DEV)
        assert timing.cycles >= DEV.params.launch_cycles

    def test_issue_throughput_scales_with_sms(self):
        timing = simulate(_workload(n_warps=720, issue=100.0, bytes_=0.0), DEV)
        assert timing.issue_cycles == pytest.approx(720 * 100 / 72)

    def test_issue_limited_by_active_sms(self):
        # 8 warps can only use 8 SMs.
        timing = simulate(_workload(n_warps=8, issue=100.0, bytes_=0.0), DEV)
        assert timing.issue_cycles == pytest.approx(8 * 100 / 8)

    def test_bandwidth_term(self):
        timing = simulate(_workload(n_warps=10_000, bytes_=466.0), DEV)
        assert timing.bandwidth_cycles == pytest.approx(
            10_000 * 466.0 / DEV.bytes_per_cycle
        )

    def test_little_term_punishes_low_warp_counts(self):
        few = simulate(_workload(n_warps=32, bytes_=32_000.0), DEV)
        many = simulate(_workload(n_warps=3_200, bytes_=320.0), DEV)
        # Same total traffic; fewer warps -> higher Little's-law bound.
        assert few.little_cycles > many.little_cycles

    def test_span_captures_straggler(self):
        issue = np.full(100, 10.0)
        issue[3] = 50_000.0
        workload = GPUWorkload(
            label="straggler", dim=16,
            warp_issue_cycles=issue,
            warp_mem_bytes=np.zeros(100),
            warp_atomic_ops=np.zeros(100),
        )
        timing = simulate(workload, DEV)
        assert timing.span_cycles == pytest.approx(50_000.0)
        assert timing.cycles >= 50_000.0

    def test_atomic_throughput_additive(self):
        without = simulate(_workload(atomics=0.0), DEV)
        with_atomics = simulate(
            _workload(atomics=50.0, atomic_bytes_per_op=64.0), DEV
        )
        assert with_atomics.cycles > without.cycles

    def test_hotspot_term(self):
        quiet = simulate(
            _workload(atomics=1.0, atomic_bytes_per_op=64.0,
                      atomic_sharers=np.array([1, 1])), DEV
        )
        contended = simulate(
            _workload(atomics=1.0, atomic_bytes_per_op=64.0,
                      atomic_sharers=np.array([1000])), DEV
        )
        assert contended.hotspot_cycles > quiet.hotspot_cycles
        assert contended.cycles > quiet.cycles

    def test_serial_phase_additive(self):
        base = simulate(_workload(), DEV).cycles
        with_serial = simulate(_workload(serial_cycles=123_456.0), DEV).cycles
        assert with_serial == pytest.approx(base + 123_456.0)

    def test_low_mem_parallelism_raises_span(self):
        fast = simulate(_workload(mem_parallelism=8.0), DEV)
        slow = simulate(_workload(mem_parallelism=1.0), DEV)
        assert slow.span_cycles > fast.span_cycles

    def test_bound_by_reports_binding_term(self):
        timing = simulate(_workload(n_warps=720, issue=1e6, bytes_=1.0), DEV)
        assert timing.bound_by == "issue"

    def test_microseconds_conversion(self):
        timing = simulate(_workload(), DEV)
        assert timing.microseconds == pytest.approx(
            DEV.cycles_to_microseconds(timing.cycles)
        )


class TestSchedulingTime:
    def test_grows_with_merge_items_logarithmically(self):
        small = scheduling_time(1024, 1_000, DEV)
        large = scheduling_time(1024, 1_000_000, DEV)
        assert large > small
        assert large < 3 * small

    def test_throughput_bound_for_many_threads(self):
        few = scheduling_time(1024, 10_000, DEV)
        many = scheduling_time(1_000_000, 10_000, DEV)
        assert many > few

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            scheduling_time(0, 100, DEV)
