"""Unit tests for the Table II dataset registry."""

import pytest

from repro.graphs import (
    DATASETS,
    load_dataset,
    power_law_dataset_names,
    structured_dataset_names,
)
from repro.graphs.datasets import scaled_spec


class TestRegistry:
    def test_all_23_datasets_present(self):
        assert len(DATASETS) == 23

    def test_type_partition(self):
        assert len(power_law_dataset_names()) == 17
        assert len(structured_dataset_names()) == 6

    def test_published_statistics_examples(self):
        nell = DATASETS["Nell"]
        assert (nell.n_nodes, nell.nnz, nell.max_degree) == (65_755, 251_550, 4_549)
        twitter = DATASETS["Twitter-partial"]
        assert (twitter.n_nodes, twitter.max_degree) == (580_768, 12)

    def test_avg_degree_consistent_with_counts(self):
        for spec in DATASETS.values():
            assert spec.avg_degree == pytest.approx(
                spec.nnz / spec.n_nodes, rel=0.05
            )

    def test_order_matches_paper(self):
        names = power_law_dataset_names()
        assert names[0] == "Cora"
        assert names[-1] == "amazon0505"


class TestLoadDataset:
    def test_matches_published_stats_exactly(self):
        graph = load_dataset("Cora")
        spec = DATASETS["Cora"]
        assert graph.n_nodes == spec.n_nodes
        assert graph.n_edges == spec.nnz
        assert graph.statistics.max_degree == spec.max_degree

    def test_structured_dataset_stats(self):
        graph = load_dataset("PROTEINS_full")
        spec = DATASETS["PROTEINS_full"]
        assert graph.n_edges == spec.nnz
        assert graph.statistics.max_degree == spec.max_degree

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("NotAGraph")

    def test_caching_returns_same_object(self):
        assert load_dataset("Citeseer") is load_dataset("Citeseer")

    def test_different_seeds_differ(self):
        a = load_dataset("Citeseer", seed=1)
        b = load_dataset("Citeseer", seed=2)
        assert (a.adjacency.column_indices != b.adjacency.column_indices).any()


class TestScaledSpec:
    def test_identity_scale(self):
        spec = DATASETS["Pubmed"]
        assert scaled_spec(spec, 1.0) is spec

    def test_downscale_preserves_avg_degree(self):
        spec = scaled_spec(DATASETS["Pubmed"], 0.25)
        original = DATASETS["Pubmed"]
        assert spec.avg_degree == pytest.approx(original.avg_degree, rel=0.05)

    def test_downscale_preserves_max_degree_when_possible(self):
        spec = scaled_spec(DATASETS["Nell"], 0.25)
        assert spec.max_degree == DATASETS["Nell"].max_degree

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_spec(DATASETS["Cora"], 0.0)
        with pytest.raises(ValueError):
            scaled_spec(DATASETS["Cora"], 1.5)

    def test_scaled_load_generates(self):
        graph = load_dataset("Pubmed", scale=0.1)
        assert graph.n_nodes == pytest.approx(1_972, abs=5)
