"""Coverage for small paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.core.merge_path import MergeCoordinate
from repro.experiments.harness import main as harness_main
from repro.experiments.reporting import format_table
from repro.gnn import GCN, InferenceEngine
from repro.gpu import kernel_time
from repro.graphs import Graph, load_dataset
from repro.formats import CSRMatrix


class TestMergeCoordinate:
    def test_diagonal_property(self):
        assert MergeCoordinate(row=3, nnz=4).diagonal == 7


class TestKernelTimingProperties:
    def test_memory_cycles_is_binding_memory_term(self, small_power_law):
        timing = kernel_time("mergepath", small_power_law, 16)
        assert timing.memory_cycles == max(
            timing.bandwidth_cycles, timing.little_cycles, timing.span_cycles
        )


class TestReportingFormat:
    def test_large_and_tiny_floats(self):
        table = format_table(["v"], [(123456.789,), (0.00001234,)])
        assert "1.23e+05" in table
        assert "1.23e-05" in table

    def test_zero_and_int(self):
        table = format_table(["v"], [(0.0,), (42,)])
        assert "0" in table and "42" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestHarnessCLI:
    def test_main_runs_named_experiment(self, capsys, tmp_path):
        code = harness_main(["fig3", "--output-dir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig3.txt").exists()
        assert "merge-path decomposition" in capsys.readouterr().out


class TestInferenceEngineEdges:
    def test_features_from_graph(self, rng):
        dense = (rng.random((10, 10)) < 0.3) * 1.0
        graph = Graph(
            name="g", adjacency=CSRMatrix.from_dense(dense)
        ).with_features(rng.random((10, 4)))
        model = GCN.random([4, 4], seed=0)
        report = InferenceEngine().infer(model, graph)
        assert report.output.shape == (10, 4)

    def test_missing_features_rejected(self, rng):
        dense = (rng.random((10, 10)) < 0.3) * 1.0
        graph = Graph(name="g", adjacency=CSRMatrix.from_dense(dense))
        model = GCN.random([4, 4], seed=0)
        with pytest.raises(ValueError, match="features"):
            InferenceEngine().infer(model, graph)


class TestDatasetScaling:
    def test_scaled_dataset_reduces_size(self):
        full = load_dataset("Pubmed")
        quarter = load_dataset("Pubmed", scale=0.25)
        assert quarter.n_nodes == pytest.approx(full.n_nodes * 0.25, rel=0.02)
        assert quarter.n_edges == pytest.approx(full.n_edges * 0.25, rel=0.02)
        # Imbalance character preserved: max degree survives the downscale.
        assert quarter.statistics.max_degree == full.statistics.max_degree


class TestSpMMResultSurface:
    def test_result_fields_consistent(self, small_power_law, features):
        from repro.core import merge_path_spmm

        x = features(small_power_law.n_cols, 4)
        result = merge_path_spmm(small_power_law, x, cost=10, min_threads=32)
        assert result.output.shape == (small_power_law.n_rows, 4)
        assert result.schedule.matrix is small_power_law
        total_nnz = result.writes.atomic_nnz + result.writes.regular_nnz
        assert total_nnz == small_power_law.nnz
