"""Threaded stress tests: cache coherence under concurrent live updates.

Satellite of the live-graph mutation work: hammer ScheduleCache,
PlanCache, and EnginePlanCache from reader threads while a writer
applies update batches through a GraphEpochManager (invalidation +
snapshot notes race against get/put/evict under LRU pressure).  Every
read is verified against the dense reference for the *exact matrix the
reader used*, so any cross-epoch or cross-matrix aliasing shows up as a
numeric mismatch, not a flake.
"""

import threading

import numpy as np
import pytest

from repro.core import ScheduleCache, execute_vectorized
from repro.engine import EnginePlanCache
from repro.graphs import power_law_graph
from repro.graphs.delta import DeltaCSR, UpdatePlanner
from repro.serve import GraphEpochManager, PlanCache

DIM = 8
COST = 256
N_READERS = 4
ROUNDS = 60


@pytest.fixture
def base():
    return power_law_graph(n_nodes=60, nnz=360, max_degree=16, seed=0)


@pytest.fixture
def bystanders():
    return [
        power_law_graph(n_nodes=40, nnz=200, max_degree=10, seed=s)
        for s in (21, 22, 23)
    ]


def _run_race(base, bystanders, read_one):
    """Drive readers + one updater; returns collected problems."""
    # Tiny capacities force evictions to interleave with invalidations.
    schedules = ScheduleCache(max_entries=4)
    plans = PlanCache(capacity=4)
    engine = EnginePlanCache(capacity=4)
    manager = GraphEpochManager(
        DeltaCSR(base, compact_threshold=8),
        caches=(schedules, plans, engine),
    )
    planner = UpdatePlanner(base)
    problems: "list[str]" = []
    stop = threading.Event()

    def updater():
        rng = np.random.default_rng(99)
        try:
            for _ in range(ROUNDS):
                if stop.is_set():
                    return
                manager.apply_updates(planner.batch(rng, 2))
        except Exception as exc:  # pragma: no cover - failure path
            problems.append(f"updater: {exc!r}")

    def reader(seed):
        rng = np.random.default_rng(seed)
        dense = rng.standard_normal((base.n_cols, DIM))
        small = {
            m.fingerprint(): rng.standard_normal((m.n_cols, DIM))
            for m in bystanders
        }
        try:
            for i in range(ROUNDS):
                if rng.random() < 0.5:
                    with manager.acquire() as lease:
                        matrix, operand = lease.matrix, dense
                        read_one(
                            (schedules, plans, engine),
                            matrix,
                            operand,
                            problems,
                        )
                else:
                    matrix = bystanders[i % len(bystanders)]
                    read_one(
                        (schedules, plans, engine),
                        matrix,
                        small[matrix.fingerprint()],
                        problems,
                    )
        except Exception as exc:  # pragma: no cover - failure path
            problems.append(f"reader[{seed}]: {exc!r}")

    threads = [threading.Thread(target=updater)]
    threads += [threading.Thread(target=reader, args=(s,)) for s in range(N_READERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
        alive = t.is_alive()
        stop.set()
        assert not alive, "race test deadlocked"
    return problems, manager, (schedules, plans, engine)


def _check(expected, got, label, problems):
    if not np.allclose(got, expected, atol=1e-9):
        problems.append(f"{label}: output mismatch")


class TestCacheRaces:
    def test_all_three_caches_stay_coherent(self, base, bystanders):
        def read_one(caches, matrix, dense, problems):
            schedules, plans, engine = caches
            expected = matrix.multiply_dense(dense)
            schedule = schedules.get(matrix, COST)
            out, _ = execute_vectorized(schedule, dense)
            _check(expected, out, "schedule", problems)
            _check(
                expected,
                plans.get(matrix, cost=COST).execute(dense),
                "plan",
                problems,
            )
            _check(
                expected,
                engine.get(matrix, cost=COST).execute(dense),
                "engine",
                problems,
            )

        problems, manager, caches = _run_race(base, bystanders, read_one)
        assert problems == [], problems[:10]
        stats = manager.stats()
        assert stats["retired_epochs"] >= 1
        assert stats["leases"] == 0
        # Retirement kept firing under load: retired epochs' keys are
        # gone, and the small caches never grew past their bounds.
        schedules, plans, engine = caches
        assert schedules.entries <= 4
        assert plans.stats().entries <= 4
        assert len(engine) <= 4
        live = {
            manager.current_snapshot().fingerprint,
            manager.current_snapshot().base_fingerprint,
        } | {m.fingerprint() for m in bystanders}
        assert plans.fingerprints() <= live

    def test_precise_invalidation_under_eviction_pressure(
        self, base, bystanders
    ):
        # Plan-cache-only variant with repairs in the mix: the repair
        # base may be evicted at any moment by bystander traffic.
        def read_one(caches, matrix, dense, problems):
            _, plans, _ = caches
            _check(
                matrix.multiply_dense(dense),
                plans.get(matrix, dim=DIM).execute(dense),
                "plan",
                problems,
            )

        problems, manager, caches = _run_race(base, bystanders, read_one)
        assert problems == [], problems[:10]
        _, plans, _ = caches
        stats = plans.stats()
        assert stats.hits + stats.misses > 0
        assert manager.stats()["compactions"] >= 1
