"""Tests for the versioned delta-CSR overlay (``repro.graphs.delta``)."""

import numpy as np
import pytest

from repro.graphs import power_law_graph
from repro.graphs.delta import DeltaCSR, EdgeUpdate, GraphSnapshot, UpdatePlanner


@pytest.fixture
def base():
    # The generated graph deliberately carries multi-edges (duplicate
    # columns within a row) — the adversarial case for row merging.
    return power_law_graph(n_nodes=60, nnz=360, max_degree=16, seed=0)


def _absent_edge(matrix, row=0):
    cols, _ = matrix.row_slice(row)
    present = set(cols.tolist())
    for col in range(matrix.n_cols):
        if col not in present:
            return row, col
    raise AssertionError("row is full")


def _present_edge(matrix, row=None):
    rows = [row] if row is not None else range(matrix.n_rows)
    for r in rows:
        cols, _ = matrix.row_slice(r)
        if len(cols):
            return r, int(cols[0])
    raise AssertionError("matrix is empty")


def _multi_edge_row(matrix):
    for row in range(matrix.n_rows):
        cols, _ = matrix.row_slice(row)
        if len(cols) != len(set(cols.tolist())):
            return row
    raise AssertionError("no multi-edge row in the generated base")


class TestEdgeUpdate:
    def test_factories(self):
        assert EdgeUpdate.insert(1, 2, 3.0).op == "insert"
        assert EdgeUpdate.delete(1, 2).op == "delete"
        assert EdgeUpdate.update(1, 2, 4.0).op == "update"

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            EdgeUpdate(op="upsert", row=0, col=0)

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            EdgeUpdate.insert(-1, 0)
        with pytest.raises(ValueError):
            EdgeUpdate.insert(0, -2)


class TestDeltaCSR:
    def test_insert_reflected_in_snapshot(self, base):
        delta = DeltaCSR(base)
        row, col = _absent_edge(base)
        delta.insert_edge(row, col, 2.5)
        expected = base.to_dense()
        expected[row, col] = 2.5
        np.testing.assert_allclose(delta.snapshot().matrix.to_dense(), expected)

    def test_delete_removes_every_parallel_copy(self, base):
        delta = DeltaCSR(base)
        row = _multi_edge_row(base)
        cols, _ = base.row_slice(row)
        dupes = [c for c in set(cols.tolist()) if (cols == c).sum() > 1]
        col = dupes[0]
        delta.delete_edge(row, col)
        expected = base.to_dense()
        expected[row, col] = 0.0
        np.testing.assert_allclose(delta.snapshot().matrix.to_dense(), expected)

    def test_update_sets_coalesced_weight(self, base):
        delta = DeltaCSR(base)
        row, col = _present_edge(base, row=_multi_edge_row(base))
        delta.update_edge(row, col, 7.0)
        expected = base.to_dense()
        expected[row, col] = 7.0
        np.testing.assert_allclose(delta.snapshot().matrix.to_dense(), expected)

    def test_clean_rows_preserve_multi_edges(self, base):
        # Coalescing is confined to *dirty* rows; a clean multi-edge row
        # must still contribute its summed parallel edges to the dense
        # operator (bulk-copied, not rebuilt).
        delta = DeltaCSR(base)
        row, col = _absent_edge(base, row=_multi_edge_row(base))
        other = (row + 1) % base.n_rows
        delta.insert_edge(row, col, 1.0)
        expected = base.to_dense()
        expected[row, col] = 1.0
        snapshot = delta.snapshot()
        np.testing.assert_allclose(snapshot.matrix.to_dense(), expected)
        np.testing.assert_allclose(
            snapshot.matrix.to_dense()[other], base.to_dense()[other]
        )

    def test_version_bumps_once_per_batch(self, base):
        delta = DeltaCSR(base)
        assert delta.version == 0
        r1, c1 = _absent_edge(base, row=0)
        r2, c2 = _absent_edge(base, row=1)
        new_version = delta.apply(
            [EdgeUpdate.insert(r1, c1), EdgeUpdate.insert(r2, c2)]
        )
        assert new_version == delta.version == 1
        assert delta.apply([]) == 1  # empty batch: no new epoch

    def test_batch_is_all_or_nothing(self, base):
        delta = DeltaCSR(base)
        row, col = _absent_edge(base)
        with pytest.raises(ValueError, match="insert of existing"):
            delta.apply(
                [EdgeUpdate.insert(row, col), EdgeUpdate.insert(row, col)]
            )
        assert delta.version == 0
        assert delta.log_size == 0
        np.testing.assert_allclose(
            delta.snapshot().matrix.to_dense(), base.to_dense()
        )

    def test_rejects_delete_and_update_of_missing_edge(self, base):
        delta = DeltaCSR(base)
        row, col = _absent_edge(base)
        with pytest.raises(ValueError, match="delete of missing"):
            delta.delete_edge(row, col)
        with pytest.raises(ValueError, match="update of missing"):
            delta.update_edge(row, col, 1.0)

    def test_rejects_out_of_bounds(self, base):
        delta = DeltaCSR(base)
        with pytest.raises(ValueError, match="out of bounds"):
            delta.insert_edge(base.n_rows, 0)

    def test_insert_then_delete_within_one_batch(self, base):
        delta = DeltaCSR(base)
        row, col = _absent_edge(base)
        delta.apply(
            [EdgeUpdate.insert(row, col, 3.0), EdgeUpdate.delete(row, col)]
        )
        np.testing.assert_allclose(
            delta.snapshot().matrix.to_dense(), base.to_dense()
        )

    def test_snapshot_cached_per_version(self, base):
        delta = DeltaCSR(base)
        first = delta.snapshot()
        assert delta.snapshot() is first
        row, col = _absent_edge(base)
        delta.insert_edge(row, col)
        second = delta.snapshot()
        assert second is not first
        assert second.epoch == first.epoch + 1

    def test_fingerprint_is_version_precise(self, base):
        # A value-only update leaves the structure identical, but the
        # epoch stamp must still change the fingerprint — stale-keyed
        # cache hits across epochs are structurally impossible.
        delta = DeltaCSR(base)
        row, col = _present_edge(base)
        before = delta.snapshot()
        delta.update_edge(row, col, 9.0)
        after = delta.snapshot()
        assert before.fingerprint != after.fingerprint
        assert after.base_fingerprint == before.fingerprint

    def test_dirty_rows_reported(self, base):
        delta = DeltaCSR(base)
        row, col = _absent_edge(base, row=5)
        delta.insert_edge(row, col)
        snapshot = delta.snapshot()
        assert snapshot.dirty_rows.tolist() == [5]
        assert 0.0 < snapshot.dirty_fraction < 1.0

    def test_compaction_folds_log_into_base(self, base):
        delta = DeltaCSR(base, compact_threshold=3)
        expected = base.to_dense()
        planner_edges = []
        for row in range(3):
            r, c = _absent_edge(base, row=row)
            planner_edges.append((r, c))
            delta.insert_edge(r, c, 1.0)
            expected[r, c] = 1.0
        assert delta.log_size == 3
        snapshot = delta.snapshot()
        assert snapshot.compacted
        assert delta.compactions == 1
        assert delta.log_size == 0
        assert len(snapshot.dirty_rows) == 0
        assert snapshot.fingerprint == snapshot.base_fingerprint  # rebased
        np.testing.assert_allclose(snapshot.matrix.to_dense(), expected)
        # Post-compaction updates keep working against the new base.
        r, c = planner_edges[0]
        delta.delete_edge(r, c)
        expected[r, c] = 0.0
        np.testing.assert_allclose(
            delta.snapshot().matrix.to_dense(), expected
        )

    def test_rejects_bad_threshold(self, base):
        with pytest.raises(ValueError, match="compact_threshold"):
            DeltaCSR(base, compact_threshold=0)

    def test_snapshot_matrix_is_frozen(self, base):
        delta = DeltaCSR(base)
        matrix = delta.snapshot().matrix
        with pytest.raises(ValueError):
            matrix.values[0] = 123.0


class TestUpdatePlanner:
    def test_batches_always_valid(self, base):
        delta = DeltaCSR(base, compact_threshold=16)
        planner = UpdatePlanner(base)
        rng = np.random.default_rng(7)
        applied = 0
        for _ in range(40):
            batch = planner.batch(rng, size=int(rng.integers(1, 4)))
            delta.apply(batch)  # must never raise
            applied += len(batch)
        assert applied > 0
        assert delta.total_updates == applied
        snapshot = delta.snapshot()
        assert isinstance(snapshot, GraphSnapshot)
        assert np.isfinite(snapshot.matrix.to_dense()).all()

    def test_mixes_operations(self, base):
        planner = UpdatePlanner(base, delete_fraction=0.5)
        rng = np.random.default_rng(0)
        ops = set()
        for _ in range(60):
            for update in planner.batch(rng, size=2):
                ops.add(update.op)
        assert {"insert", "delete"} <= ops
