"""Unit tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    power_law_degree_sequence,
    power_law_graph,
    regular_graph,
    rmat_graph,
    structured_degree_sequence,
)
from repro.graphs.generators import graph_from_degree_sequence


class TestPowerLawDegreeSequence:
    def test_exact_sum_and_max(self):
        degrees = power_law_degree_sequence(500, 3_000, 200, seed=1)
        assert degrees.sum() == 3_000
        assert degrees.max() == 200

    def test_deterministic_given_seed(self):
        a = power_law_degree_sequence(300, 1_500, 80, seed=5)
        b = power_law_degree_sequence(300, 1_500, 80, seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_shuffle(self):
        a = power_law_degree_sequence(300, 1_500, 80, seed=5)
        b = power_law_degree_sequence(300, 1_500, 80, seed=6)
        assert not np.array_equal(a, b)

    def test_max_degree_clamped_to_nnz(self):
        degrees = power_law_degree_sequence(10, 5, 100, seed=0)
        assert degrees.max() <= 5

    def test_heavy_tail_shape(self):
        degrees = power_law_degree_sequence(2_000, 10_000, 1_000, seed=2)
        top = np.sort(degrees)[-20:]
        # The top 1% of rows should hold a disproportionate share.
        assert top.sum() > 0.2 * degrees.sum()

    def test_unreachable_nnz_raises(self):
        with pytest.raises(ValueError, match="unreachable"):
            power_law_degree_sequence(10, 1_000, 5, seed=0)

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            power_law_degree_sequence(0, 10, 5)

    def test_zero_nnz(self):
        degrees = power_law_degree_sequence(10, 0, 5, seed=0)
        assert degrees.sum() == 0


class TestStructuredDegreeSequence:
    def test_exact_sum_and_max(self):
        degrees = structured_degree_sequence(100, 450, 12, seed=1)
        assert degrees.sum() == 450
        assert degrees.max() == 12

    def test_low_variance(self):
        degrees = structured_degree_sequence(1_000, 5_000, 25, seed=1)
        # Nearly all rows sit at floor(avg) or ceil(avg).
        base = 5
        near = np.isin(degrees, [base - 1, base, base + 1]).mean()
        assert near > 0.95

    def test_unreachable_raises(self):
        with pytest.raises(ValueError, match="unreachable"):
            structured_degree_sequence(10, 200, 3, seed=0)


class TestGraphFromDegreeSequence:
    def test_realizes_sequence(self):
        degrees = np.array([3, 0, 5, 1])
        csr = graph_from_degree_sequence(degrees, seed=0)
        assert np.array_equal(csr.row_lengths, degrees)

    def test_columns_in_range(self):
        degrees = np.array([10, 10, 10])
        csr = graph_from_degree_sequence(degrees, seed=0)
        assert csr.column_indices.max() < 3

    def test_empty_sequence(self):
        csr = graph_from_degree_sequence(np.zeros(5, dtype=int), seed=0)
        assert csr.nnz == 0 and csr.n_rows == 5

    def test_skewed_targets_give_heavy_in_degree(self):
        degrees = np.full(2_000, 10)
        skew = graph_from_degree_sequence(degrees, seed=0, skewed_targets=True)
        flat = graph_from_degree_sequence(degrees, seed=0, skewed_targets=False)
        in_skew = np.bincount(skew.column_indices, minlength=2_000)
        in_flat = np.bincount(flat.column_indices, minlength=2_000)
        assert in_skew.max() > 3 * in_flat.max()


class TestTopLevelGenerators:
    def test_power_law_graph_matches_targets(self):
        csr = power_law_graph(400, 2_500, 150, seed=3)
        assert csr.n_rows == 400
        assert csr.nnz == 2_500
        assert csr.row_lengths.max() == 150

    def test_regular_graph_matches_targets(self):
        csr = regular_graph(400, 1_600, 10, seed=3)
        assert csr.nnz == 1_600
        assert csr.row_lengths.max() == 10

    def test_erdos_renyi_density(self):
        csr = erdos_renyi_graph(500, 0.02, seed=4)
        expected = 500 * 500 * 0.02
        assert abs(csr.nnz - expected) < 0.25 * expected

    def test_erdos_renyi_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_barabasi_albert_edge_count(self):
        csr = barabasi_albert_graph(100, 3, seed=5)
        # Symmetrized: ~2 * m * (n - m) directed edges, minus dedup losses.
        assert csr.nnz <= 2 * 3 * 97
        assert csr.nnz >= 1.5 * 3 * 97

    def test_barabasi_albert_hub_formation(self):
        csr = barabasi_albert_graph(400, 2, seed=5)
        assert csr.row_lengths.max() > 10 * csr.row_lengths.mean()

    def test_barabasi_albert_rejects_bad_m(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 5)

    def test_rmat_dimensions(self):
        csr = rmat_graph(scale=8, nnz=2_000, seed=6)
        assert csr.n_rows == 256
        assert csr.nnz == 2_000

    def test_rmat_skew(self):
        csr = rmat_graph(scale=10, nnz=20_000, seed=6)
        lengths = csr.row_lengths
        assert lengths.max() > 8 * max(1.0, lengths.mean())

    def test_rmat_rejects_bad_probabilities(self):
        with pytest.raises(ValueError, match="sum to 1"):
            rmat_graph(4, 10, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_rmat_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(0, 10)
