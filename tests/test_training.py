"""Unit tests for GCN training: gradient checks, convergence, optimizer."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.gnn.training import AdamOptimizer, TrainableGCN
from repro.graphs import Graph
from repro.graphs.generators import block_labels, stochastic_block_model


@pytest.fixture
def sbm_task():
    """A 3-community SBM with label-correlated noisy features."""
    sizes = [30, 30, 30]
    adjacency = stochastic_block_model(sizes, p_in=0.25, p_out=0.01, seed=5)
    graph = Graph(name="sbm", adjacency=adjacency)
    labels = block_labels(sizes)
    rng = np.random.default_rng(0)
    features = np.eye(3)[labels] + 0.5 * rng.normal(size=(90, 3))
    return graph, features, labels


class TestSBMGenerator:
    def test_sizes_and_labels(self):
        adjacency = stochastic_block_model([5, 7], 0.5, 0.1, seed=1)
        assert adjacency.n_rows == 12
        assert np.array_equal(block_labels([5, 7]),
                              [0] * 5 + [1] * 7)

    def test_community_structure(self):
        adjacency = stochastic_block_model([40, 40], 0.3, 0.02, seed=2)
        dense = adjacency.to_dense()
        within = dense[:40, :40].mean()
        between = dense[:40, 40:].mean()
        assert within > 5 * between

    def test_no_self_loops(self):
        adjacency = stochastic_block_model([10, 10], 0.9, 0.9, seed=3)
        assert np.all(adjacency.to_dense().diagonal() == 0)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            stochastic_block_model([5], 0.1, 0.5)

    def test_rejects_empty_sizes(self):
        with pytest.raises(ValueError):
            stochastic_block_model([], 0.5, 0.1)


class TestGradients:
    def test_numerical_gradient_check(self):
        """Analytic dW matches finite differences on a tiny problem."""
        rng = np.random.default_rng(1)
        dense = (rng.random((8, 8)) < 0.4) * 1.0
        graph = Graph(name="tiny", adjacency=CSRMatrix.from_dense(dense))
        adjacency = graph.normalized_adjacency()
        features = rng.random((8, 3))
        labels = rng.integers(0, 2, size=8)
        mask = np.ones(8, dtype=bool)
        model = TrainableGCN([3, 4, 2], seed=2, backend="reference")

        loss, grads = model.gradients(adjacency, features, labels, mask)
        epsilon = 1e-6
        for layer in range(model.n_layers):
            weight = model.weights[layer]
            for index in [(0, 0), (1, 1), (weight.shape[0] - 1,
                                           weight.shape[1] - 1)]:
                original = weight[index]
                weight[index] = original + epsilon
                loss_plus, _ = model.gradients(adjacency, features, labels, mask)
                weight[index] = original - epsilon
                loss_minus, _ = model.gradients(adjacency, features, labels, mask)
                weight[index] = original
                numeric = (loss_plus - loss_minus) / (2 * epsilon)
                assert grads[layer][index] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-7
                ), (layer, index)

    def test_gradients_backend_invariant(self, sbm_task):
        graph, features, labels = sbm_task
        adjacency = graph.normalized_adjacency()
        mask = np.ones(len(labels), dtype=bool)
        ref = TrainableGCN([3, 8, 3], seed=4, backend="reference")
        mp = TrainableGCN([3, 8, 3], seed=4, backend="mergepath")
        loss_ref, grads_ref = ref.gradients(adjacency, features, labels, mask)
        loss_mp, grads_mp = mp.gradients(adjacency, features, labels, mask)
        assert loss_ref == pytest.approx(loss_mp)
        for a, b in zip(grads_ref, grads_mp):
            assert np.allclose(a, b)

    def test_empty_mask_rejected(self, sbm_task):
        graph, features, labels = sbm_task
        model = TrainableGCN([3, 3], seed=0)
        with pytest.raises(ValueError, match="no training nodes"):
            model.gradients(
                graph.normalized_adjacency(), features, labels,
                np.zeros(len(labels), dtype=bool),
            )


class TestTraining:
    def test_loss_decreases(self, sbm_task):
        graph, features, labels = sbm_task
        model = TrainableGCN([3, 8, 3], seed=0)
        report = model.fit(
            graph, features, labels, epochs=30,
            optimizer=AdamOptimizer(learning_rate=0.05),
        )
        assert report.losses[-1] < 0.5 * report.losses[0]

    def test_learns_planted_communities(self, sbm_task):
        graph, features, labels = sbm_task
        model = TrainableGCN([3, 8, 3], seed=0)
        report = model.fit(graph, features, labels, epochs=60)
        assert report.train_accuracy > 0.9

    def test_masked_training_only_uses_mask(self, sbm_task):
        graph, features, labels = sbm_task
        mask = np.zeros(len(labels), dtype=bool)
        mask[::2] = True
        model = TrainableGCN([3, 8, 3], seed=0)
        report = model.fit(graph, features, labels, mask=mask, epochs=40)
        assert report.train_accuracy > 0.8

    def test_rejects_short_dims(self):
        with pytest.raises(ValueError):
            TrainableGCN([4])


class TestAdam:
    def test_moves_toward_minimum(self):
        # Minimize f(x) = x^2 elementwise.
        param = np.array([4.0, -3.0])
        optimizer = AdamOptimizer(learning_rate=0.2)
        for _ in range(100):
            optimizer.step([param], [2 * param])
        assert np.abs(param).max() < 0.2

    def test_alignment_check(self):
        optimizer = AdamOptimizer()
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(2)], [])
