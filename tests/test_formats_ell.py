"""Unit tests for the ELL format."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, ELLMatrix


class TestELL:
    def test_round_trip(self, csr_small):
        ell = ELLMatrix.from_csr(csr_small)
        assert np.allclose(ell.to_csr().to_dense(), csr_small.to_dense())

    def test_width_is_max_row_length(self, paper_example):
        ell = ELLMatrix.from_csr(paper_example)
        assert ell.width == 8

    def test_nnz_excludes_padding(self, paper_example):
        ell = ELLMatrix.from_csr(paper_example)
        assert ell.nnz == paper_example.nnz

    def test_padding_ratio_power_law_vs_structured(
        self, small_power_law, small_structured
    ):
        power_law = ELLMatrix.from_csr(small_power_law).padding_ratio
        structured = ELLMatrix.from_csr(small_structured).padding_ratio
        assert power_law > 5.0  # evil rows make padding explode
        assert structured < 2.5

    def test_padding_ratio_regular_matrix(self):
        eye = ELLMatrix.from_csr(CSRMatrix.identity(10))
        assert eye.padding_ratio == 1.0

    def test_empty_matrix(self):
        empty = CSRMatrix.from_arrays([0, 0], [])
        ell = ELLMatrix.from_csr(empty)
        assert ell.width == 0
        assert ell.padding_ratio == float("inf")

    def test_multiply_dense_matches_csr(self, csr_small):
        ell = ELLMatrix.from_csr(csr_small)
        x = np.random.default_rng(1).random((csr_small.n_cols, 5))
        assert np.allclose(
            ell.multiply_dense(x), csr_small.multiply_dense(x)
        )

    def test_multiply_dense_shape_check(self, csr_small):
        ell = ELLMatrix.from_csr(csr_small)
        with pytest.raises(ValueError, match="dimension mismatch"):
            ell.multiply_dense(np.ones((3, 2)))

    def test_rejects_mismatched_grids(self):
        with pytest.raises(ValueError, match="same shape"):
            ELLMatrix(
                n_rows=2, n_cols=2,
                columns=np.zeros((2, 3), dtype=np.int64),
                values=np.zeros((2, 2)),
            )

    def test_values_preserved(self, rng):
        dense = (rng.random((15, 15)) < 0.3) * rng.random((15, 15))
        csr = CSRMatrix.from_dense(dense)
        ell = ELLMatrix.from_csr(csr)
        assert np.allclose(ell.to_csr().to_dense(), dense)
