"""Unit tests for the invariant oracles and the self-checking executor."""

import numpy as np
import pytest

from repro.core import build_schedule
from repro.formats import CSRMatrix
from repro.graphs import power_law_graph
from repro.resilience import faults
from repro.resilience.oracles import (
    OutputOracleError,
    ScheduleOracleError,
    check_output,
    check_schedule,
    reference_spmm,
    verified_spmm,
)


@pytest.fixture
def graph():
    return power_law_graph(n_nodes=90, nnz=540, max_degree=30, seed=5)


@pytest.fixture
def dense(graph):
    return np.random.default_rng(2).standard_normal((graph.n_cols, 5))


class TestReferenceSpmm:
    def test_matches_serial_reference(self, graph, dense):
        assert np.allclose(
            reference_spmm(graph, dense), graph.multiply_dense(dense)
        )

    def test_empty_matrix(self):
        empty = CSRMatrix.from_dense(np.zeros((0, 0)))
        out = reference_spmm(empty, np.zeros((0, 3)))
        assert out.shape == (0, 3)


class TestScheduleOracle:
    @pytest.mark.parametrize("n_threads", [1, 4, 37, 4096])
    def test_valid_schedules_pass(self, graph, n_threads):
        check_schedule(build_schedule(graph, n_threads))

    def test_empty_matrix_schedule_passes(self):
        empty = CSRMatrix.from_dense(np.zeros((0, 0)))
        check_schedule(build_schedule(empty, 4))

    def test_tampered_accounting_detected(self, graph):
        schedule = build_schedule(graph, 16)
        stats = schedule.statistics
        object.__setattr__(stats, "atomic_nnz", stats.atomic_nnz + 1)
        with pytest.raises(ScheduleOracleError, match="accounting"):
            check_schedule(schedule)


class TestOutputOracle:
    def test_correct_output_passes(self, graph, dense):
        check_output(graph, dense, graph.multiply_dense(dense))

    def test_shape_mismatch(self, graph, dense):
        with pytest.raises(OutputOracleError, match="shape"):
            check_output(graph, dense, np.zeros((graph.n_rows + 1, 5)))

    def test_non_finite_output(self, graph, dense):
        output = graph.multiply_dense(dense)
        output[0, 0] = np.nan
        with pytest.raises(OutputOracleError, match="non-finite"):
            check_output(graph, dense, output)

    def test_wrong_values(self, graph, dense):
        output = graph.multiply_dense(dense)
        output[1, 1] += 0.5
        with pytest.raises(OutputOracleError, match="disagrees"):
            check_output(graph, dense, output)

    def test_precomputed_reference_used(self, graph, dense):
        reference = graph.multiply_dense(dense)
        check_output(graph, dense, reference, reference=reference)


class TestVerifiedSpmm:
    def test_clean_run_no_fallback(self, graph, dense):
        result = verified_spmm(graph, dense, n_threads=23)
        assert not result.fallback_used
        assert result.detected is None
        assert result.result is not None
        assert np.allclose(result.output, graph.multiply_dense(dense))

    @pytest.mark.parametrize("executor", ["vectorized", "reference"])
    def test_injected_fault_recovers_via_fallback(self, graph, dense, executor):
        with faults.inject(seed=0, drop_atomic=1.0) as plan:
            result = verified_spmm(
                graph, dense, n_threads=23, executor=executor
            )
        assert plan.total_injected > 0
        assert result.fallback_used
        assert result.detected is not None
        assert plan.recovered.get("fallback") == 1
        assert np.allclose(result.output, graph.multiply_dense(dense))

    def test_fallback_disabled_raises(self, graph, dense):
        with faults.inject(seed=0, bitflip=1.0):
            with pytest.raises(
                (OutputOracleError, faults.ExecutionFaultError)
            ):
                verified_spmm(graph, dense, n_threads=23, fallback=False)

    def test_corrupt_input_is_unrecoverable(self, graph, dense):
        values = graph.values.copy()
        values[0] = np.nan
        corrupt = CSRMatrix(
            n_rows=graph.n_rows,
            n_cols=graph.n_cols,
            row_pointers=graph.row_pointers,
            column_indices=graph.column_indices,
            values=values,
        )
        with pytest.raises(OutputOracleError, match="corrupt"):
            verified_spmm(corrupt, dense, n_threads=23)
