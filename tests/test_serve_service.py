"""Unit tests for the batching inference service (queueing, shedding)."""

import threading
import time

import numpy as np
import pytest

from repro.resilience import faults
from repro.serve.dispatch import AdaptiveDispatcher, Backend
from repro.serve.plancache import PlanCache
from repro.serve.service import InferenceService, ServeConfig


def _service(config=None, backends=None, **dispatcher_kwargs):
    dispatcher = AdaptiveDispatcher(
        backends,
        plan_cache=PlanCache(),
        epsilon=0.0,
        **dispatcher_kwargs,
    )
    return InferenceService(dispatcher, config)


def _slow_backend(delay):
    def run(matrix, dense, plans, plan_dim):
        time.sleep(delay)
        return matrix.multiply_dense(dense)

    return Backend("slow", run)


def _counting_backend(delay=0.0):
    calls = []

    def run(matrix, dense, plans, plan_dim):
        calls.append(1)
        if delay:
            time.sleep(delay)
        return matrix.multiply_dense(dense)

    return Backend("counting", run), calls


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"max_batch": 0},
            {"max_wait_ms": -1.0},
            {"n_workers": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


class TestRequestPath:
    def test_infer_matches_reference(self, small_power_law, rng):
        dense = rng.random((small_power_law.n_cols, 8))
        with _service() as service:
            response = service.infer(small_power_law, dense, timeout=10.0)
        assert response.ok
        assert response.backend is not None
        assert response.batch_size >= 1
        assert np.allclose(
            response.output, small_power_law.multiply_dense(dense)
        )

    def test_many_requests_all_correct(
        self, small_power_law, small_structured, rng
    ):
        graphs = [small_power_law, small_structured]
        requests = [
            (graphs[i % 2], rng.random((graphs[i % 2].n_cols, 4)))
            for i in range(24)
        ]
        with _service() as service:
            futures = [service.submit(m, d) for m, d in requests]
            responses = [f.result(timeout=10.0) for f in futures]
        for (matrix, dense), response in zip(requests, responses):
            assert response.ok
            assert np.allclose(response.output, matrix.multiply_dense(dense))

    def test_rejects_bad_operand_shapes(self, small_power_law):
        with _service() as service:
            with pytest.raises(ValueError, match="2-D"):
                service.submit(
                    small_power_law, np.zeros(small_power_law.n_cols)
                )
            with pytest.raises(ValueError, match="dimension mismatch"):
                service.submit(
                    small_power_law,
                    np.zeros((small_power_law.n_cols + 3, 4)),
                )


class TestBatching:
    def test_same_graph_requests_share_a_batch(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=64, max_batch=4, max_wait_ms=100.0, n_workers=1
        )
        operands = [rng.random((small_power_law.n_cols, 4)) for _ in range(4)]
        with _service(config) as service:
            futures = [
                service.submit(small_power_law, dense) for dense in operands
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert all(r.ok for r in responses)
        # All four were queued before the worker's first flush deadline,
        # so at least one flush served multiple requests.
        assert max(r.batch_size for r in responses) >= 2
        # Distinct operands must come back unscrambled after the split.
        for dense, response in zip(operands, responses):
            assert np.allclose(
                response.output, small_power_law.multiply_dense(dense)
            )

    def test_distinct_graphs_never_share_a_batch(
        self, small_power_law, small_structured, rng
    ):
        config = ServeConfig(
            max_queue=64, max_batch=8, max_wait_ms=100.0, n_workers=1
        )
        with _service(config) as service:
            futures = [
                service.submit(
                    matrix, rng.random((matrix.n_cols, 4))
                )
                for matrix in (small_power_law, small_structured) * 3
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert all(r.ok for r in responses)
        assert max(r.batch_size for r in responses) <= 3

    def test_distinct_widths_never_share_a_batch(self, small_power_law, rng):
        # Regression: batching must key on the feature width too — mixing
        # widths in one batch keys the plan and bandit arm on an
        # arbitrary member's width and skews the latency stats.
        config = ServeConfig(
            max_queue=64, max_batch=8, max_wait_ms=100.0, n_workers=1
        )
        operands = [
            rng.random((small_power_law.n_cols, width))
            for width in (4, 8, 4, 8)
        ]
        with _service(config) as service:
            futures = [
                service.submit(small_power_law, dense) for dense in operands
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert all(r.ok for r in responses)
        # Two requests of each width: a batch can hold at most both
        # same-width requests, never a mixed pair.
        assert max(r.batch_size for r in responses) <= 2
        for dense, response in zip(operands, responses):
            assert response.output.shape[1] == dense.shape[1]
            assert np.allclose(
                response.output, small_power_law.multiply_dense(dense)
            )

    def test_batched_outputs_are_isolated(self, small_power_law, rng):
        # Regression: split outputs must own their data — a view into the
        # shared stacked batch result lets one client's in-place mutation
        # corrupt another client's reply.
        config = ServeConfig(
            max_queue=64, max_batch=4, max_wait_ms=100.0, n_workers=1
        )
        operands = [rng.random((small_power_law.n_cols, 4)) for _ in range(4)]
        with _service(config) as service:
            futures = [
                service.submit(small_power_law, dense) for dense in operands
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert max(r.batch_size for r in responses) >= 2
        responses[0].output[:] = 0.0
        for dense, response in zip(operands[1:], responses[1:]):
            assert np.allclose(
                response.output, small_power_law.multiply_dense(dense)
            )

    def test_max_batch_bounds_flush(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=64, max_batch=2, max_wait_ms=200.0, n_workers=1
        )
        with _service(config) as service:
            futures = [
                service.submit(
                    small_power_law, rng.random((small_power_law.n_cols, 4))
                )
                for _ in range(6)
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert all(r.ok for r in responses)
        assert max(r.batch_size for r in responses) <= 2


class TestLoadShedding:
    def test_overload_sheds_with_rejected_status(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=1, max_batch=1, max_wait_ms=0.0, n_workers=1
        )
        dense = rng.random((small_power_law.n_cols, 4))
        with _service(config, backends=[_slow_backend(0.05)]) as service:
            futures = [
                service.submit(small_power_law, dense) for _ in range(16)
            ]
            responses = [f.result(timeout=30.0) for f in futures]
        rejected = [r for r in responses if r.rejected]
        accepted = [r for r in responses if r.ok]
        assert rejected, "burst past the bound must shed"
        assert accepted, "shedding must not starve accepted work"
        for response in rejected:
            assert "queue full" in response.error
            assert response.output is None
        for response in accepted:
            assert np.allclose(
                response.output, small_power_law.multiply_dense(dense)
            )

    def test_rejected_future_resolves_immediately(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=1, max_batch=1, max_wait_ms=0.0, n_workers=1
        )
        dense = rng.random((small_power_law.n_cols, 4))
        with _service(config, backends=[_slow_backend(0.2)]) as service:
            futures = [
                service.submit(small_power_law, dense) for _ in range(8)
            ]
            shed = [f for f in futures if f.done()]
            # At least one rejection resolved synchronously at submit time.
            assert any(f.result().rejected for f in shed)
            for future in futures:
                future.result(timeout=30.0)


class TestTimeouts:
    def test_slow_batch_times_out_as_error(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=8, max_batch=1, max_wait_ms=0.0, n_workers=1,
            request_timeout=0.05,
        )
        dense = rng.random((small_power_law.n_cols, 4))
        with _service(config, backends=[_slow_backend(1.0)]) as service:
            response = service.infer(small_power_law, dense, timeout=30.0)
        assert response.status == "error"
        assert "timeout" in response.error


class TestLifecycle:
    def test_submit_before_start_raises(self, small_power_law, rng):
        service = _service()
        with pytest.raises(RuntimeError, match="not started"):
            service.submit(
                small_power_law, rng.random((small_power_law.n_cols, 4))
            )

    def test_submit_after_close_raises(self, small_power_law, rng):
        service = _service().start()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(
                small_power_law, rng.random((small_power_law.n_cols, 4))
            )

    def test_close_drains_pending_requests(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=64, max_batch=2, max_wait_ms=0.0, n_workers=1
        )
        service = _service(config, backends=[_slow_backend(0.01)]).start()
        futures = [
            service.submit(
                small_power_law, rng.random((small_power_law.n_cols, 4))
            )
            for _ in range(6)
        ]
        service.close()
        responses = [f.result(timeout=0.0) for f in futures]
        assert all(r.ok for r in responses)
        assert service.queue_depth == 0

    def test_start_is_idempotent(self, small_power_law, rng):
        with _service() as service:
            service.start()
            response = service.infer(
                small_power_law,
                rng.random((small_power_law.n_cols, 4)),
                timeout=10.0,
            )
        assert response.ok

    def test_failed_admission_does_not_allocate_ids(
        self, small_power_law, rng
    ):
        # Regression: ids and the submitted counter used to advance even
        # when submit raised on a closed/unstarted service, so rejected
        # calls skewed admission accounting.
        service = _service()
        dense = rng.random((small_power_law.n_cols, 4))
        for _ in range(3):
            with pytest.raises(RuntimeError, match="not started"):
                service.submit(small_power_law, dense)
        service.start()
        try:
            response = service.submit(small_power_law, dense).result(
                timeout=10.0
            )
        finally:
            service.close()
        assert response.request_id == 0
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(small_power_law, dense)

    def test_close_during_in_flight_batch_completes_it(
        self, small_power_law, rng
    ):
        # close() must drain the batch the worker is already executing —
        # the client still gets its (correct) response, never an abort.
        config = ServeConfig(
            max_queue=8, max_batch=1, max_wait_ms=0.0, n_workers=1
        )
        backend, calls = _counting_backend(delay=0.3)
        service = _service(config, backends=[backend]).start()
        dense = rng.random((small_power_law.n_cols, 4))
        future = service.submit(small_power_law, dense)
        deadline = time.monotonic() + 5.0
        while not calls and time.monotonic() < deadline:
            time.sleep(0.005)
        assert calls, "batch never started executing"
        closer = threading.Thread(target=service.close)
        closer.start()
        response = future.result(timeout=10.0)
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        assert response.ok
        assert np.allclose(
            response.output, small_power_law.multiply_dense(dense)
        )


class TestDeadlines:
    def test_rejects_nonpositive_deadline(self, small_power_law, rng):
        with _service() as service:
            with pytest.raises(ValueError, match="deadline_ms"):
                service.submit(
                    small_power_law,
                    rng.random((small_power_law.n_cols, 4)),
                    deadline_ms=0,
                )

    def test_generous_deadline_serves_normally(self, small_power_law, rng):
        dense = rng.random((small_power_law.n_cols, 4))
        with _service() as service:
            response = service.submit(
                small_power_law, dense, deadline_ms=30_000.0
            ).result(timeout=10.0)
        assert response.ok
        assert np.allclose(
            response.output, small_power_law.multiply_dense(dense)
        )

    def test_expired_requests_shed_before_execution(
        self, small_power_law, rng
    ):
        config = ServeConfig(
            max_queue=64, max_batch=1, max_wait_ms=0.0, n_workers=1
        )
        backend, calls = _counting_backend(delay=0.1)
        with _service(config, backends=[backend]) as service:
            # The undeadlined blocker pins the single worker while the
            # tightly-deadlined requests expire in the queue.
            blocker = service.submit(
                small_power_law, rng.random((small_power_law.n_cols, 4))
            )
            futures = [
                service.submit(
                    small_power_law,
                    rng.random((small_power_law.n_cols, 4)),
                    deadline_ms=5.0,
                )
                for _ in range(4)
            ]
            assert blocker.result(timeout=10.0).ok
            responses = [f.result(timeout=10.0) for f in futures]
        shed = [r for r in responses if r.deadline_exceeded]
        assert shed, "queued requests past their deadline must be shed"
        for response in shed:
            assert response.status == "deadline_exceeded"
            assert response.output is None
            assert "deadline" in response.error
        # Shed requests never reached the backend.
        assert len(calls) == 1 + (len(responses) - len(shed))

    def test_deadline_cuts_off_running_batch(self, small_power_law, rng):
        # A batch already executing past every member's deadline resolves
        # as deadline_exceeded, not a generic timeout error.
        config = ServeConfig(
            max_queue=8, max_batch=1, max_wait_ms=0.0, n_workers=1
        )
        dense = rng.random((small_power_law.n_cols, 4))
        with _service(config, backends=[_slow_backend(1.0)]) as service:
            response = service.submit(
                small_power_law, dense, deadline_ms=60.0
            ).result(timeout=30.0)
        assert response.deadline_exceeded
        assert response.output is None


class TestWorkerCrashes:
    def test_injected_crash_fails_batch_and_restarts(
        self, small_power_law, rng
    ):
        config = ServeConfig(
            max_queue=8, max_batch=1, max_wait_ms=0.0, n_workers=1,
            restart_budget=3,
        )
        dense = rng.random((small_power_law.n_cols, 4))
        with _service(config) as service:
            with faults.inject(seed=0, crash_worker=1.0) as plan:
                response = service.submit(small_power_law, dense).result(
                    timeout=10.0
                )
            assert plan.injected.get("worker-crash") == 1
            assert response.status == "error"
            assert "worker crashed" in response.error
            # The supervisor respawned a worker that serves real traffic.
            after = service.submit(small_power_law, dense).result(timeout=10.0)
            assert after.ok
            assert service._supervisor.restarts == 1

    def test_exhausted_pool_rejects_and_abandons(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=8, max_batch=1, max_wait_ms=0.0, n_workers=1,
            restart_budget=0,
        )
        dense = rng.random((small_power_law.n_cols, 4))
        backend, calls = _counting_backend(delay=0.25)
        with _service(config, backends=[backend]) as service:
            # While the worker executes the first request, the other two
            # queue up safely; the crash plan then kills the worker on
            # its *second* gather, with the queue demonstrably non-empty.
            futures = [
                service.submit(small_power_law, dense) for _ in range(3)
            ]
            deadline = time.monotonic() + 5.0
            while not calls and time.monotonic() < deadline:
                time.sleep(0.002)
            assert calls, "first batch never started executing"
            with faults.inject(seed=0, crash_worker=1.0):
                responses = [f.result(timeout=10.0) for f in futures]
            # Every future resolved (bounded failure, no hangs): one
            # served, one failed by the crash, one abandoned on exhaustion.
            assert responses[0].ok
            assert "worker crashed" in responses[1].error
            assert "exhausted" in responses[2].error
            # The dead pool now sheds new work at admission.
            rejected = service.submit(small_power_law, dense).result(
                timeout=10.0
            )
            assert rejected.rejected
            assert "exhausted" in rejected.error
            report = service.health()
            assert report.status == "unhealthy"
            assert any(
                c.kind == "worker-pool-exhausted" for c in report.causes
            )
