"""Unit tests for the batching inference service (queueing, shedding)."""

import time

import numpy as np
import pytest

from repro.serve.dispatch import AdaptiveDispatcher, Backend
from repro.serve.plancache import PlanCache
from repro.serve.service import InferenceService, ServeConfig


def _service(config=None, backends=None, **dispatcher_kwargs):
    dispatcher = AdaptiveDispatcher(
        backends,
        plan_cache=PlanCache(),
        epsilon=0.0,
        **dispatcher_kwargs,
    )
    return InferenceService(dispatcher, config)


def _slow_backend(delay):
    def run(matrix, dense, plans, plan_dim):
        time.sleep(delay)
        return matrix.multiply_dense(dense)

    return Backend("slow", run)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"max_batch": 0},
            {"max_wait_ms": -1.0},
            {"n_workers": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


class TestRequestPath:
    def test_infer_matches_reference(self, small_power_law, rng):
        dense = rng.random((small_power_law.n_cols, 8))
        with _service() as service:
            response = service.infer(small_power_law, dense, timeout=10.0)
        assert response.ok
        assert response.backend is not None
        assert response.batch_size >= 1
        assert np.allclose(
            response.output, small_power_law.multiply_dense(dense)
        )

    def test_many_requests_all_correct(
        self, small_power_law, small_structured, rng
    ):
        graphs = [small_power_law, small_structured]
        requests = [
            (graphs[i % 2], rng.random((graphs[i % 2].n_cols, 4)))
            for i in range(24)
        ]
        with _service() as service:
            futures = [service.submit(m, d) for m, d in requests]
            responses = [f.result(timeout=10.0) for f in futures]
        for (matrix, dense), response in zip(requests, responses):
            assert response.ok
            assert np.allclose(response.output, matrix.multiply_dense(dense))

    def test_rejects_bad_operand_shapes(self, small_power_law):
        with _service() as service:
            with pytest.raises(ValueError, match="2-D"):
                service.submit(
                    small_power_law, np.zeros(small_power_law.n_cols)
                )
            with pytest.raises(ValueError, match="dimension mismatch"):
                service.submit(
                    small_power_law,
                    np.zeros((small_power_law.n_cols + 3, 4)),
                )


class TestBatching:
    def test_same_graph_requests_share_a_batch(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=64, max_batch=4, max_wait_ms=100.0, n_workers=1
        )
        operands = [rng.random((small_power_law.n_cols, 4)) for _ in range(4)]
        with _service(config) as service:
            futures = [
                service.submit(small_power_law, dense) for dense in operands
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert all(r.ok for r in responses)
        # All four were queued before the worker's first flush deadline,
        # so at least one flush served multiple requests.
        assert max(r.batch_size for r in responses) >= 2
        # Distinct operands must come back unscrambled after the split.
        for dense, response in zip(operands, responses):
            assert np.allclose(
                response.output, small_power_law.multiply_dense(dense)
            )

    def test_distinct_graphs_never_share_a_batch(
        self, small_power_law, small_structured, rng
    ):
        config = ServeConfig(
            max_queue=64, max_batch=8, max_wait_ms=100.0, n_workers=1
        )
        with _service(config) as service:
            futures = [
                service.submit(
                    matrix, rng.random((matrix.n_cols, 4))
                )
                for matrix in (small_power_law, small_structured) * 3
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert all(r.ok for r in responses)
        assert max(r.batch_size for r in responses) <= 3

    def test_distinct_widths_never_share_a_batch(self, small_power_law, rng):
        # Regression: batching must key on the feature width too — mixing
        # widths in one batch keys the plan and bandit arm on an
        # arbitrary member's width and skews the latency stats.
        config = ServeConfig(
            max_queue=64, max_batch=8, max_wait_ms=100.0, n_workers=1
        )
        operands = [
            rng.random((small_power_law.n_cols, width))
            for width in (4, 8, 4, 8)
        ]
        with _service(config) as service:
            futures = [
                service.submit(small_power_law, dense) for dense in operands
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert all(r.ok for r in responses)
        # Two requests of each width: a batch can hold at most both
        # same-width requests, never a mixed pair.
        assert max(r.batch_size for r in responses) <= 2
        for dense, response in zip(operands, responses):
            assert response.output.shape[1] == dense.shape[1]
            assert np.allclose(
                response.output, small_power_law.multiply_dense(dense)
            )

    def test_batched_outputs_are_isolated(self, small_power_law, rng):
        # Regression: split outputs must own their data — a view into the
        # shared stacked batch result lets one client's in-place mutation
        # corrupt another client's reply.
        config = ServeConfig(
            max_queue=64, max_batch=4, max_wait_ms=100.0, n_workers=1
        )
        operands = [rng.random((small_power_law.n_cols, 4)) for _ in range(4)]
        with _service(config) as service:
            futures = [
                service.submit(small_power_law, dense) for dense in operands
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert max(r.batch_size for r in responses) >= 2
        responses[0].output[:] = 0.0
        for dense, response in zip(operands[1:], responses[1:]):
            assert np.allclose(
                response.output, small_power_law.multiply_dense(dense)
            )

    def test_max_batch_bounds_flush(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=64, max_batch=2, max_wait_ms=200.0, n_workers=1
        )
        with _service(config) as service:
            futures = [
                service.submit(
                    small_power_law, rng.random((small_power_law.n_cols, 4))
                )
                for _ in range(6)
            ]
            responses = [f.result(timeout=10.0) for f in futures]
        assert all(r.ok for r in responses)
        assert max(r.batch_size for r in responses) <= 2


class TestLoadShedding:
    def test_overload_sheds_with_rejected_status(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=1, max_batch=1, max_wait_ms=0.0, n_workers=1
        )
        dense = rng.random((small_power_law.n_cols, 4))
        with _service(config, backends=[_slow_backend(0.05)]) as service:
            futures = [
                service.submit(small_power_law, dense) for _ in range(16)
            ]
            responses = [f.result(timeout=30.0) for f in futures]
        rejected = [r for r in responses if r.rejected]
        accepted = [r for r in responses if r.ok]
        assert rejected, "burst past the bound must shed"
        assert accepted, "shedding must not starve accepted work"
        for response in rejected:
            assert "queue full" in response.error
            assert response.output is None
        for response in accepted:
            assert np.allclose(
                response.output, small_power_law.multiply_dense(dense)
            )

    def test_rejected_future_resolves_immediately(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=1, max_batch=1, max_wait_ms=0.0, n_workers=1
        )
        dense = rng.random((small_power_law.n_cols, 4))
        with _service(config, backends=[_slow_backend(0.2)]) as service:
            futures = [
                service.submit(small_power_law, dense) for _ in range(8)
            ]
            shed = [f for f in futures if f.done()]
            # At least one rejection resolved synchronously at submit time.
            assert any(f.result().rejected for f in shed)
            for future in futures:
                future.result(timeout=30.0)


class TestTimeouts:
    def test_slow_batch_times_out_as_error(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=8, max_batch=1, max_wait_ms=0.0, n_workers=1,
            request_timeout=0.05,
        )
        dense = rng.random((small_power_law.n_cols, 4))
        with _service(config, backends=[_slow_backend(1.0)]) as service:
            response = service.infer(small_power_law, dense, timeout=30.0)
        assert response.status == "error"
        assert "timeout" in response.error


class TestLifecycle:
    def test_submit_before_start_raises(self, small_power_law, rng):
        service = _service()
        with pytest.raises(RuntimeError, match="not started"):
            service.submit(
                small_power_law, rng.random((small_power_law.n_cols, 4))
            )

    def test_submit_after_close_raises(self, small_power_law, rng):
        service = _service().start()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(
                small_power_law, rng.random((small_power_law.n_cols, 4))
            )

    def test_close_drains_pending_requests(self, small_power_law, rng):
        config = ServeConfig(
            max_queue=64, max_batch=2, max_wait_ms=0.0, n_workers=1
        )
        service = _service(config, backends=[_slow_backend(0.01)]).start()
        futures = [
            service.submit(
                small_power_law, rng.random((small_power_law.n_cols, 4))
            )
            for _ in range(6)
        ]
        service.close()
        responses = [f.result(timeout=0.0) for f in futures]
        assert all(r.ok for r in responses)
        assert service.queue_depth == 0

    def test_start_is_idempotent(self, small_power_law, rng):
        with _service() as service:
            service.start()
            response = service.infer(
                small_power_law,
                rng.random((small_power_law.n_cols, 4)),
                timeout=10.0,
            )
        assert response.ok
