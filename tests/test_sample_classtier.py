"""Unit tests for structure classification and the class-tier bake-off."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.graphs import power_law_graph
from repro.sample import classtier
from repro.sample.classtier import (
    ClassTier,
    StructureClass,
    _ceil_power,
    _PaddedTemplate,
    classify,
    get_class_tier,
    set_class_tier,
)


def _matrix(dense):
    return CSRMatrix.from_dense(np.asarray(dense, dtype=float))


@pytest.fixture
def flat5():
    # 5 rows x 1 nnz each: perfectly flat degree profile.
    return _matrix(np.eye(5))


class TestClassify:
    def test_ceil_power(self):
        assert _ceil_power(0, 2) == 1
        assert _ceil_power(1, 2) == 1
        assert _ceil_power(5, 2) == 8
        assert _ceil_power(5, 4) == 16
        assert _ceil_power(16, 4) == 16

    def test_flat_profile(self, flat5):
        cls = classify(flat5)
        assert cls == StructureClass(row_bucket=8, nnz_bucket=16, profile="flat")
        assert cls.label == "r8.n16.flat"

    def test_hub_profile(self):
        dense = np.zeros((16, 16))
        dense[0, :] = 1.0  # one hub row
        dense[1:, 0] = 1.0
        cls = classify(_matrix(dense))
        assert cls.profile == "hub"

    def test_skewed_profile(self):
        dense = np.zeros((8, 8))
        dense[:, 0] = 1.0
        dense[0, 1:5] = 1.0  # max 5 vs mean 1.5: between the boundaries
        assert classify(_matrix(dense)).profile == "skewed"

    def test_same_class_regardless_of_values(self, flat5):
        rescaled = flat5.with_values(flat5.values * 7.0)
        assert classify(rescaled) == classify(flat5)


class TestPaddedTemplate:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        matrix = power_law_graph(n_nodes=60, nnz=400, max_degree=20, seed=1)
        dense = rng.random((matrix.n_cols, 4))
        template = _PaddedTemplate(row_capacity=64)
        out = template.multiply(matrix, dense)
        assert np.allclose(out, matrix.multiply_dense(dense), atol=1e-9)

    def test_reuse_across_different_shapes(self):
        # The grids are shared class state: a second, differently shaped
        # matrix must not see the first one's leftover entries.
        rng = np.random.default_rng(1)
        template = _PaddedTemplate(row_capacity=8)
        wide = _matrix(rng.random((6, 6)) * (rng.random((6, 6)) < 0.8))
        narrow = _matrix(np.eye(4))
        dense6 = rng.random((6, 3))
        dense4 = rng.random((4, 3))
        assert np.allclose(
            template.multiply(wide, dense6),
            wide.multiply_dense(dense6),
            atol=1e-9,
        )
        assert np.allclose(
            template.multiply(narrow, dense4),
            narrow.multiply_dense(dense4),
            atol=1e-9,
        )

    def test_grows_past_initial_capacity(self):
        rng = np.random.default_rng(2)
        template = _PaddedTemplate(row_capacity=2)
        big = _matrix(rng.random((10, 10)) * (rng.random((10, 10)) < 0.5))
        dense = rng.random((10, 2))
        assert np.allclose(
            template.multiply(big, dense),
            big.multiply_dense(dense),
            atol=1e-9,
        )
        assert template.row_capacity >= 10

    def test_empty_matrix(self):
        empty = _matrix(np.zeros((3, 3)))
        out = _PaddedTemplate(row_capacity=4).multiply(
            empty, np.ones((3, 2))
        )
        assert np.array_equal(out, np.zeros((3, 2)))


class TestClassTier:
    def test_first_request_misses_then_hits(self, flat5):
        tier = ClassTier()
        dense = np.random.default_rng(0).random((5, 3))
        out, backend, hit = tier.execute(flat5, dense)
        assert not hit
        assert backend.startswith("class:")
        assert np.allclose(out, flat5.multiply_dense(dense), atol=1e-9)
        # Any same-class subgraph reuses the winner, even with other values.
        sibling = flat5.with_values(flat5.values * 2.0)
        out2, backend2, hit2 = tier.execute(sibling, dense)
        assert hit2
        assert backend2 == backend
        assert np.allclose(out2, sibling.multiply_dense(dense), atol=1e-9)
        stats = tier.stats()
        assert (stats.classes, stats.hits, stats.misses) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_distinct_classes_learn_separately(self, flat5):
        tier = ClassTier()
        rng = np.random.default_rng(3)
        big = power_law_graph(n_nodes=128, nnz=900, max_degree=60, seed=2)
        tier.execute(flat5, rng.random((5, 2)))
        tier.execute(big, rng.random((big.n_cols, 2)))
        assert len(tier) == 2
        assert tier.stats().misses == 2

    def test_measure_rounds_delay_the_decision(self, flat5):
        tier = ClassTier(measure_rounds=2)
        dense = np.random.default_rng(0).random((5, 2))
        _, _, hit1 = tier.execute(flat5, dense)
        _, _, hit2 = tier.execute(flat5, dense)
        _, _, hit3 = tier.execute(flat5, dense)
        assert (hit1, hit2, hit3) == (False, False, True)

    def test_disqualified_candidate_never_wins(self, flat5, monkeypatch):
        # A candidate whose output disagrees with the reference oracle is
        # dropped for the class, however fast it is.
        monkeypatch.setattr(
            classtier,
            "_run_direct",
            lambda matrix, dense: np.zeros(
                (matrix.n_rows, dense.shape[1])
            ),
        )
        tier = ClassTier(executors=("direct", "reference"))
        dense = np.random.default_rng(0).random((5, 3))
        out, backend, _ = tier.execute(flat5, dense)
        assert backend == "class:reference"
        assert np.allclose(out, flat5.multiply_dense(dense), atol=1e-9)
        out2, backend2, hit = tier.execute(flat5, dense)
        assert (backend2, hit) == ("class:reference", True)
        assert np.allclose(out2, flat5.multiply_dense(dense), atol=1e-9)

    def test_every_executor_agrees_with_reference(self, flat5):
        # Force each candidate to run as the class winner and check it.
        rng = np.random.default_rng(4)
        matrix = power_law_graph(n_nodes=40, nnz=260, max_degree=12, seed=5)
        dense = rng.random((matrix.n_cols, 3))
        expected = matrix.multiply_dense(dense)
        for name in ("padded", "direct", "engine", "reference"):
            tier = ClassTier(
                executors=(name, "reference")
                if name != "reference"
                else ("reference",)
            )
            out, _, _ = tier.execute(matrix, dense)
            assert np.allclose(out, expected, atol=1e-9), name

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown"):
            ClassTier(executors=("reference", "magic"))
        with pytest.raises(ValueError, match="reference"):
            ClassTier(executors=("direct",))
        with pytest.raises(ValueError, match="measure_rounds"):
            ClassTier(measure_rounds=0)

    def test_dimension_mismatch(self, flat5):
        with pytest.raises(ValueError, match="mismatch"):
            ClassTier().execute(flat5, np.ones((4, 2)))

    def test_clear_and_stats_to_dict(self, flat5):
        tier = ClassTier()
        tier.execute(flat5, np.ones((5, 1)))
        report = tier.stats().to_dict()
        assert report["classes"] == 1
        assert report["plans"][0]["class"] == "r8.n16.flat"
        assert report["plans"][0]["executor"] in (
            "padded", "direct", "engine", "reference"
        )
        tier.clear()
        assert len(tier) == 0
        assert tier.stats().requests == 0

    def test_process_wide_swap(self):
        fresh = ClassTier()
        previous = set_class_tier(fresh)
        try:
            assert get_class_tier() is fresh
        finally:
            set_class_tier(previous)
