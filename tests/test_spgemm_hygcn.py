"""Unit tests for SpGEMM and the HyGCN two-engine model."""

import numpy as np
import pytest

from repro.baselines.hygcn import HyGCNConfig, HyGCNModel
from repro.formats import CSRMatrix
from repro.formats.spgemm import spgemm, spgemm_flops
from repro.graphs import power_law_graph, regular_graph


class TestSpGEMM:
    def test_matches_dense_product(self, rng):
        for _ in range(10):
            m, k, n = rng.integers(1, 15, size=3)
            a = (rng.random((m, k)) < 0.3) * rng.random((m, k))
            b = (rng.random((k, n)) < 0.3) * rng.random((k, n))
            product = spgemm(CSRMatrix.from_dense(a), CSRMatrix.from_dense(b))
            assert np.allclose(product.to_dense(), a @ b)

    def test_identity_left(self, csr_small):
        eye = CSRMatrix.identity(csr_small.n_rows)
        assert np.allclose(
            spgemm(eye, csr_small).to_dense(), csr_small.to_dense()
        )

    def test_identity_right(self, csr_small):
        eye = CSRMatrix.identity(csr_small.n_cols)
        assert np.allclose(
            spgemm(csr_small, eye).to_dense(), csr_small.to_dense()
        )

    def test_columns_sorted_per_row(self, small_power_law):
        product = spgemm(small_power_law, small_power_law)
        rp = product.row_pointers
        for row in range(min(50, product.n_rows)):
            cols = product.column_indices[rp[row]: rp[row + 1]]
            assert (np.diff(cols) > 0).all()

    def test_cancellations_dropped(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0]]))
        b = CSRMatrix.from_dense(np.array([[1.0], [-1.0]]))
        product = spgemm(a, b)
        assert product.nnz == 0

    def test_dimension_mismatch(self, csr_small):
        other = CSRMatrix.identity(csr_small.n_cols + 1)
        with pytest.raises(ValueError, match="dimension mismatch"):
            spgemm(csr_small, other)

    def test_empty_operands(self):
        empty = CSRMatrix.from_arrays([0, 0, 0], [])
        product = spgemm(empty, empty)
        assert product.nnz == 0 and product.shape == (2, 2)

    def test_flops_counts_partial_products(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 1.0]]))
        b = CSRMatrix.from_dense(np.array([[1.0, 0.0], [1.0, 1.0]]))
        # Row 0 of a touches b rows 0 (1 nnz) and 1 (2 nnz) = 3; row 1
        # touches b row 1 = 2.  Total 5 partial products.
        assert spgemm_flops(a, b) == 5

    def test_flops_mismatch(self, csr_small):
        with pytest.raises(ValueError):
            spgemm_flops(csr_small, CSRMatrix.identity(csr_small.n_cols + 2))


class TestHyGCN:
    def _features(self, n, f, density, seed=0):
        rng = np.random.default_rng(seed)
        return CSRMatrix.from_dense((rng.random((n, f)) < density) * 1.0)

    def test_pipelined_layer_is_max_of_engines(self, small_power_law):
        model = HyGCNModel()
        features = self._features(small_power_law.n_cols, 32, 0.3)
        timing = model.layer_time(small_power_law, features, out_dim=16)
        assert timing.layer_seconds == pytest.approx(
            max(timing.aggregation_seconds, timing.combination_seconds)
        )
        assert 0.0 <= timing.idle_fraction < 1.0

    def test_input_dependence_moves_bottleneck(self):
        """The paper's point: the busy engine depends on the graph."""
        model = HyGCNModel()
        sparse_graph = regular_graph(400, 800, 4, seed=1)  # little aggregation
        dense_graph = power_law_graph(400, 12_000, 300, seed=1)  # heavy agg
        features = self._features(400, 64, 0.5)
        light = model.layer_time(sparse_graph, features, out_dim=64)
        heavy = model.layer_time(dense_graph, features, out_dim=64)
        assert (
            heavy.aggregation_seconds / heavy.combination_seconds
            > light.aggregation_seconds / light.combination_seconds
        )

    def test_unified_engine_never_slower(self, small_power_law):
        """No inter-engine idling: unified time <= pipelined time."""
        model = HyGCNModel()
        for density in (0.05, 0.3, 0.8):
            features = self._features(small_power_law.n_cols, 32, density)
            timing = model.layer_time(small_power_law, features, out_dim=16)
            unified = model.unified_layer_time(
                small_power_law, features, out_dim=16
            )
            assert unified <= timing.layer_seconds * (1 + 1e-9)

    def test_idle_fraction_grows_with_imbalance(self):
        model = HyGCNModel(HyGCNConfig(aggregation_macs=64,
                                       combination_macs=4096))
        graph = power_law_graph(300, 9_000, 200, seed=2)
        features = self._features(300, 16, 0.2)
        timing = model.layer_time(graph, features, out_dim=4)
        # Tiny aggregation engine + aggregation-heavy input -> the big
        # combination engine idles most of the time.
        assert timing.bottleneck == "aggregation"
        assert timing.idle_fraction > 0.5
