"""Integration tests: instrumentation threaded through the real code paths."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.experiments import fig5_write_ops
from repro.experiments.harness import (
    EXPERIMENTS,
    approx_seconds,
    main as harness_main,
    run_experiments,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    obs.set_registry(None)
    obs.set_recorder(None)


class TestFig5Counters:
    def test_schedule_counters_match_reported_table(self):
        """The obs counters and Figure 5's table are the same numbers."""
        names = ["Cora", "Citeseer"]
        with obs.profiled() as session:
            result = fig5_write_ops.run(names=names)
        atomic = session.registry.counter("core.schedule.atomic_writes").value
        regular = session.registry.counter("core.schedule.regular_writes").value
        assert atomic == sum(result.column("atomic"))
        assert regular == sum(result.column("regular"))
        assert session.registry.counter("core.schedule.built").value == len(names)

    def test_executor_counters_match_schedule(self, small_power_law, features):
        from repro.core import merge_path_spmm

        with obs.profiled() as session:
            result = merge_path_spmm(
                small_power_law, features(small_power_law.n_cols, 8)
            )
        registry = session.registry
        assert (
            registry.counter("core.executor.atomic_writes").value
            == result.writes.atomic_writes
            == result.schedule.statistics.atomic_writes
        )
        assert (
            registry.counter("core.executor.regular_writes").value
            == result.writes.regular_writes
        )


class TestGPUTimingMetrics:
    def test_cycle_breakdown_published(self, small_power_law):
        from repro.gpu import kernel_time

        with obs.profiled() as session:
            timing = kernel_time("mergepath", small_power_law, 16)
        breakdowns = obs.kernel_breakdowns(session.snapshot())
        parts = breakdowns[timing.label]
        for component in (
            "total", "issue", "bandwidth", "little", "span", "atomic",
            "hotspot", "serial", "launch",
        ):
            assert component in parts
        assert parts["total"] == pytest.approx(timing.cycles)
        assert parts["issue"] == pytest.approx(timing.issue_cycles)
        spans = {e["name"] for e in session.trace.events if e["ph"] == "X"}
        assert "gpu.kernels.kernel_time" in spans
        assert "gpu.timing.simulate" in spans


class TestMulticoreMetrics:
    def test_run_publishes_cache_and_noc_events(self, small_power_law):
        from repro.multicore.kernels import run_mergepath

        with obs.profiled() as session:
            result = run_mergepath(small_power_law, dim=4, n_cores=4)
        registry = session.registry
        assert registry.counter("multicore.runs").value == 1
        assert (
            registry.counter("multicore.dram_accesses").value
            == result.dram_accesses
        )
        assert registry.histogram("multicore.core_cycles").count == 4
        assert registry.counter("multicore.l1_accesses").value > 0


class TestHarnessProfiling:
    def test_profile_and_trace_cli(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = harness_main(
            [
                "fig3", "--profile",
                "--trace-out", str(trace_path),
                "--bench-dir", str(tmp_path / "bench"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile summary" in out
        assert "core.schedule.built" in out
        # (a) run record, appended to the trajectory file
        doc = json.loads((tmp_path / "bench" / "BENCH_fig3.json").read_text())
        assert doc["schema"] == "repro.obs.runs/2"
        record = doc["runs"][-1]
        assert record["schema"] == "repro.obs.run/1"
        assert record["status"] == "ok"
        assert record["wall_seconds"] > 0
        names = {m["name"] for m in record["metrics"]}
        assert "core.schedule.atomic_writes" in names
        # (b) valid Chrome trace with nested spans for the schedule build
        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"] for e in spans}
        assert "experiment.fig3" in by_name
        assert "core.schedule.build" in by_name
        depths = {e["name"]: e["args"]["depth"] for e in spans}
        assert depths["core.schedule.build"] > depths["experiment.fig3"]

    def test_unprofiled_cli_exports_nothing(self, tmp_path, capsys):
        code = harness_main(["fig3", "--bench-dir", str(tmp_path / "bench")])
        assert code == 0
        assert not (tmp_path / "bench").exists()
        assert "profile summary" not in capsys.readouterr().out


class TestApproxSeconds:
    def test_falls_back_to_static_table(self, tmp_path):
        assert approx_seconds("fig9", bench_dir=tmp_path) == 200.0

    def test_prefers_measured_record(self, tmp_path):
        obs.write_run_record(
            obs.run_record("fig9", wall_seconds=123.0), directory=tmp_path
        )
        assert approx_seconds("fig9", bench_dir=tmp_path) == 123.0

    def test_list_uses_bench_dir(self, tmp_path, capsys):
        obs.write_run_record(
            obs.run_record("fig3", wall_seconds=7.0), directory=tmp_path
        )
        assert harness_main(["--list", "--bench-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig3     ~7s" in out
        assert len(out.strip().splitlines()) == len(EXPERIMENTS)


class TestFailureRecording:
    def test_record_mode_continues_past_failures(self, monkeypatch):
        boom = RuntimeError("synthetic failure")

        def failing():
            raise boom

        monkeypatch.setitem(EXPERIMENTS, "fig3", failing)
        with obs.profiled() as session:
            results = run_experiments(["fig3", "table1"], on_error="record")
        assert set(results) == {"fig3", "table1"}
        assert results["fig3"].failed
        assert "RuntimeError: synthetic failure" in results["fig3"].error
        assert "FAILED" in results["fig3"].format()
        assert not results["table1"].failed
        errored = [
            e for e in session.trace.events
            if e["ph"] == "X" and "error" in e.get("args", {})
        ]
        assert any(e["name"] == "experiment.fig3" for e in errored)

    def test_raise_mode_propagates(self, monkeypatch):
        def failing():
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(EXPERIMENTS, "fig3", failing)
        with pytest.raises(RuntimeError, match="synthetic"):
            run_experiments(["fig3"])

    def test_cli_reports_failures_and_exits_nonzero(
        self, monkeypatch, tmp_path, capsys
    ):
        def failing():
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(EXPERIMENTS, "fig3", failing)
        code = harness_main(
            ["fig3", "table1", "--profile", "--bench-dir", str(tmp_path)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "1 experiment(s) failed: fig3" in captured.err
        doc = json.loads((tmp_path / "BENCH_fig3.json").read_text())
        record = doc["runs"][-1]
        assert record["status"] == "error"
        assert "RuntimeError" in record["error"]

    def test_bad_on_error_value(self):
        with pytest.raises(ValueError, match="on_error"):
            run_experiments(["fig3"], on_error="explode")


class TestObsReportCLI:
    def test_reports_latest_record(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        assert harness_main(
            ["fig3", "--profile", "--bench-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        code = repro_main(["obs-report", "--bench-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "run record: fig3" in out
        assert "core.schedule.built" in out

    def test_no_records(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        code = repro_main(["obs-report", "--bench-dir", str(tmp_path)])
        assert code == 1
        assert "no run records" in capsys.readouterr().out

    def test_all_listing(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        obs.write_run_record(
            obs.run_record("fig3", wall_seconds=1.0), directory=tmp_path
        )
        code = repro_main(["obs-report", "--all", "--bench-dir", str(tmp_path)])
        assert code == 0
        assert "fig3" in capsys.readouterr().out


def _load_lint_module():
    import importlib.util
    from pathlib import Path

    tool = Path(__file__).parent.parent / "tools" / "check_instrumentation.py"
    spec = importlib.util.spec_from_file_location("check_inst", tool)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestInstrumentationLint:
    def test_repo_is_clean(self, capsys):
        module = _load_lint_module()
        assert module.main() == 0
        assert "clean" in capsys.readouterr().out

    def test_detects_missing_decorator(self, tmp_path):
        module = _load_lint_module()
        offender = module.REPO_ROOT / "src" / "repro" / "_lint_probe_tmp.py"
        offender.write_text(
            "def run_everything():\n    pass\n\n"
            "@instrumented\ndef run_covered():\n    pass\n\n"
            "class ToySystem:\n"
            "    def run(self):\n        pass\n"
        )
        try:
            messages = module.check_file(offender)
        finally:
            offender.unlink()
        assert len(messages) == 2
        assert any("run_everything" in m for m in messages)
        assert any("ToySystem.run" in m for m in messages)
