"""Unit tests for the measured autotuner and its persistent cache."""

import json

import numpy as np
import pytest

from repro.engine import Autotuner, Candidate, default_candidates
from repro.engine.autotune import SCHEMA


class TestAutotuner:
    def _tuner(self, times, **kwargs):
        """An Autotuner over trivial candidates with scripted runtimes.

        The fake measure still runs each thunk once (so the candidate
        callables stay exercised) but reports the scripted seconds, in
        candidate order — which is the order ``tune`` measures in.
        """
        names = list(times)
        cands = tuple(
            Candidate(name=n, run=lambda m, d: m.multiply_dense(d))
            for n in names
        )

        def measure(thunk, _state={"i": 0}):
            thunk()
            name = names[_state["i"] % len(names)]
            _state["i"] += 1
            return times[name]

        return Autotuner(candidates=cands, measure=measure, **kwargs)

    def test_picks_fastest_candidate(self, paper_example):
        tuner = self._tuner({"slow": 2.0, "fast": 0.5, "mid": 1.0})
        decision = tuner.tune(paper_example, 4)
        assert decision.winner == "fast"
        assert decision.timings == {"slow": 2.0, "fast": 0.5, "mid": 1.0}

    def test_tie_breaks_to_candidate_order(self, paper_example):
        tuner = self._tuner({"first": 1.0, "second": 1.0})
        assert tuner.tune(paper_example, 4).winner == "first"

    def test_decision_cached_in_memory(self, paper_example):
        calls = []
        cands = (
            Candidate(name="only", run=lambda m, d: m.multiply_dense(d)),
        )

        def measure(thunk):
            calls.append(1)
            thunk()
            return 1.0

        tuner = Autotuner(candidates=cands, measure=measure)
        tuner.tune(paper_example, 4)
        tuner.tune(paper_example, 4)
        assert len(calls) == 1  # second tune served from memory

    def test_deterministic_across_instances(self, small_power_law):
        a = self._tuner({"x": 3.0, "y": 1.0}).tune(small_power_law, 8)
        b = self._tuner({"x": 3.0, "y": 1.0}).tune(small_power_law, 8)
        assert a == b

    def test_persists_across_restart(self, paper_example, tmp_path):
        path = tmp_path / "tuning.json"
        tuner = self._tuner({"a": 2.0, "b": 1.0}, cache_path=path)
        first = tuner.tune(paper_example, 4)
        assert path.exists()
        assert json.loads(path.read_text())["schema"] == SCHEMA

        def must_not_measure(thunk):
            raise AssertionError("restart should hit the JSON cache")

        cands = tuple(
            Candidate(name=n, run=lambda m, d: m.multiply_dense(d))
            for n in ("a", "b")
        )
        restarted = Autotuner(
            path, candidates=cands, measure=must_not_measure
        )
        assert restarted.tune(paper_example, 4) == first

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text(json.dumps({"schema": "bogus/9", "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            Autotuner(path)

    def test_stale_winner_retunes(self, paper_example, tmp_path):
        # A cache written by a build with a different candidate set must
        # not crash — the tuner re-measures with the current set.
        path = tmp_path / "tuning.json"
        tuner = self._tuner({"legacy": 1.0}, cache_path=path)
        tuner.tune(paper_example, 4)
        current = self._tuner({"modern": 1.0}, cache_path=path)
        run = current.best_executor(paper_example, 4)
        assert getattr(run, "name", None) == "modern"

    def test_best_executor_runs_winner(self, small_power_law, features):
        tuner = self._tuner({"only": 1.0})
        run = tuner.best_executor(small_power_law, 8)
        x = features(small_power_law.n_cols, 8)
        np.testing.assert_allclose(
            run(small_power_law, x), small_power_law.multiply_dense(x)
        )

    def test_width_validated(self, paper_example):
        tuner = self._tuner({"only": 1.0})
        with pytest.raises(ValueError, match="width"):
            tuner.tune(paper_example, 0)

    def test_default_candidates_all_correct(self, paper_example, features):
        x = features(paper_example.n_cols, 4)
        expected = paper_example.multiply_dense(x)
        for candidate in default_candidates():
            np.testing.assert_allclose(
                candidate.run(paper_example, x),
                expected,
                rtol=1e-9,
                atol=1e-12,
                err_msg=candidate.name,
            )

class TestCacheHardening:
    """Torn/corrupt tuning caches must not keep the service from starting."""

    def _tuner(self, path, names=("a", "b")):
        cands = tuple(
            Candidate(name=n, run=lambda m, d: m.multiply_dense(d))
            for n in names
        )
        return Autotuner(path, candidates=cands, measure=lambda t: (t(), 1.0)[1])

    def _write_good_cache(self, path, matrix):
        seeded = self._tuner(path)
        decision = seeded.tune(matrix, 4)
        assert path.exists()
        return decision

    def test_torn_json_tolerated_and_counted(self, paper_example, tmp_path):
        path = tmp_path / "tuning.json"
        self._write_good_cache(path, paper_example)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # crash mid-copy
        tuner = self._tuner(path)
        assert tuner.load_errors == 1
        assert tuner.decisions == ()
        # Re-tuning is merely slow, not fatal — and heals the file.
        tuner.tune(paper_example, 4)
        assert json.loads(path.read_text())["schema"] == SCHEMA
        assert self._tuner(path).load_errors == 0

    def test_empty_file_tolerated(self, paper_example, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("")
        tuner = self._tuner(path)
        assert tuner.load_errors == 1
        assert tuner.tune(paper_example, 4).winner == "a"

    def test_non_object_payload_tolerated(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text(json.dumps([1, 2, 3]))
        assert self._tuner(path).load_errors == 1

    def test_corrupt_entry_tolerated(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text(
            json.dumps({"schema": SCHEMA, "entries": [{"nonsense": True}]})
        )
        tuner = self._tuner(path)
        assert tuner.load_errors == 1
        assert tuner.decisions == ()

    def test_wellformed_wrong_schema_still_raises(self, tmp_path):
        # A readable file with a different schema is a configuration
        # error, not a torn write; silently discarding it would mask it.
        path = tmp_path / "tuning.json"
        path.write_text(json.dumps({"schema": "other/1", "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            self._tuner(path)

    def test_forget_fingerprint_is_precise(self, paper_example, tmp_path):
        path = tmp_path / "tuning.json"
        tuner = self._tuner(path)
        tuner.tune(paper_example, 4)
        tuner.tune(paper_example, 8)
        other = paper_example.with_version(7)
        tuner.tune(other, 4)
        dropped = tuner.forget_fingerprint(paper_example.fingerprint())
        assert dropped == 2  # both widths of the retired fingerprint
        remaining = {d.fingerprint for d in tuner.decisions}
        assert remaining == {other.fingerprint()}
        # The persisted cache was rewritten without the forgotten keys.
        reloaded = self._tuner(path)
        assert {d.fingerprint for d in reloaded.decisions} == remaining
        assert tuner.forget_fingerprint("not-cached") == 0


class TestRealMeasure:
    def test_real_measure_end_to_end(self, paper_example):
        # Full stack with the wall-clock measure on a tiny matrix: just
        # asserts it completes and returns a known candidate.
        tuner = Autotuner()
        decision = tuner.tune(paper_example, 2)
        assert decision.winner in {c.name for c in default_candidates()}
        assert set(decision.timings) == {c.name for c in default_candidates()}
