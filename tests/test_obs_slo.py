"""Unit tests for the SLO layer (objectives, burn rates, slo-report)."""

import json

import pytest

from repro import obs
from repro.obs.slo import (
    SLObjective,
    SLOTracker,
    main as slo_main,
    render_slo_report,
)
from repro.serve.health import DEGRADED, HealthPolicy, evaluate_health


class TestObjective:
    def test_defaults(self):
        objective = SLObjective()
        assert objective.route == "default"
        assert objective.effective_threshold_ms == 250.0

    def test_threshold_precedence(self):
        assert SLObjective(threshold_ms=100.0).effective_threshold_ms == 100.0
        assert (
            SLObjective(p95_ms=None, p99_ms=300.0).effective_threshold_ms
            == 300.0
        )
        assert (
            SLObjective(p95_ms=None, p99_ms=None).effective_threshold_ms
            is None
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p95_ms": 0.0},
            {"threshold_ms": -1.0},
            {"success_rate": 0.0},
            {"success_rate": 1.0},
            {"window": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SLObjective(**kwargs)


class TestTracker:
    def test_burn_rate_math(self):
        # 10 samples, success floor 0.9 -> 1 violation allowed; 5
        # violations burn at 5x and exhaust the budget.
        tracker = SLOTracker(
            default_objective=SLObjective(
                threshold_ms=100.0, success_rate=0.9, window=64
            )
        )
        for _ in range(5):
            tracker.observe("r", 0.01)  # 10 ms, fine
        for _ in range(5):
            tracker.observe("r", 0.5)  # 500 ms, violates
        report = tracker.route_report("r")
        assert report["violations"] == 5
        assert report["budget"]["burn_rate"] == pytest.approx(5.0)
        assert report["budget"]["exhausted"]

    def test_failures_always_violate(self):
        tracker = SLOTracker()
        tracker.observe("r", 0.0, ok=False)
        assert tracker.route_report("r")["violations"] == 1

    def test_percentiles_over_ok_only(self):
        tracker = SLOTracker(
            default_objective=SLObjective(p95_ms=1000.0, window=64)
        )
        for latency in (0.010, 0.020, 0.030):
            tracker.observe("r", latency)
        tracker.observe("r", 99.0, ok=False)  # failed: excluded from p50
        observed = tracker.route_report("r")["observed_ms"]
        assert observed["p50"] == pytest.approx(20.0)

    def test_route_template_and_explicit(self):
        explicit = SLObjective(route="gold", threshold_ms=10.0)
        tracker = SLOTracker(
            objectives=[explicit],
            default_objective=SLObjective(p95_ms=500.0),
        )
        assert tracker.objective_for("gold").effective_threshold_ms == 10.0
        templated = tracker.objective_for("other")
        assert templated.route == "other"
        assert templated.effective_threshold_ms == 500.0

    def test_window_bounds_samples(self):
        tracker = SLOTracker(
            default_objective=SLObjective(threshold_ms=100.0, window=4)
        )
        for _ in range(10):
            tracker.observe("r", 1.0)  # all violate
        report = tracker.route_report("r")
        assert report["samples"] == 4
        assert report["total_observed"] == 10

    def test_report_and_health_snapshot(self):
        tracker = SLOTracker(
            default_objective=SLObjective(threshold_ms=100.0, window=16)
        )
        tracker.observe("a", 0.01)
        tracker.observe("b", 1.0)
        report = tracker.report()
        assert set(report["routes"]) == {"a", "b"}
        assert report["worst_burn_rate"] > 0
        snapshot = tracker.health_snapshot()
        assert snapshot["routes"]["b"]["exhausted"]
        assert snapshot["routes"]["a"]["samples"] == 1

    def test_violation_counter_emitted(self):
        registry = obs.MetricRegistry()
        obs.set_registry(registry)
        try:
            tracker = SLOTracker(
                default_objective=SLObjective(threshold_ms=1.0)
            )
            tracker.observe("r", 5.0)
        finally:
            obs.set_registry(None)
        names = {e["name"] for e in registry.snapshot()}
        assert "obs.slo.violations" in names


class TestHealthIntegration:
    def _snapshot(self, routes):
        return {"closed": False, "started": True, "slo": {"routes": routes}}

    def test_exhausted_budget_degrades(self):
        report = evaluate_health(
            self._snapshot(
                {"r": {"samples": 32, "burn_rate": 4.0, "exhausted": True}}
            )
        )
        assert report.status == DEGRADED
        assert any(c.kind == "slo-budget-exhausted" for c in report.causes)

    def test_high_burn_degrades(self):
        report = evaluate_health(
            self._snapshot(
                {"r": {"samples": 32, "burn_rate": 1.5, "exhausted": False}}
            )
        )
        assert any(c.kind == "slo-burn-high" for c in report.causes)

    def test_few_samples_not_judged(self):
        report = evaluate_health(
            self._snapshot(
                {"r": {"samples": 3, "burn_rate": 99.0, "exhausted": True}}
            )
        )
        assert report.healthy

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(slo_burn_degraded=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(slo_min_samples=0)


class TestRender:
    def test_empty(self):
        assert "no routes" in render_slo_report({})

    def test_table_contents(self):
        tracker = SLOTracker(
            default_objective=SLObjective(
                p95_ms=100.0, success_rate=0.9, window=16
            )
        )
        for _ in range(10):
            tracker.observe("cora", 0.5)
        text = render_slo_report(tracker.report())
        assert "cora" in text
        assert "MISS" in text
        assert "EXHAUSTED" in text


class TestCli:
    def _write_serve_record(self, tmp_path, slo):
        obs.write_run_record(
            obs.run_record("serve", extra={"serve": {"slo": slo}}),
            directory=tmp_path,
        )

    def test_no_record(self, tmp_path, capsys):
        assert slo_main(["--bench-dir", str(tmp_path)]) == 1
        assert "no 'serve' run record" in capsys.readouterr().err

    def test_record_without_slo(self, tmp_path, capsys):
        obs.write_run_record(obs.run_record("serve"), directory=tmp_path)
        assert slo_main(["--bench-dir", str(tmp_path)]) == 1
        assert "no SLO section" in capsys.readouterr().err

    def test_renders_latest(self, tmp_path, capsys):
        tracker = SLOTracker(
            default_objective=SLObjective(p95_ms=100.0, window=8)
        )
        tracker.observe("cora", 0.01)
        self._write_serve_record(tmp_path, tracker.report())
        assert slo_main(["--bench-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "slo-report" in out and "cora" in out

    def test_json_mode(self, tmp_path, capsys):
        tracker = SLOTracker()
        tracker.observe("cora", 0.01)
        self._write_serve_record(tmp_path, tracker.report())
        assert slo_main(["--bench-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "cora" in payload["routes"]

    def test_subcommand_dispatch(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        tracker = SLOTracker()
        tracker.observe("cora", 0.01)
        self._write_serve_record(tmp_path, tracker.report())
        code = repro_main(["slo-report", "--bench-dir", str(tmp_path)])
        assert code == 0
        assert "cora" in capsys.readouterr().out
