"""Tests for the serving load generator and ``serve-bench`` CLI."""

import json

import numpy as np
import pytest

from repro.serve.loadgen import (
    BenchConfig,
    main,
    percentiles_ms,
    render_summary,
    run_bench,
    zipf_weights,
)
from repro.serve.service import ServeConfig


def _tiny_config(**overrides):
    defaults = dict(
        requests=30,
        seed=0,
        mode="open",
        rate=2000.0,
        dim=8,
        datasets=("Cora", "Citeseer"),
        scale=0.1,
        overload_requests=16,
        service=ServeConfig(max_queue=64, max_batch=4, max_wait_ms=1.0),
    )
    defaults.update(overrides)
    return BenchConfig(**defaults)


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(6, 1.1)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) < 0)

    def test_skew_increases_head_mass(self):
        assert zipf_weights(4, 2.0)[0] > zipf_weights(4, 0.5)[0]


class TestPercentiles:
    def test_empty_sample(self):
        stats = percentiles_ms([])
        assert stats == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0,
        }

    def test_ordering(self):
        stats = percentiles_ms([0.001 * i for i in range(1, 101)])
        assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]
        assert stats["p50"] == pytest.approx(50.5)


class TestBenchConfig:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            _tiny_config(mode="sideways")

    def test_rejects_empty_datasets(self):
        with pytest.raises(ValueError, match="dataset"):
            _tiny_config(datasets=())


class TestRunBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_bench(_tiny_config())

    def test_counts_balance(self, report):
        steady = report["steady"]
        assert steady["requests"] == 30
        assert (
            steady["accepted"] + steady["rejected"] + steady["errors"] == 30
        )
        assert steady["errors"] == 0

    def test_no_silent_failures(self, report):
        assert report["silent_failures"] == 0
        assert report["steady"]["mismatches"] == 0
        assert report["overload"]["mismatches"] == 0
        # Verification actually ran for every accepted response.
        assert report["steady"]["verified"] == report["steady"]["accepted"]

    def test_overload_sheds(self, report):
        overload = report["overload"]
        assert overload["requests"] == 16
        assert overload["rejected"] >= 1
        assert overload["accepted"] + overload["rejected"] + overload[
            "errors"
        ] == 16

    def test_plan_cache_consistent(self, report):
        # At most one plan per graph structure (cost is fixed by dim);
        # whether the cache sees traffic depends on which backends the
        # bandit picked, so only consistency is asserted here.
        cache = report["steady"]["plan_cache"]
        assert cache["misses"] <= 2
        assert cache["entries"] == cache["misses"] - cache["evictions"]

    def test_plan_cache_exercised_under_exploration(self):
        # epsilon=1.0 forces pure exploration, so the plan-backed
        # backends (vectorized, threaded) are guaranteed traffic and the
        # repeated Zipf-hot structures must hit the cache.
        report = run_bench(
            _tiny_config(
                epsilon=1.0,
                service=ServeConfig(
                    max_queue=64, max_batch=1, max_wait_ms=0.0
                ),
            )
        )
        cache = report["steady"]["plan_cache"]
        assert cache["hits"] > 0
        assert 0 < cache["misses"] <= 2
        assert report["silent_failures"] == 0

    def test_modeled_percentiles_deterministic(self, report):
        modeled = run_bench(_tiny_config())["steady"]["modeled"]
        assert modeled == report["steady"]["modeled"]
        assert (
            modeled["p50_us"] <= modeled["p95_us"] <= modeled["p99_us"]
        )

    def test_render_summary_mentions_key_stats(self, report):
        text = render_summary(report)
        assert "plan cache" in text
        assert "silent failures" in text

    def test_closed_loop_mode(self):
        report = run_bench(_tiny_config(mode="closed", concurrency=4))
        steady = report["steady"]
        assert steady["accepted"] == 30
        assert steady["rejected"] == 0
        assert report["silent_failures"] == 0


class TestLiveUpdateBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_bench(
            _tiny_config(
                requests=60,
                rate=1500.0,
                update_rate=150.0,
                compact_threshold=8,
            )
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="update_rate"):
            _tiny_config(update_rate=-1.0)
        with pytest.raises(ValueError, match="update_batch_max"):
            _tiny_config(update_batch_max=0)
        with pytest.raises(ValueError, match="compact_threshold"):
            _tiny_config(compact_threshold=0)

    def test_no_silent_failures_under_updates(self, report):
        assert report["silent_failures"] == 0
        assert report["steady"]["mismatches"] == 0
        assert report["steady"]["errors"] == 0

    def test_update_stream_recorded(self, report):
        stream = report["steady"]["update_stream"]
        assert stream["batches"] >= 1
        assert stream["updates"] >= stream["batches"]
        assert stream["errors"] == 0
        assert stream["rate_target"] == 150.0
        epochs = stream["epochs"]
        assert epochs["current_epoch"] == stream["batches"]
        assert epochs["updates_applied"] == stream["updates"]

    def test_per_epoch_response_counts(self, report):
        epochs = report["steady"]["epochs"]
        assert epochs, "no epoch-stamped responses recorded"
        assert sum(epochs.values()) >= 1
        assert all(count >= 1 for count in epochs.values())

    def test_config_echoed_in_report(self, report):
        assert report["config"]["update_rate"] == 150.0
        assert report["config"]["compact_threshold"] == 8

    def test_render_mentions_updates(self, report):
        text = render_summary(report)
        assert "updates" in text

    def test_static_bench_has_no_update_block(self):
        report = run_bench(_tiny_config())
        assert "update_stream" not in report["steady"]


class TestCli:
    def test_main_writes_run_record(self, tmp_path):
        bench_dir = tmp_path / "records"
        code = main(
            [
                "--requests", "20",
                "--seed", "0",
                "--rate", "2000",
                "--dim", "8",
                "--datasets", "Cora,Citeseer",
                "--scale", "0.1",
                "--max-wait-ms", "1.0",
                "--bench-dir", str(bench_dir),
            ]
        )
        assert code == 0
        records = list(bench_dir.glob("BENCH_serve.json"))
        assert len(records) == 1
        doc = json.loads(records[0].read_text())
        assert doc["schema"] == "repro.obs.runs/2"
        payload = doc["runs"][-1]
        assert payload["schema"] == "repro.obs.run/1"
        assert payload["status"] == "ok"
        serve = payload["serve"]
        assert serve["silent_failures"] == 0
        assert serve["overload"]["rejected"] >= 1

    def test_main_no_record(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "--requests", "5",
                "--rate", "2000",
                "--dim", "8",
                "--datasets", "Cora",
                "--scale", "0.1",
                "--no-record",
                "--no-verify",
            ]
        )
        assert code == 0
        assert not list(tmp_path.rglob("BENCH_serve.json"))
