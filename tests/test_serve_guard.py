"""Unit tests for the failure-domain guards (breakers, supervision)."""

import threading
import time

import pytest

from repro.serve.guard import (
    BreakerConfig,
    CircuitBreaker,
    WorkerSupervisor,
)


class _Clock:
    """Manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(clock, **kwargs) -> CircuitBreaker:
    defaults = dict(
        consecutive_failures=3,
        failure_rate=0.5,
        window=8,
        min_samples=4,
        cooldown_seconds=10.0,
        half_open_probes=2,
        half_open_successes=1,
    )
    defaults.update(kwargs)
    return CircuitBreaker("b", BreakerConfig(**defaults), clock=clock)


class TestBreakerConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"consecutive_failures": 0},
            {"failure_rate": 0.0},
            {"failure_rate": 1.5},
            {"window": 0},
            {"min_samples": 0},
            {"cooldown_seconds": 0.0},
            {"half_open_probes": 0},
            {"half_open_successes": 0},
            {"half_open_probes": 1, "half_open_successes": 2},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)


class TestCircuitBreaker:
    def test_starts_closed_and_admits(self):
        breaker = _breaker(_Clock())
        assert breaker.state == "closed"
        assert breaker.available()
        assert breaker.allow()

    def test_consecutive_failures_trip(self):
        breaker = _breaker(_Clock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.available()
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_consecutive_count(self):
        # min_samples high enough that the rate rule stays out of play.
        breaker = _breaker(_Clock(), min_samples=8)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"

    def test_failure_rate_trips_only_past_min_samples(self):
        # Alternating success/failure never hits 3 consecutive, but the
        # window rate reaches 50% once min_samples calls are recorded.
        breaker = _breaker(_Clock(), min_samples=6)
        for i in range(5):
            (breaker.record_failure if i % 2 else breaker.record_success)()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_cooldown_moves_open_to_half_open(self):
        clock = _Clock()
        breaker = _breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half-open"
        assert breaker.available()

    def test_half_open_admits_bounded_probes(self):
        clock = _Clock()
        breaker = _breaker(clock, half_open_probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # probe quota spent
        # available() never consumed a slot along the way.
        assert not breaker.available()

    def test_available_does_not_consume_probe_slots(self):
        clock = _Clock()
        breaker = _breaker(clock, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)
        for _ in range(5):
            assert breaker.available()
        assert breaker.allow()

    def test_probe_success_closes(self):
        clock = _Clock()
        breaker = _breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.closed_total == 1
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = _Clock()
        breaker = _breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened_total == 2
        clock.advance(9.0)
        assert breaker.state == "open"  # cooldown restarted at reopen
        clock.advance(1.1)
        assert breaker.state == "half-open"

    def test_straggler_success_while_open_is_ignored(self):
        breaker = _breaker(_Clock())
        for _ in range(3):
            breaker.record_failure()
        breaker.record_success()  # in-flight call from before the trip
        assert breaker.state == "open"

    def test_snapshot_shape(self):
        breaker = _breaker(_Clock())
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["name"] == "b"
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1
        assert snap["window_failures"] == 1
        assert snap["opened_total"] == 0


def _worker_factory(behaviour):
    """Spawn factory whose workers run ``behaviour(worker_id, supervisor)``."""
    box = {}

    def spawn(worker_id):
        def target():
            try:
                behaviour(worker_id, box["supervisor"])
            except Exception as exc:
                box["supervisor"].note_crash(worker_id, exc)
            else:
                box["supervisor"].note_exit(worker_id)

        return threading.Thread(target=target, daemon=True)

    return spawn, box


class TestWorkerSupervisor:
    def test_starts_requested_pool(self):
        release = threading.Event()

        def behaviour(worker_id, supervisor):
            release.wait(timeout=5.0)

        spawn, box = _worker_factory(behaviour)
        supervisor = WorkerSupervisor(spawn, n_workers=3)
        box["supervisor"] = supervisor
        supervisor.start()
        try:
            assert supervisor.alive_count() == 3
        finally:
            release.set()
            supervisor.join()
        assert supervisor.alive_count() == 0
        assert supervisor.restarts == 0

    def test_crash_respawns_within_budget(self):
        crashes_left = [2]
        release = threading.Event()

        def behaviour(worker_id, supervisor):
            if crashes_left[0] > 0:
                crashes_left[0] -= 1
                raise RuntimeError(f"worker {worker_id} boom")
            release.wait(timeout=5.0)

        spawn, box = _worker_factory(behaviour)
        supervisor = WorkerSupervisor(spawn, n_workers=1, restart_budget=5)
        box["supervisor"] = supervisor
        supervisor.start()
        try:
            deadline = time.monotonic() + 5.0
            while supervisor.restarts < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert supervisor.restarts == 2
            assert supervisor.alive_count() == 1
            assert len(supervisor.crashes) == 2
            assert not supervisor.exhausted
        finally:
            release.set()
            supervisor.join()

    def test_budget_exhaustion_fires_callback_once(self):
        fired = []

        def behaviour(worker_id, supervisor):
            raise RuntimeError("always crashes")

        spawn, box = _worker_factory(behaviour)
        supervisor = WorkerSupervisor(
            spawn, n_workers=1, restart_budget=2, on_exhausted=lambda: fired.append(1)
        )
        box["supervisor"] = supervisor
        supervisor.start()
        supervisor.join()
        assert supervisor.exhausted
        assert supervisor.restarts == 2
        assert len(supervisor.crashes) == 3  # initial + 2 respawns
        assert fired == [1]
        assert supervisor.alive_count() == 0

    def test_zero_budget_exhausts_on_first_crash(self):
        def behaviour(worker_id, supervisor):
            raise RuntimeError("boom")

        spawn, box = _worker_factory(behaviour)
        supervisor = WorkerSupervisor(spawn, n_workers=1, restart_budget=0)
        box["supervisor"] = supervisor
        supervisor.start()
        supervisor.join()
        assert supervisor.exhausted
        assert supervisor.restarts == 0

    def test_recent_crashes_windowing(self):
        clock = _Clock()

        def behaviour(worker_id, supervisor):
            raise RuntimeError("boom")

        spawn, box = _worker_factory(behaviour)
        supervisor = WorkerSupervisor(
            spawn, n_workers=1, restart_budget=0, clock=clock
        )
        box["supervisor"] = supervisor
        supervisor.start()
        supervisor.join()
        assert supervisor.recent_crashes(1.0) == 1
        clock.advance(5.0)
        assert supervisor.recent_crashes(1.0) == 0

    def test_validation(self):
        spawn, _ = _worker_factory(lambda *a: None)
        with pytest.raises(ValueError):
            WorkerSupervisor(spawn, n_workers=0)
        with pytest.raises(ValueError):
            WorkerSupervisor(spawn, n_workers=1, restart_budget=-1)

    def test_snapshot_shape(self):
        def behaviour(worker_id, supervisor):
            raise RuntimeError("boom")

        spawn, box = _worker_factory(behaviour)
        supervisor = WorkerSupervisor(spawn, n_workers=1, restart_budget=0)
        box["supervisor"] = supervisor
        supervisor.start()
        supervisor.join()
        snap = supervisor.snapshot()
        assert snap["exhausted"] is True
        assert snap["crashes"] == 1
        assert snap["last_crash"]["error"].startswith("RuntimeError")


class TestWindowedRestartBudget:
    """The sliding-window budget semantics (``restart_window``)."""

    def _idle_supervisor(self, clock, **kwargs):
        release = threading.Event()

        def behaviour(worker_id, supervisor):
            release.wait(timeout=10.0)

        spawn, box = _worker_factory(behaviour)
        supervisor = WorkerSupervisor(spawn, n_workers=1, clock=clock, **kwargs)
        box["supervisor"] = supervisor
        supervisor.start()
        return supervisor, release

    def test_budget_replenishes_as_crashes_age_out(self):
        clock = _Clock()
        supervisor, release = self._idle_supervisor(
            clock, restart_budget=2, restart_window=10.0
        )
        try:
            assert supervisor.note_crash(0, RuntimeError("a"))
            assert supervisor.note_crash(1, RuntimeError("b"))
            assert supervisor.restarts == 2
            # A burst now would exhaust; spread past the window it doesn't.
            clock.advance(11.0)
            assert supervisor.note_crash(2, RuntimeError("c"))
            assert supervisor.restarts == 3
            assert not supervisor.exhausted
            snap = supervisor.snapshot()
            assert snap["restart_window"] == 10.0
            assert snap["restarts_in_window"] == 1
        finally:
            release.set()
            supervisor.join()

    def test_burst_within_window_exhausts(self):
        clock = _Clock()
        fired = []
        supervisor, release = self._idle_supervisor(
            clock,
            restart_budget=2,
            restart_window=10.0,
            on_exhausted=lambda: fired.append(1),
        )
        try:
            assert supervisor.note_crash(0, RuntimeError("a"))
            clock.advance(1.0)
            assert supervisor.note_crash(1, RuntimeError("b"))
            clock.advance(1.0)
            assert not supervisor.note_crash(2, RuntimeError("c"))
            assert supervisor.exhausted
            assert fired == [1]
        finally:
            release.set()
            supervisor.join()

    def test_window_none_keeps_lifetime_total_semantics(self):
        clock = _Clock()
        supervisor, release = self._idle_supervisor(
            clock, restart_budget=2, restart_window=None
        )
        try:
            assert supervisor.note_crash(0, RuntimeError("a"))
            assert supervisor.note_crash(1, RuntimeError("b"))
            # No amount of elapsed time replenishes a lifetime budget.
            clock.advance(10_000.0)
            assert not supervisor.note_crash(2, RuntimeError("c"))
            assert supervisor.exhausted
            assert supervisor.snapshot()["restarts_in_window"] is None
        finally:
            release.set()
            supervisor.join()

    def test_window_validation(self):
        spawn, _ = _worker_factory(lambda *a: None)
        with pytest.raises(ValueError):
            WorkerSupervisor(spawn, n_workers=1, restart_window=0.0)
        with pytest.raises(ValueError):
            WorkerSupervisor(spawn, n_workers=1, restart_window=-5.0)
