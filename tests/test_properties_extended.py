"""Additional hypothesis property tests: formats, baselines, reorderings."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import NeighborGroupSchedule, RowSplitSchedule
from repro.formats import COOMatrix, CSRMatrix, ELLMatrix
from repro.graphs.reorder import permute_rows_and_columns


@st.composite
def csr_matrices(draw, max_rows=20, max_cols=14, max_row_nnz=10):
    n_rows = draw(st.integers(1, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    lengths = draw(
        st.lists(st.integers(0, max_row_nnz), min_size=n_rows, max_size=n_rows)
    )
    row_pointers = np.concatenate(([0], np.cumsum(lengths)))
    nnz = int(row_pointers[-1])
    cols = draw(st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz))
    values = draw(
        st.lists(
            st.floats(-5, 5, allow_nan=False, allow_infinity=False),
            min_size=nnz, max_size=nnz,
        )
    )
    return CSRMatrix(
        n_rows=n_rows, n_cols=n_cols, row_pointers=row_pointers,
        column_indices=np.array(cols, dtype=np.int64),
        values=np.array(values),
    )


@st.composite
def square_csr(draw, max_n=16, max_row_nnz=8):
    n = draw(st.integers(1, max_n))
    lengths = draw(st.lists(st.integers(0, max_row_nnz), min_size=n, max_size=n))
    row_pointers = np.concatenate(([0], np.cumsum(lengths)))
    nnz = int(row_pointers[-1])
    cols = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    return CSRMatrix.from_arrays(row_pointers, np.array(cols, dtype=np.int64))


@given(matrix=csr_matrices())
@settings(max_examples=60, deadline=None)
def test_ell_round_trip(matrix):
    """ELL <-> CSR preserves the dense matrix for any structure."""
    ell = ELLMatrix.from_csr(matrix)
    assert np.allclose(ell.to_csr().to_dense(), matrix.to_dense())
    assert ell.nnz == matrix.nnz


@given(matrix=csr_matrices())
@settings(max_examples=40, deadline=None)
def test_ell_spmm_matches_csr(matrix):
    x = np.random.default_rng(0).random((matrix.n_cols, 3))
    ell = ELLMatrix.from_csr(matrix)
    assert np.allclose(ell.multiply_dense(x), matrix.multiply_dense(x))


@given(matrix=csr_matrices())
@settings(max_examples=60, deadline=None)
def test_coo_deduplicate_preserves_dense(matrix):
    coo = matrix.to_coo()
    deduped = coo.deduplicate()
    assert np.allclose(deduped.to_dense(), coo.to_dense())
    # After dedup all coordinates are unique.
    keys = deduped.rows * deduped.n_cols + deduped.cols
    assert len(np.unique(keys)) == len(keys)


@given(matrix=csr_matrices(), group_size=st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_neighbor_groups_tile_rows(matrix, group_size):
    """Every group is within one row; groups tile all non-zeros."""
    schedule = NeighborGroupSchedule.build(matrix, group_size)
    assert schedule.group_lengths.sum() == matrix.nnz
    assert (schedule.group_lengths >= 1).all() or schedule.n_groups == 0
    assert (schedule.group_lengths <= group_size).all()
    rp = matrix.row_pointers
    rows = schedule.group_rows
    assert (schedule.group_starts >= rp[rows]).all()
    assert (schedule.group_ends <= rp[rows + 1]).all()


@given(matrix=csr_matrices(), n_threads=st.integers(1, 30))
@settings(max_examples=60, deadline=None)
def test_row_split_covers_rows(matrix, n_threads):
    schedule = RowSplitSchedule.build(matrix, n_threads)
    assert schedule.per_thread_rows.sum() == matrix.n_rows
    assert schedule.per_thread_nnz.sum() == matrix.nnz


@given(matrix=square_csr(), seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_permutation_involution(matrix, seed):
    """Applying a permutation then its inverse restores the matrix."""
    rng = np.random.default_rng(seed)
    order = np.arange(matrix.n_rows)
    rng.shuffle(order)
    permuted = permute_rows_and_columns(matrix, order)
    inverse = np.empty_like(order)
    inverse[order] = np.arange(len(order))
    # permuted[new] corresponds to original[order[new]]; applying the
    # permutation that places `inverse` restores the original labels.
    restored = permute_rows_and_columns(permuted, inverse)
    assert np.allclose(restored.to_dense(), matrix.to_dense())


@given(matrix=square_csr())
@settings(max_examples=40, deadline=None)
def test_spmv_equals_column_sum_identity(matrix):
    """A @ ones = row sums, for any structure (SpMV sanity)."""
    from repro.core import merge_path_spmm

    ones = np.ones((matrix.n_cols, 1))
    result = merge_path_spmm(matrix, ones, n_threads=3)
    row_sums = np.array(
        [matrix.values[matrix.row_pointers[r]: matrix.row_pointers[r + 1]].sum()
         for r in range(matrix.n_rows)]
    )
    assert np.allclose(result.output[:, 0], row_sums)
