"""Tests for sparse feature-matrix support in GCN layers."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.gnn import GCNLayer
from repro.graphs import Graph


@pytest.fixture
def setup(rng):
    dense_adj = (rng.random((25, 25)) < 0.2) * 1.0
    graph = Graph(name="g", adjacency=CSRMatrix.from_dense(dense_adj))
    dense_features = (rng.random((25, 6)) < 0.4) * rng.random((25, 6))
    return graph.normalized_adjacency(), dense_features


class TestSparseFeatures:
    def test_sparse_matches_dense_features(self, setup):
        adjacency, dense_features = setup
        layer = GCNLayer.random(6, 4, seed=1, backend="mergepath")
        from_dense = layer.forward(adjacency, dense_features)
        from_sparse = layer.forward(
            adjacency, CSRMatrix.from_dense(dense_features)
        )
        assert np.allclose(from_dense, from_sparse)

    def test_sparse_width_check(self, setup):
        adjacency, _ = setup
        layer = GCNLayer.random(6, 4)
        wrong = CSRMatrix.from_dense(np.ones((25, 5)))
        with pytest.raises(ValueError, match="feature width"):
            layer.forward(adjacency, wrong)

    def test_all_zero_sparse_features(self, setup):
        adjacency, _ = setup
        layer = GCNLayer.random(6, 4, activation="none")
        empty = CSRMatrix.from_arrays(
            np.zeros(26, dtype=np.int64), [], n_cols=6
        )
        out = layer.forward(adjacency, empty)
        assert np.all(out == 0.0)
