"""Tests for RCU epoch management (``repro.serve.epoch``).

The acceptance criterion under test: after a graph update, caches keep
entries for *live* epochs (including an older epoch pinned by an
in-flight lease and the shared repair base) and drop entries for exactly
the retired epochs — never a global flush.
"""

import numpy as np
import pytest

from repro.core import ScheduleCache
from repro.engine import Autotuner, Candidate, EnginePlanCache
from repro.graphs import power_law_graph
from repro.graphs.delta import DeltaCSR, EdgeUpdate, UpdatePlanner
from repro.serve import (
    AdaptiveDispatcher,
    Backend,
    GraphEpochManager,
    InferenceService,
    PlanCache,
    ServeConfig,
)

DIM = 8


@pytest.fixture
def base():
    return power_law_graph(n_nodes=60, nnz=360, max_degree=16, seed=0)


@pytest.fixture
def bystander():
    return power_law_graph(n_nodes=50, nnz=250, max_degree=12, seed=9)


def _planner_batches(base, seed=0):
    planner = UpdatePlanner(base)
    rng = np.random.default_rng(seed)
    while True:
        yield planner.batch(rng, size=1)


def _fake_tuner():
    cands = (Candidate(name="only", run=lambda m, d: m.multiply_dense(d)),)
    return Autotuner(candidates=cands, measure=lambda thunk: (thunk(), 1.0)[1])


class TestEpochLease:
    def test_lease_pins_admitted_epoch(self, base):
        manager = GraphEpochManager(base)
        lease = manager.acquire()
        pinned = lease.snapshot.fingerprint
        manager.apply_updates(next(_planner_batches(base)))
        assert manager.current_epoch == 1
        assert lease.epoch == 0
        assert lease.matrix.fingerprint() == pinned
        lease.release()

    def test_release_is_idempotent(self, base):
        manager = GraphEpochManager(base)
        lease = manager.acquire()
        manager.apply_updates(next(_planner_batches(base)))
        lease.release()
        lease.release()
        stats = manager.stats()
        assert stats["leases"] == 0
        assert stats["retired_epochs"] == 1

    def test_context_manager_releases(self, base):
        manager = GraphEpochManager(base)
        with manager.acquire() as lease:
            assert lease.epoch == 0
        assert manager.stats()["leases"] == 0


class TestPreciseInvalidation:
    """Step-by-step lifecycle of one live graph across three caches."""

    def _build_all(self, caches, matrix):
        schedules, plans, engine, tuner = caches
        schedules.get(matrix, cost=256)
        plans.get(matrix, dim=DIM)
        engine.get(matrix, dim=DIM)
        tuner.tune(matrix, DIM)

    def test_caches_drop_exactly_retired_epochs(self, base, bystander):
        schedules = ScheduleCache(max_entries=32)
        plans = PlanCache(capacity=32)
        engine = EnginePlanCache(capacity=32)
        tuner = _fake_tuner()
        caches = (schedules, plans, engine, tuner)
        manager = GraphEpochManager(
            DeltaCSR(base, compact_threshold=3), caches=caches
        )
        batches = _planner_batches(base)
        fp_bystander = bystander.fingerprint()
        self._build_all(caches, bystander)

        snap0 = manager.current_snapshot()
        fp0 = snap0.fingerprint
        self._build_all(caches, snap0.matrix)

        # Hold a lease on epoch 0 across an update: nothing may drop.
        lease = manager.acquire()
        snap1 = manager.apply_updates(next(batches))
        fp1 = snap1.fingerprint
        self._build_all(caches, snap1.matrix)
        assert fp0 in plans.fingerprints()
        assert {d.fingerprint for d in tuner.decisions} >= {fp0, fp1}

        # Released: epoch 0 retires, but fp0 is epoch 1's repair base —
        # it must survive until its last sharer goes.
        lease.release()
        assert manager.stats()["retired_epochs"] == 1
        assert fp0 in plans.fingerprints()

        # Two more batches reach the compaction threshold: the delta
        # rebases, epochs 1 and 2 retire, and the shared base finally
        # has no live sharer.  Exactly fp0/fp1/fp2 drop.
        snap2 = manager.apply_updates(next(batches))
        fp2 = snap2.fingerprint
        snap3 = manager.apply_updates(next(batches))
        assert snap3.compacted
        retired_fps = {fp0, fp1, fp2}
        assert plans.fingerprints() & retired_fps == set()
        assert fp_bystander in plans.fingerprints()
        assert {d.fingerprint for d in tuner.decisions} & retired_fps == set()
        assert fp_bystander in {d.fingerprint for d in tuner.decisions}
        # ScheduleCache/EnginePlanCache held one entry per epoch plus the
        # bystander; only the bystander's survives retirement.
        assert schedules.entries == 1
        assert len(engine) == 1
        assert schedules.schedule_computations == 3  # nothing recomputed yet
        # Plans existed for fp0 and fp1 only (epoch 2 was never compiled),
        # so exactly two invalidations are counted.
        assert plans.stats().invalidations == 2

        # The bystander still hits: precise invalidation, not a flush.
        before = schedules.schedule_computations
        schedules.get(bystander, cost=256)
        assert schedules.schedule_computations == before
        hits_before = plans.stats().hits
        plans.get(bystander, dim=DIM)
        assert plans.stats().hits == hits_before + 1

    def test_repair_serves_dirty_epoch_miss(self, base):
        plans = PlanCache(capacity=32)
        manager = GraphEpochManager(
            DeltaCSR(base, compact_threshold=64), caches=(plans,)
        )
        snap0 = manager.current_snapshot()
        plans.get(snap0.matrix, dim=DIM)
        snap1 = manager.apply_updates(next(_planner_batches(base)))
        plan = plans.get(snap1.matrix, dim=DIM)
        stats = plans.stats()
        assert stats.repairs == 1
        assert stats.repaired_rows >= 1
        dense = np.random.default_rng(0).standard_normal((base.n_cols, DIM))
        np.testing.assert_allclose(
            plan.execute(dense), snap1.matrix.multiply_dense(dense), atol=1e-9
        )


class TestRegisterCache:
    def test_rejects_objects_without_hooks(self, base):
        manager = GraphEpochManager(base)
        with pytest.raises(TypeError, match="exposes none"):
            manager.register_cache(object())


class TestStats:
    def test_epoch_lag_counts_pinned_epochs(self, base):
        manager = GraphEpochManager(base)
        batches = _planner_batches(base)
        lease = manager.acquire()
        manager.apply_updates(next(batches))
        manager.apply_updates(next(batches))
        stats = manager.stats()
        assert stats["epoch_lag"] == 2
        assert stats["live_epochs"] == 2
        assert stats["leases"] == 1
        assert stats["oldest_live_epoch"] == 0
        lease.release()
        assert manager.stats()["epoch_lag"] == 0

    def test_compaction_backlog_tracks_log(self, base):
        manager = GraphEpochManager(
            DeltaCSR(base, compact_threshold=10)
        )
        batches = _planner_batches(base)
        for _ in range(4):
            manager.apply_updates(next(batches))
        stats = manager.stats()
        assert stats["log_size"] == 4
        assert stats["compaction_backlog"] == pytest.approx(0.4)
        assert stats["compactions"] == 0


class TestServiceIntegration:
    def _service(self, manager, plans):
        def run(matrix, dense, plans_, plan_dim):
            return plans_.get(matrix, dim=plan_dim).execute(dense)

        dispatcher = AdaptiveDispatcher(
            [Backend("planned", run)], plan_cache=plans, epsilon=0.0
        )
        config = ServeConfig(
            max_queue=32, max_batch=2, max_wait_ms=1.0, n_workers=1
        )
        return InferenceService(dispatcher, config, epoch_manager=manager)

    def test_responses_are_epoch_stamped_and_correct(self, base):
        plans = PlanCache(capacity=16)
        manager = GraphEpochManager(
            DeltaCSR(base, compact_threshold=64), caches=(plans,)
        )
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((base.n_cols, DIM))
        with self._service(manager, plans) as service:
            first = service.infer(None, dense)
            assert first.ok and first.epoch == 0
            np.testing.assert_allclose(
                first.output,
                manager.current_snapshot().matrix.multiply_dense(dense),
                atol=1e-9,
            )
            snapshot = service.apply_updates(
                next(_planner_batches(base, seed=5))
            )
            second = service.infer(None, dense)
            assert second.ok and second.epoch == snapshot.epoch == 1
            np.testing.assert_allclose(
                second.output,
                snapshot.matrix.multiply_dense(dense),
                atol=1e-9,
            )
        assert manager.stats()["leases"] == 0

    def test_submit_without_manager_rejects_live_requests(self, base):
        plans = PlanCache(capacity=4)

        def run(matrix, dense, plans_, plan_dim):
            return plans_.get(matrix, dim=plan_dim).execute(dense)

        dispatcher = AdaptiveDispatcher(
            [Backend("planned", run)], plan_cache=plans, epsilon=0.0
        )
        with InferenceService(dispatcher, ServeConfig(n_workers=1)) as service:
            rng = np.random.default_rng(0)
            with pytest.raises(ValueError, match="epoch_manager"):
                service.infer(None, rng.standard_normal((base.n_cols, DIM)))

    def test_health_reports_epoch_lag_and_backlog(self, base):
        plans = PlanCache(capacity=16)
        manager = GraphEpochManager(
            DeltaCSR(base, compact_threshold=10), caches=(plans,)
        )
        batches = _planner_batches(base, seed=11)
        with self._service(manager, plans) as service:
            assert service.health().status == "healthy"
            lease = manager.acquire()
            for _ in range(5):
                service.apply_updates(next(batches))
            report = service.health()
            assert report.status == "degraded"
            assert "epoch-lag-high" in {c.kind for c in report.causes}
            lease.release()
            for _ in range(4):
                service.apply_updates(next(batches))
            report = service.health()
            assert "compaction-backlog" in {c.kind for c in report.causes}
