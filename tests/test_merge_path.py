"""Unit tests for the merge-path decomposition (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import merge_path_length, merge_path_search, merge_path_splits
from repro.core.merge_path import thread_diagonals
from repro.formats import CSRMatrix


class TestMergePathLength:
    def test_rows_plus_nnz(self, paper_example):
        assert merge_path_length(paper_example) == 26

    def test_empty_matrix(self):
        empty = CSRMatrix.from_arrays([0, 0], [])
        assert merge_path_length(empty) == 1


class TestScalarSearch:
    def test_paper_thread2_start(self, paper_example):
        coord = merge_path_search(paper_example, 7)
        assert (coord.row, coord.nnz) == (1, 6)

    def test_paper_thread2_end(self, paper_example):
        coord = merge_path_search(paper_example, 14)
        assert (coord.row, coord.nnz) == (3, 11)

    def test_origin(self, paper_example):
        coord = merge_path_search(paper_example, 0)
        assert (coord.row, coord.nnz) == (0, 0)

    def test_terminus(self, paper_example):
        coord = merge_path_search(paper_example, 26)
        assert (coord.row, coord.nnz) == (10, 16)

    def test_diagonal_invariant(self, paper_example):
        for diag in range(27):
            coord = merge_path_search(paper_example, diag)
            assert coord.diagonal == diag

    def test_row_prefix_consumed_before_nnz(self, paper_example):
        # At any split, all non-zeros of fully-consumed rows lie behind it.
        rp = paper_example.row_pointers
        for diag in range(27):
            coord = merge_path_search(paper_example, diag)
            assert rp[coord.row] <= coord.nnz
            if coord.row < paper_example.n_rows:
                # Row `row`'s end marker has not been consumed yet.
                assert rp[coord.row + 1] + coord.row + 1 > diag

    def test_out_of_range_diagonal(self, paper_example):
        with pytest.raises(ValueError):
            merge_path_search(paper_example, -1)
        with pytest.raises(ValueError):
            merge_path_search(paper_example, 27)


class TestVectorizedSearch:
    def test_matches_scalar_on_paper_example(self, paper_example):
        diagonals = np.arange(27)
        coords = merge_path_splits(paper_example, diagonals)
        for diag in diagonals:
            scalar = merge_path_search(paper_example, int(diag))
            assert (scalar.row, scalar.nnz) == tuple(coords[diag])

    def test_matches_scalar_on_random_matrices(self, rng):
        for _ in range(10):
            n = int(rng.integers(1, 30))
            dense = (rng.random((n, n)) < 0.3) * 1.0
            matrix = CSRMatrix.from_dense(dense)
            diagonals = np.arange(merge_path_length(matrix) + 1)
            coords = merge_path_splits(matrix, diagonals)
            for diag in diagonals:
                scalar = merge_path_search(matrix, int(diag))
                assert (scalar.row, scalar.nnz) == tuple(coords[diag])

    def test_rejects_out_of_range(self, paper_example):
        with pytest.raises(ValueError):
            merge_path_splits(paper_example, np.array([40]))

    def test_empty_input(self, paper_example):
        coords = merge_path_splits(paper_example, np.array([], dtype=int))
        assert coords.shape == (0, 2)


class TestThreadDiagonals:
    def test_paper_example_boundaries(self, paper_example):
        diagonals = thread_diagonals(paper_example, 4)
        assert list(diagonals) == [0, 7, 14, 21, 26]

    def test_covers_whole_path(self, paper_example):
        for n_threads in (1, 2, 5, 26, 100):
            diagonals = thread_diagonals(paper_example, n_threads)
            assert diagonals[0] == 0
            assert diagonals[-1] == 26
            assert (np.diff(diagonals) >= 0).all()

    def test_cost_bound(self, paper_example):
        for n_threads in (1, 3, 4, 7):
            diagonals = thread_diagonals(paper_example, n_threads)
            cost = -(-26 // n_threads)
            assert np.diff(diagonals).max() <= cost

    def test_rejects_zero_threads(self, paper_example):
        with pytest.raises(ValueError):
            thread_diagonals(paper_example, 0)
