"""Unit tests for the pure health rules and the service health surface."""

import pytest

from repro.serve.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    HealthPolicy,
    evaluate_health,
)


def _snapshot(**overrides) -> dict:
    base = {
        "closed": False,
        "started": True,
        "queue_depth": 0,
        "max_queue": 64,
        "supervisor": {
            "n_workers": 2,
            "alive": 2,
            "restarts": 0,
            "restart_budget": 3,
            "crashes": 0,
            "exhausted": False,
            "recent_crashes": 0,
        },
        "breakers": {"vectorized": "closed", "gnnadvisor": "closed"},
        "deadline": {"misses": 0, "window": 0},
    }
    base.update(overrides)
    return base


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_saturation": 0.0},
            {"queue_saturation": 1.5},
            {"deadline_miss_rate": 0.0},
            {"min_miss_window": 0},
            {"crash_recent_seconds": -1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)


class TestEvaluateHealth:
    def test_clean_snapshot_is_healthy(self):
        report = evaluate_health(_snapshot())
        assert report.status == HEALTHY
        assert report.healthy
        assert report.causes == ()

    def test_closed_service_is_unhealthy(self):
        report = evaluate_health(_snapshot(closed=True))
        assert report.status == UNHEALTHY
        assert report.causes[0].kind == "service-closed"

    def test_not_started_is_unhealthy(self):
        report = evaluate_health(_snapshot(started=False))
        assert report.status == UNHEALTHY
        assert report.causes[0].kind == "service-not-started"

    def test_exhausted_pool_is_unhealthy(self):
        snap = _snapshot()
        snap["supervisor"].update(exhausted=True, crashes=4, alive=0)
        report = evaluate_health(snap)
        assert report.status == UNHEALTHY
        assert any(c.kind == "worker-pool-exhausted" for c in report.causes)

    def test_dead_pool_without_exhaustion_is_unhealthy(self):
        snap = _snapshot()
        snap["supervisor"].update(alive=0)
        report = evaluate_health(snap)
        assert report.status == UNHEALTHY
        assert any(c.kind == "no-live-workers" for c in report.causes)

    def test_recent_crash_degrades(self):
        snap = _snapshot()
        snap["supervisor"].update(crashes=1, restarts=1, recent_crashes=1)
        report = evaluate_health(snap)
        assert report.status == DEGRADED
        assert report.causes[0].kind == "worker-crash-recent"

    def test_one_open_breaker_degrades(self):
        report = evaluate_health(
            _snapshot(breakers={"vectorized": "open", "gnnadvisor": "closed"})
        )
        assert report.status == DEGRADED
        assert report.causes[0].kind == "breaker-open"

    def test_probing_breaker_degrades(self):
        report = evaluate_health(
            _snapshot(
                breakers={"vectorized": "half-open", "gnnadvisor": "closed"}
            )
        )
        assert report.status == DEGRADED
        assert report.causes[0].kind == "breaker-probing"

    def test_all_breakers_open_is_unhealthy(self):
        report = evaluate_health(
            _snapshot(breakers={"vectorized": "open", "gnnadvisor": "open"})
        )
        assert report.status == UNHEALTHY
        assert report.causes[0].kind == "all-breakers-open"

    def test_saturated_queue_degrades(self):
        report = evaluate_health(_snapshot(queue_depth=52, max_queue=64))
        assert report.status == DEGRADED
        assert report.causes[0].kind == "queue-saturated"

    def test_queue_below_threshold_is_healthy(self):
        report = evaluate_health(_snapshot(queue_depth=50, max_queue=64))
        assert report.status == HEALTHY

    def test_deadline_misses_degrade_past_min_window(self):
        policy = HealthPolicy(deadline_miss_rate=0.25, min_miss_window=8)
        report = evaluate_health(
            _snapshot(deadline={"misses": 3, "window": 10}), policy
        )
        assert report.status == DEGRADED
        assert report.causes[0].kind == "deadline-misses"
        # Same rate but too few samples: not judged yet.
        report = evaluate_health(
            _snapshot(deadline={"misses": 2, "window": 6}), policy
        )
        assert report.status == HEALTHY

    def test_unhealthy_dominates_degraded(self):
        snap = _snapshot(closed=True, queue_depth=64)
        report = evaluate_health(snap)
        assert report.status == UNHEALTHY
        kinds = {c.kind for c in report.causes}
        assert "service-closed" in kinds
        assert "queue-saturated" in kinds

    def test_missing_keys_mean_feature_not_in_play(self):
        report = evaluate_health({})
        assert report.status == HEALTHY

    def test_report_serialization_and_render(self):
        report = evaluate_health(_snapshot(closed=True))
        payload = report.to_dict()
        assert payload["status"] == UNHEALTHY
        assert payload["causes"][0]["kind"] == "service-closed"
        assert "service-closed" in report.render()
        assert evaluate_health(_snapshot()).render() == "health: healthy"


class TestServiceHealthSurface:
    def test_live_service_reports_healthy(self, small_power_law, rng):
        from tests.test_serve_service import _service

        with _service() as service:
            dense = rng.random((small_power_law.n_cols, 4))
            assert service.submit(small_power_law, dense).result(10.0).ok
            report = service.health()
            assert report.status == HEALTHY
            assert report.snapshot["supervisor"]["alive"] >= 1
            assert report.snapshot["breakers"]
        # After close the same surface reports unhealthy.
        report = service.health()
        assert report.status == UNHEALTHY
        assert any(c.kind == "service-closed" for c in report.causes)

    def test_unstarted_service_reports_unhealthy(self):
        from tests.test_serve_service import _service

        service = _service()
        report = service.health()
        assert report.status == UNHEALTHY
        assert any(c.kind == "service-not-started" for c in report.causes)
