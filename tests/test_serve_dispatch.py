"""Unit tests for adaptive backend dispatch (bandit + verified fallback)."""

import time

import numpy as np
import pytest

from repro.resilience import faults
from repro.serve.dispatch import (
    AdaptiveDispatcher,
    Backend,
    default_backends,
)
from repro.serve.plancache import PlanCache


def _correct_backend(name, delay=0.0):
    def run(matrix, dense, plans, plan_dim):
        if delay:
            time.sleep(delay)
        return matrix.multiply_dense(dense)

    return Backend(name, run)


def _crashing_backend(name):
    def run(matrix, dense, plans, plan_dim):
        raise RuntimeError("backend exploded")

    return Backend(name, run)


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate backend names"):
            AdaptiveDispatcher(
                [_correct_backend("a"), _correct_backend("a")],
                plan_cache=PlanCache(),
            )

    def test_epsilon_range(self):
        with pytest.raises(ValueError, match="epsilon"):
            AdaptiveDispatcher(plan_cache=PlanCache(), epsilon=1.5)

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError, match="at least one backend"):
            AdaptiveDispatcher([], plan_cache=PlanCache())

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            AdaptiveDispatcher(plan_cache=PlanCache(), max_entries=0)


class TestStateBounds:
    def test_arms_lru_bounded(self, small_power_law):
        # Regression: a long-running service seeing many distinct
        # workloads must not grow bandit state without bound.
        dispatcher = AdaptiveDispatcher(
            [_correct_backend("only")], plan_cache=PlanCache(), max_entries=4
        )
        for dim in range(1, 21):
            dispatcher.record(small_power_law, dim, "only", 0.01)
        assert len(dispatcher._arms) == 4

    def test_priors_lru_bounded(self, small_power_law):
        dispatcher = AdaptiveDispatcher(plan_cache=PlanCache(), max_entries=4)
        vectorized = dispatcher.backends[0]
        for dim in range(1, 21):
            dispatcher.modeled_microseconds(small_power_law, dim, vectorized)
        assert len(dispatcher._priors) == 4

    def test_eviction_only_drops_oldest_estimates(self, small_power_law):
        # The most recently touched arm survives eviction pressure.
        dispatcher = AdaptiveDispatcher(
            [_correct_backend("only")], plan_cache=PlanCache(), max_entries=2
        )
        dispatcher.record(small_power_law, 8, "only", 0.5)
        for dim in (16, 32, 64):
            dispatcher.record(small_power_law, dim, "only", 0.01)
            dispatcher.record(small_power_law, 8, "only", 0.5)
        assert (small_power_law.fingerprint(), 8, "only") in dispatcher._arms


class TestModeledPrior:
    def test_finite_for_modeled_kernel(self, small_power_law):
        dispatcher = AdaptiveDispatcher(plan_cache=PlanCache())
        vectorized = dispatcher.backends[0]
        prior = dispatcher.modeled_microseconds(small_power_law, 16, vectorized)
        assert np.isfinite(prior) and prior > 0

    def test_infinite_without_kernel(self, small_power_law):
        dispatcher = AdaptiveDispatcher(
            [_correct_backend("unmodeled")], plan_cache=PlanCache()
        )
        prior = dispatcher.modeled_microseconds(
            small_power_law, 16, dispatcher.backends[0]
        )
        assert prior == float("inf")

    def test_prior_ranks_before_any_measurement(self, small_power_law):
        dispatcher = AdaptiveDispatcher(plan_cache=PlanCache(), epsilon=0.0)
        best = dispatcher.best(small_power_law, 16)
        priors = [
            dispatcher.modeled_microseconds(small_power_law, 16, b)
            for b in dispatcher.backends
        ]
        assert best.name == dispatcher.backends[int(np.argmin(priors))].name


class TestRiggedLatencies:
    def test_best_tracks_rigged_table(self, small_power_law):
        """With a rigged measured-latency table the greedy arm is exact."""
        backends = [
            _correct_backend("slow"),
            _correct_backend("fastest"),
            _correct_backend("medium"),
        ]
        dispatcher = AdaptiveDispatcher(
            backends, plan_cache=PlanCache(), epsilon=0.0
        )
        rigged = {"slow": 0.5, "fastest": 0.001, "medium": 0.05}
        for name, seconds in rigged.items():
            dispatcher.record(small_power_law, 8, name, seconds)
        assert dispatcher.best(small_power_law, 8).name == "fastest"
        # The table is per (structure, dim): a different dim is unmeasured.
        rigged_32 = {"slow": 0.001, "fastest": 0.5, "medium": 0.05}
        for name, seconds in rigged_32.items():
            dispatcher.record(small_power_law, 32, name, seconds)
        assert dispatcher.best(small_power_law, 32).name == "slow"
        assert dispatcher.best(small_power_law, 8).name == "fastest"

    def test_epsilon_greedy_converges_to_fastest(self, small_power_law, rng):
        """Exploration discovers, then exploitation locks onto, the fast arm."""
        backends = [
            _correct_backend("slow", delay=0.004),
            _correct_backend("fast", delay=0.0),
        ]
        dispatcher = AdaptiveDispatcher(
            backends, plan_cache=PlanCache(), epsilon=0.3, seed=7
        )
        dense = rng.random((small_power_law.n_cols, 8))
        for _ in range(40):
            result = dispatcher.execute(small_power_law, dense)
            assert np.allclose(
                result.output, small_power_law.multiply_dense(dense)
            )
        assert dispatcher.best(small_power_law, 8).name == "fast"
        # Exploitation now serves the fast arm.
        tail = [
            dispatcher.execute(small_power_law, dense) for _ in range(10)
        ]
        exploited = [r.backend for r in tail if not r.explored]
        assert exploited and all(name == "fast" for name in exploited)

    def test_ewma_prefers_recent_samples(self, small_power_law):
        dispatcher = AdaptiveDispatcher(
            [_correct_backend("only")], plan_cache=PlanCache(), ewma_alpha=0.5
        )
        dispatcher.record(small_power_law, 8, "only", 1.0)
        dispatcher.record(small_power_law, 8, "only", 0.0)
        # 1.0 then 0.0 at alpha=0.5 -> 0.5, not the mean-of-history 0.5...
        # a third fast sample keeps pulling the estimate down.
        dispatcher.record(small_power_law, 8, "only", 0.0)
        scores = dispatcher._scores(small_power_law, 8)
        assert scores[0] == pytest.approx(0.25)


class TestExploration:
    def test_epsilon_one_always_explores(self, small_power_law, rng):
        dispatcher = AdaptiveDispatcher(
            [_correct_backend("a"), _correct_backend("b")],
            plan_cache=PlanCache(),
            epsilon=1.0,
        )
        dense = rng.random((small_power_law.n_cols, 4))
        assert all(
            dispatcher.execute(small_power_law, dense).explored
            for _ in range(5)
        )

    def test_epsilon_zero_never_explores(self, small_power_law, rng):
        dispatcher = AdaptiveDispatcher(
            [_correct_backend("a"), _correct_backend("b")],
            plan_cache=PlanCache(),
            epsilon=0.0,
        )
        dense = rng.random((small_power_law.n_cols, 4))
        assert not any(
            dispatcher.execute(small_power_law, dense).explored
            for _ in range(5)
        )


class TestVerifiedFallback:
    def test_crashing_backend_degrades_to_verified(self, small_power_law, rng):
        dispatcher = AdaptiveDispatcher(
            [_crashing_backend("bad")], plan_cache=PlanCache(), epsilon=0.0
        )
        dense = rng.random((small_power_law.n_cols, 8))
        result = dispatcher.execute(small_power_law, dense)
        assert result.fallback_used
        assert "backend exploded" in result.detected
        assert np.allclose(
            result.output, small_power_law.multiply_dense(dense)
        )

    def test_fault_injection_still_returns_correct_result(
        self, small_power_law, rng
    ):
        """A FaultPlan corrupting the cached plan path must not escape.

        With ``verify=True`` the output oracle catches the bit flips and
        the dispatcher degrades to the verified fallback, so the caller
        still receives the correct product.
        """
        vectorized = default_backends()[0]
        dispatcher = AdaptiveDispatcher(
            [vectorized], plan_cache=PlanCache(), epsilon=0.0
        )
        dense = rng.random((small_power_law.n_cols, 8))
        reference = small_power_law.multiply_dense(dense)
        with faults.inject(bitflip=1.0) as plan:
            result = dispatcher.execute(small_power_law, dense, verify=True)
        assert plan.total_injected > 0
        assert result.fallback_used
        assert result.detected is not None
        assert np.allclose(result.output, reference)

    def test_fallback_latency_charged_to_arm(self, small_power_law, rng):
        dispatcher = AdaptiveDispatcher(
            [_crashing_backend("bad")], plan_cache=PlanCache(), epsilon=0.0
        )
        dense = rng.random((small_power_law.n_cols, 4))
        dispatcher.execute(small_power_law, dense)
        scores = dispatcher._scores(small_power_law, 4)
        assert np.isfinite(scores[0]) and scores[0] > 0


class TestStockBackends:
    def test_all_stock_backends_agree(self, small_power_law, rng):
        dense = rng.random((small_power_law.n_cols, 8))
        reference = small_power_law.multiply_dense(dense)
        plans = PlanCache()
        for backend in default_backends():
            output = backend.run(small_power_law, dense, plans, 8)
            assert np.allclose(output, reference), backend.name

    def test_plan_dim_keys_plan_not_batch_width(self, small_power_law, rng):
        """Batched widths reuse the plan keyed on the per-request dim."""
        plans = PlanCache()
        vectorized = default_backends()[0]
        single = rng.random((small_power_law.n_cols, 8))
        batched = rng.random((small_power_law.n_cols, 24))
        vectorized.run(small_power_law, single, plans, 8)
        vectorized.run(small_power_law, batched, plans, 8)
        stats = plans.stats()
        assert (stats.hits, stats.misses) == (1, 1)


class _FakeClock:
    def __init__(self):
        self.now = 50.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _switchable_backend(name):
    state = {"failing": True, "calls": 0}

    def run(matrix, dense, plans, plan_dim):
        state["calls"] += 1
        if state["failing"]:
            raise RuntimeError("persistent fault")
        return matrix.multiply_dense(dense)

    return Backend(name, run), state


class TestCircuitBreakers:
    def _dispatcher(self, backends, clock, **breaker_kwargs):
        from repro.serve.guard import BreakerConfig

        defaults = dict(
            consecutive_failures=2,
            cooldown_seconds=5.0,
            half_open_probes=1,
            half_open_successes=1,
        )
        defaults.update(breaker_kwargs)
        return AdaptiveDispatcher(
            backends,
            plan_cache=PlanCache(),
            epsilon=0.0,
            breaker_config=BreakerConfig(**defaults),
            breaker_clock=clock,
        )

    def test_persistent_failure_trips_breaker(self, small_power_law, rng):
        clock = _FakeClock()
        backend, state = _switchable_backend("flaky")
        dispatcher = self._dispatcher([backend], clock)
        dense = rng.random((small_power_law.n_cols, 4))
        reference = small_power_law.multiply_dense(dense)
        for _ in range(2):
            result = dispatcher.execute(small_power_law, dense)
            # Failures degrade to the verified fallback, never an error.
            assert result.fallback_used
            assert np.allclose(result.output, reference)
        assert dispatcher.breaker("flaky").state == "open"
        assert dispatcher.open_breakers() == ["flaky"]

    def test_open_breaker_serves_floor_without_calling_backend(
        self, small_power_law, rng
    ):
        from repro.serve.dispatch import FLOOR_BACKEND

        clock = _FakeClock()
        backend, state = _switchable_backend("flaky")
        dispatcher = self._dispatcher([backend], clock)
        dense = rng.random((small_power_law.n_cols, 4))
        for _ in range(2):
            dispatcher.execute(small_power_law, dense)
        calls_at_trip = state["calls"]
        result = dispatcher.execute(small_power_law, dense)
        assert result.backend == FLOOR_BACKEND
        assert result.fallback_used
        assert result.detected == "all circuit breakers open"
        assert state["calls"] == calls_at_trip
        assert np.allclose(
            result.output, small_power_law.multiply_dense(dense)
        )
        chosen, explored = dispatcher.choose(small_power_law, 4)
        assert chosen is None and explored is False

    def test_half_open_probe_closes_breaker(self, small_power_law, rng):
        clock = _FakeClock()
        backend, state = _switchable_backend("flaky")
        dispatcher = self._dispatcher([backend], clock)
        dense = rng.random((small_power_law.n_cols, 4))
        for _ in range(2):
            dispatcher.execute(small_power_law, dense)
        assert dispatcher.breaker("flaky").state == "open"
        state["failing"] = False
        clock.advance(5.1)
        result = dispatcher.execute(small_power_law, dense)
        assert result.backend == "flaky"
        assert not result.fallback_used
        assert dispatcher.breaker("flaky").state == "closed"

    def test_failed_probe_reopens_breaker(self, small_power_law, rng):
        clock = _FakeClock()
        backend, state = _switchable_backend("flaky")
        dispatcher = self._dispatcher([backend], clock)
        dense = rng.random((small_power_law.n_cols, 4))
        for _ in range(2):
            dispatcher.execute(small_power_law, dense)
        clock.advance(5.1)
        # Still failing: the probe runs (verified fallback serves the
        # request) and the breaker snaps back open.
        result = dispatcher.execute(small_power_law, dense)
        assert result.fallback_used
        assert dispatcher.breaker("flaky").state == "open"

    def test_tripped_backend_removed_from_arm_set(self, small_power_law, rng):
        clock = _FakeClock()
        flaky, state = _switchable_backend("flaky")
        good = _correct_backend("good")
        dispatcher = self._dispatcher([flaky, good], clock)
        dense = rng.random((small_power_law.n_cols, 4))
        # Force the flaky arm until its breaker trips.
        for _ in range(4):
            dispatcher.execute(small_power_law, dense)
            if dispatcher.breaker("flaky").state == "open":
                break
        assert dispatcher.breaker("flaky").state == "open"
        calls_at_trip = state["calls"]
        for _ in range(4):
            chosen, _ = dispatcher.choose(small_power_law, 4)
            assert chosen is not None and chosen.name == "good"
        result = dispatcher.execute(small_power_law, dense)
        assert result.backend == "good"
        assert state["calls"] == calls_at_trip

    def test_breaker_states_surface(self, small_power_law, rng):
        clock = _FakeClock()
        backend, _ = _switchable_backend("flaky")
        dispatcher = self._dispatcher([backend], clock)
        assert dispatcher.breaker_states() == {"flaky": "closed"}
        dense = rng.random((small_power_law.n_cols, 4))
        for _ in range(2):
            dispatcher.execute(small_power_law, dense)
        assert dispatcher.breaker_states() == {"flaky": "open"}
