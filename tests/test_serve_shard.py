"""Service-level tests for sharded isolation (``isolation="shard"``).

Covers the full serving surface of the shard tier: config validation,
correct responses with scatter/halo latency attribution, the health
report's per-shard snapshot and the pure-function shard health causes,
and epoch-managed live graphs re-partitioning across updates.
"""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.graphs.delta import DeltaCSR, UpdatePlanner
from repro.graphs.generators import power_law_graph
from repro.serve import GraphEpochManager, InferenceService, ServeConfig
from repro.serve.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    HealthPolicy,
    evaluate_health,
)
from repro.serve.procpool import ProcPoolConfig
from repro.shard import ShardConfig


def _matrix(seed: int = 0) -> CSRMatrix:
    return power_law_graph(n_nodes=60, nnz=360, max_degree=16, seed=seed)


def _proc_config(**overrides) -> ProcPoolConfig:
    settings = dict(
        heartbeat_interval=0.02,
        heartbeat_timeout=0.6,
        hang_timeout=5.0,
        restart_budget=8,
        restart_window=60.0,
    )
    settings.update(overrides)
    return ProcPoolConfig(**settings)


def _service(**kwargs) -> InferenceService:
    config = ServeConfig(
        max_queue=32,
        max_batch=2,
        max_wait_ms=1.0,
        n_workers=1,
        verify=True,
        request_timeout=10.0,
        isolation="shard",
        num_shards=kwargs.pop("num_shards", 2),
    )
    kwargs.setdefault("proc_config", _proc_config())
    return InferenceService(config=config, **kwargs)


class TestServeConfig:
    def test_shard_isolation_accepted(self):
        config = ServeConfig(isolation="shard", num_shards=3)
        assert config.num_shards == 3

    def test_invalid_num_shards_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            ServeConfig(isolation="shard", num_shards=0)

    def test_invalid_isolation_rejected(self):
        with pytest.raises(ValueError, match="isolation"):
            ServeConfig(isolation="cluster")


class TestShardedServing:
    def test_serves_and_attributes_all_stages(self):
        matrix = _matrix()
        dense = np.random.default_rng(0).random((matrix.n_cols, 4))
        with _service() as service:
            response = service.submit(matrix, dense).result(timeout=30.0)
            assert response.ok, response.error
            np.testing.assert_allclose(
                response.output,
                matrix.multiply_dense(dense),
                rtol=1e-9,
                atol=1e-9,
            )
            stages = response.attribution["stages"]
            for stage in ("scatter", "halo", "kernel", "ipc"):
                assert stage in stages, f"missing stage {stage!r}"

    def test_custom_shard_config_is_honoured(self):
        matrix = _matrix(seed=1)
        dense = np.ones((matrix.n_cols, 2))
        shard_config = ShardConfig(
            n_shards=3, strategy="edge-cut", worker_kernel="reference"
        )
        with _service(shard_config=shard_config) as service:
            response = service.submit(matrix, dense).result(timeout=30.0)
            assert response.ok, response.error
            shards = service.health().snapshot["shards"]
            assert shards["n_shards"] == 3
            assert shards["strategy"] == "edge-cut"

    def test_health_reports_shard_snapshot(self):
        matrix = _matrix(seed=2)
        dense = np.ones((matrix.n_cols, 2))
        with _service() as service:
            service.submit(matrix, dense).result(timeout=30.0)
            health = service.health()
            assert health.status == HEALTHY
            shards = health.snapshot["shards"]
            assert shards["isolation"] == "shard"
            assert shards["executed"] >= 1
            assert len(shards["shards"]) == 2
            assert (
                shards["zero_copy"]["per_request_graph_bytes_copied"]
                == 0
            )


class TestEpochManagedSharding:
    def test_updates_re_partition_and_stay_correct(self):
        base = _matrix(seed=3)
        manager = GraphEpochManager(DeltaCSR(base, compact_threshold=64))
        rng = np.random.default_rng(3)
        dense = rng.random((base.n_cols, 4))
        planner = UpdatePlanner(base)
        with _service(epoch_manager=manager) as service:
            router = service._proc_pool
            first = service.submit(None, dense).result(timeout=30.0)
            assert first.ok, first.error
            assert first.epoch == 0
            service.apply_updates(planner.batch(rng, size=1))
            second = service.submit(None, dense).result(timeout=30.0)
            assert second.ok, second.error
            assert second.epoch == 1
            current = manager.current_snapshot().matrix
            np.testing.assert_allclose(
                second.output,
                current.multiply_dense(dense),
                rtol=1e-9,
                atol=1e-9,
            )
            # Each epoch got its own partition plan.
            assert router.snapshot()["partitions_cached"] == 2


def _shard_snapshot(**overrides) -> dict:
    """A healthy sharded-service snapshot for evaluate_health tests."""
    snapshot = {
        "started": True,
        "closed": False,
        "queue_depth": 0,
        "max_queue": 32,
        "shards": {
            "isolation": "shard",
            "n_shards": 2,
            "executed": 5,
            "replays": 0,
            "replays_recent": 0,
            "partition": {"balance": 1.1},
            "supervisor": {
                "exhausted": False,
                "exhausted_shards": [],
                "restart_budget": 8,
            },
            "quarantine": {"active": 0},
            "memory": {"total_rss_bytes": 0, "pressure": False},
            "shards": [
                {
                    "shard_id": 0,
                    "supervisor": {
                        "exhausted": False,
                        "recent_crashes": 0,
                    },
                },
                {
                    "shard_id": 1,
                    "supervisor": {
                        "exhausted": False,
                        "recent_crashes": 0,
                    },
                },
            ],
        },
    }
    shards = snapshot["shards"]
    for key, value in overrides.items():
        if isinstance(value, dict) and isinstance(shards.get(key), dict):
            shards[key].update(value)
        else:
            shards[key] = value
    return snapshot


class TestShardHealthCauses:
    def test_healthy_sharded_snapshot(self):
        report = evaluate_health(_shard_snapshot())
        assert report.status == HEALTHY
        assert report.causes == ()

    def test_exhausted_shard_is_unhealthy(self):
        report = evaluate_health(
            _shard_snapshot(
                supervisor={
                    "exhausted": True,
                    "exhausted_shards": [1],
                    "restart_budget": 8,
                }
            )
        )
        assert report.status == UNHEALTHY
        causes = {cause.kind for cause in report.causes}
        assert "shard-pool-exhausted" in causes

    def test_recent_shard_crash_degrades(self):
        snapshot = _shard_snapshot()
        snapshot["shards"]["shards"][0]["supervisor"][
            "recent_crashes"
        ] = 2
        report = evaluate_health(snapshot)
        assert report.status == DEGRADED
        causes = {cause.kind for cause in report.causes}
        assert "shard-worker-crash-recent" in causes

    def test_high_replays_degrade(self):
        report = evaluate_health(_shard_snapshot(replays_recent=3))
        assert report.status == DEGRADED
        causes = {cause.kind for cause in report.causes}
        assert "shard-replays-high" in causes

    def test_imbalance_degrades_at_policy_threshold(self):
        report = evaluate_health(
            _shard_snapshot(partition={"balance": 2.5})
        )
        assert report.status == DEGRADED
        causes = {cause.kind for cause in report.causes}
        assert "shard-imbalance-high" in causes
        relaxed = evaluate_health(
            _shard_snapshot(partition={"balance": 2.5}),
            HealthPolicy(shard_imbalance_degraded=3.0),
        )
        assert relaxed.status == HEALTHY

    def test_policy_threshold_validation(self):
        with pytest.raises(ValueError, match="shard_imbalance"):
            HealthPolicy(shard_imbalance_degraded=1.0)
        with pytest.raises(ValueError, match="shard_replays"):
            HealthPolicy(shard_replays_degraded=0)
