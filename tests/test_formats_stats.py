"""Unit tests for row statistics and degree analysis helpers."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, row_statistics
from repro.formats.stats import degree_histogram, evil_rows, gini_coefficient


class TestRowStatistics:
    def test_basic_counts(self, paper_example):
        stats = row_statistics(paper_example)
        assert stats.n_rows == 10
        assert stats.nnz == 16
        assert stats.avg_degree == pytest.approx(1.6)
        assert stats.max_degree == 8

    def test_empty_rows_counted(self, paper_example):
        assert row_statistics(paper_example).empty_rows == 3

    def test_imbalance_factor(self, paper_example):
        stats = row_statistics(paper_example)
        assert stats.imbalance_factor == pytest.approx(8 / 1.6)

    def test_zero_rows_matrix(self):
        empty = CSRMatrix.from_arrays([0], [], n_cols=0)
        stats = row_statistics(empty)
        assert stats.n_rows == 0 and stats.nnz == 0

    def test_uniform_matrix_low_gini(self):
        eye = CSRMatrix.identity(50)
        assert row_statistics(eye).gini == pytest.approx(0.0, abs=1e-9)

    def test_power_law_higher_gini_than_structured(
        self, small_power_law, small_structured
    ):
        assert (
            row_statistics(small_power_law).gini
            > row_statistics(small_structured).gini + 0.2
        )


class TestGini:
    def test_all_equal_is_zero(self):
        assert gini_coefficient(np.full(10, 7)) == pytest.approx(0.0, abs=1e-12)

    def test_single_holder_near_one(self):
        lengths = np.zeros(1000)
        lengths[0] = 1000
        assert gini_coefficient(lengths) > 0.99

    def test_empty_and_zero_total(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_bounded(self, small_power_law):
        g = gini_coefficient(small_power_law.row_lengths)
        assert 0.0 <= g <= 1.0


class TestEvilRows:
    def test_detects_evil_row(self, paper_example):
        evil = evil_rows(paper_example, threshold_multiple=3.0)
        assert 1 in evil  # row 1 holds 8 of 16 non-zeros

    def test_no_evil_rows_in_identity(self):
        assert len(evil_rows(CSRMatrix.identity(10))) == 0

    def test_empty_matrix(self):
        empty = CSRMatrix.from_arrays([0, 0, 0], [])
        assert len(evil_rows(empty)) == 0

    def test_threshold_monotonic(self, small_power_law):
        low = evil_rows(small_power_law, threshold_multiple=4.0)
        high = evil_rows(small_power_law, threshold_multiple=16.0)
        assert set(high).issubset(set(low))


class TestDegreeHistogram:
    def test_counts_sum_to_rows_with_that_degree(self, paper_example):
        degrees, counts = degree_histogram(paper_example)
        assert counts.sum() == paper_example.n_rows
        assert dict(zip(degrees, counts))[0] == 3  # three empty rows

    def test_histogram_reconstructs_nnz(self, small_power_law):
        degrees, counts = degree_histogram(small_power_law)
        assert (degrees * counts).sum() == small_power_law.nnz
