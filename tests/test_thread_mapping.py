"""Unit tests for the Section III-C SIMD thread-mapping policy."""

import pytest

from repro.core import (
    SIMD_LANES,
    default_merge_path_cost,
    determine_thread_count,
    map_threads_to_simd,
)
from repro.core.thread_mapping import DEFAULT_COST_BY_DIM
from repro.formats import CSRMatrix


class TestMapping:
    def test_dim_equals_lanes(self):
        m = map_threads_to_simd(32)
        assert m.threads_per_warp == 1
        assert m.warps_per_thread == 1
        assert m.lane_utilization == 1.0

    def test_dim_above_lanes_replicates(self):
        m = map_threads_to_simd(128)
        assert m.warps_per_thread == 4
        assert m.threads_per_warp == 1
        assert m.lane_utilization == 1.0

    def test_dim_above_lanes_non_multiple(self):
        m = map_threads_to_simd(48)
        assert m.warps_per_thread == 2
        assert m.lane_utilization == pytest.approx(48 / 64)

    def test_dim_below_lanes_packs(self):
        m = map_threads_to_simd(16)
        assert m.threads_per_warp == 2
        assert m.divergent_threads == 2

    def test_extreme_packing(self):
        m = map_threads_to_simd(2)
        assert m.threads_per_warp == 16

    def test_warps_for_threads_packed(self):
        m = map_threads_to_simd(16)
        assert m.warps_for_threads(1024) == 512
        assert m.warps_for_threads(1025) == 513

    def test_warps_for_threads_replicated(self):
        m = map_threads_to_simd(64)
        assert m.warps_for_threads(100) == 200

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            map_threads_to_simd(0)

    def test_rejects_bad_lanes(self):
        with pytest.raises(ValueError):
            map_threads_to_simd(4, simd_lanes=0)


class TestDefaultCost:
    def test_paper_table(self):
        assert DEFAULT_COST_BY_DIM == {
            2: 50, 4: 15, 8: 15, 16: 20, 32: 30, 64: 35, 128: 50
        }

    @pytest.mark.parametrize("dim,expected", [(16, 20), (128, 50), (2, 50)])
    def test_exact_lookup(self, dim, expected):
        assert default_merge_path_cost(dim) == expected

    def test_nearest_fallback(self):
        assert default_merge_path_cost(24) == default_merge_path_cost(32)
        assert default_merge_path_cost(3) == default_merge_path_cost(4)
        assert default_merge_path_cost(1000) == 50


class TestThreadCount:
    def test_basic_division(self, small_power_law):
        total = small_power_law.n_rows + small_power_law.nnz
        count = determine_thread_count(small_power_law, 10, min_threads=1)
        assert count == -(-total // 10)

    def test_small_graph_floor(self, paper_example):
        assert determine_thread_count(paper_example, 5, min_threads=1024) == 26

    def test_floor_applies_before_cap(self):
        big = CSRMatrix.from_arrays(
            [0] + list(range(1, 5001)), list(range(5000)), n_cols=5000
        )
        count = determine_thread_count(big, 1000, min_threads=1024)
        assert count == 1024  # 10001/1000 = 11 threads, raised to the floor

    def test_empty_matrix(self):
        empty = CSRMatrix.from_arrays([0], [], n_cols=0)
        assert determine_thread_count(empty, 10) == 1

    def test_rejects_bad_cost(self, paper_example):
        with pytest.raises(ValueError):
            determine_thread_count(paper_example, 0)
