"""Tests for the chaos matrix (`python -m repro chaos`).

The acceptance bar: with a fixed seed, every corruption class is rejected
by validation or caught by an oracle — zero silent wrong outputs — and
every degenerate graph is handled correctly by every executor.
"""

import json

import pytest

from repro.resilience.chaos import ChaosReport, main, run_chaos_matrix
from repro.resilience.corruption import CORRUPTIONS, DEGENERATES


@pytest.fixture(scope="module")
def report() -> ChaosReport:
    return run_chaos_matrix(seed=0)


class TestChaosMatrix:
    def test_full_detection_coverage(self, report):
        assert report.coverage == 1.0
        assert report.passed
        assert report.silent == []

    def test_every_corruption_class_covered(self, report):
        names = {c.name for c in report.cases if c.kind == "corruption"}
        assert names == set(CORRUPTIONS)

    def test_every_degenerate_graph_covered(self, report):
        cases = {
            c.name: c for c in report.cases if c.kind == "degenerate"
        }
        assert set(cases) == set(DEGENERATES)
        assert all(c.outcome == "ok" for c in cases.values())

    def test_both_executors_and_both_simulators_faulted(self, report):
        names = {c.name for c in report.cases if c.kind == "execution"}
        for fault in ("dropped-atomic", "bitflip", "failing-unit"):
            assert f"{fault}/vectorized" in names
            assert f"{fault}/reference" in names
        assert "halted-warp/gpu-timing" in names
        assert "halted-core/multicore" in names

    def test_deterministic_for_fixed_seed(self, report):
        again = run_chaos_matrix(seed=0)
        assert [c.to_dict() for c in again.cases] == [
            c.to_dict() for c in report.cases
        ]

    def test_report_serializes(self, report):
        data = report.to_dict()
        assert data["coverage"] == 1.0
        assert data["n_cases"] == len(report.cases)
        json.dumps(data)  # JSON-safe
        rendered = report.render()
        assert "detection coverage: 100%" in rendered


class TestChaosCli:
    def test_exit_zero_and_record(self, tmp_path, capsys):
        json_out = tmp_path / "chaos.json"
        code = main(
            [
                "--seed", "0",
                "--bench-dir", str(tmp_path),
                "--json-out", str(json_out),
            ]
        )
        assert code == 0
        record = json.loads(
            (tmp_path / "BENCH_chaos.json").read_text()
        )["runs"][-1]
        assert record["status"] == "ok"
        assert record["chaos"]["coverage"] == 1.0
        side = json.loads(json_out.read_text())
        assert side["passed"] is True
        assert "100%" in capsys.readouterr().out

    def test_no_record_flag(self, tmp_path):
        code = main(["--no-record", "--bench-dir", str(tmp_path)])
        assert code == 0
        assert not (tmp_path / "BENCH_chaos.json").exists()
