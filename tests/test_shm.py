"""Property tests for shared-memory CSR segments (publish/attach/verify).

The process-isolation tier stands on two invariants of :mod:`repro.shm`:
a published segment attaches *byte-identical* with zero graph bytes
copied, and any corruption of the shared pages is detected by the
attach-time checksums before a worker can compute on it.  Both are
checked here over arbitrary generated CSR structures, not one fixed
example.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats import CSRMatrix
from repro.shm import (
    SegmentChecksumError,
    attach_csr,
    publish_csr,
)


@st.composite
def csr_matrices(draw, max_rows=16, max_cols=12, max_row_nnz=8):
    """Arbitrary small CSR matrices with sorted, unique column indices."""
    n_rows = draw(st.integers(0, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    columns = []
    pointers = [0]
    for _ in range(n_rows):
        length = draw(st.integers(0, min(max_row_nnz, n_cols)))
        row_cols = draw(
            st.lists(
                st.integers(0, n_cols - 1),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        columns.extend(sorted(row_cols))
        pointers.append(len(columns))
    values = draw(
        st.lists(
            st.floats(-8.0, 8.0, allow_nan=False),
            min_size=len(columns),
            max_size=len(columns),
        )
    )
    return CSRMatrix(
        n_rows=n_rows,
        n_cols=n_cols,
        row_pointers=np.asarray(pointers, dtype=np.int64),
        column_indices=np.asarray(columns, dtype=np.int64),
        values=np.asarray(values, dtype=np.float64),
    )


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(matrix=csr_matrices())
    def test_publish_attach_is_byte_identical_and_zero_copy(self, matrix):
        segment = publish_csr(matrix)
        attached = None
        try:
            attached = attach_csr(segment.meta)
            got = attached.matrix
            assert got.n_rows == matrix.n_rows
            assert got.n_cols == matrix.n_cols
            assert got.nnz == matrix.nnz
            np.testing.assert_array_equal(
                got.row_pointers, matrix.row_pointers
            )
            np.testing.assert_array_equal(
                got.column_indices, matrix.column_indices
            )
            np.testing.assert_array_equal(got.values, matrix.values)
            assert got.row_pointers.tobytes() == np.ascontiguousarray(
                matrix.row_pointers, dtype=np.int64
            ).tobytes()
            assert got.values.tobytes() == np.ascontiguousarray(
                matrix.values, dtype=np.float64
            ).tobytes()
            # The zero-copy invariant the process pool asserts per request.
            assert attached.copied_bytes == 0
        finally:
            if attached is not None:
                attached.close()
            segment.close()

    @settings(max_examples=25, deadline=None)
    @given(matrix=csr_matrices(), dim=st.integers(1, 4))
    def test_attached_matrix_computes_like_the_original(self, matrix, dim):
        rng = np.random.default_rng(matrix.nnz + dim)
        dense = rng.random((matrix.n_cols, dim))
        segment = publish_csr(matrix)
        attached = None
        try:
            attached = attach_csr(segment.meta)
            np.testing.assert_allclose(
                attached.matrix.multiply_dense(dense),
                matrix.multiply_dense(dense),
                rtol=1e-12,
                atol=1e-12,
            )
        finally:
            if attached is not None:
                attached.close()
            segment.close()

    def test_meta_is_picklable(self):
        matrix = CSRMatrix(
            n_rows=2,
            n_cols=2,
            row_pointers=np.array([0, 1, 2], dtype=np.int64),
            column_indices=np.array([0, 1], dtype=np.int64),
            values=np.array([1.0, 2.0]),
        )
        with publish_csr(matrix) as segment:
            meta = pickle.loads(pickle.dumps(segment.meta))
            assert meta == segment.meta
            with attach_csr(meta) as attached:
                assert attached.matrix.nnz == 2

    def test_close_unlinks_the_segment(self):
        matrix = CSRMatrix(
            n_rows=1,
            n_cols=1,
            row_pointers=np.array([0, 1], dtype=np.int64),
            column_indices=np.array([0], dtype=np.int64),
            values=np.array([3.0]),
        )
        segment = publish_csr(matrix)
        segment.close()
        with pytest.raises(FileNotFoundError):
            attach_csr(segment.meta)


class TestChecksums:
    @settings(max_examples=40, deadline=None)
    @given(matrix=csr_matrices(), data=st.data())
    def test_any_corrupted_array_byte_is_detected(self, matrix, data):
        segment = publish_csr(matrix)
        try:
            meta = segment.meta
            # Pick a byte inside one of the three array regions (the
            # alignment padding between them is not covered by digests).
            regions = [
                (meta.indptr_offset, (matrix.n_rows + 1) * 8),
                (meta.indices_offset, matrix.nnz * 8),
                (meta.values_offset, matrix.nnz * 8),
            ]
            regions = [(off, size) for off, size in regions if size > 0]
            offset, size = data.draw(st.sampled_from(regions))
            index = offset + data.draw(st.integers(0, size - 1))
            buffer = segment.buffer()
            buffer[index] = buffer[index] ^ 0xFF
            with pytest.raises(SegmentChecksumError):
                attach_csr(meta)
        finally:
            segment.close()

    def test_verify_false_skips_the_checksum(self):
        matrix = CSRMatrix(
            n_rows=1,
            n_cols=2,
            row_pointers=np.array([0, 2], dtype=np.int64),
            column_indices=np.array([0, 1], dtype=np.int64),
            values=np.array([1.0, 2.0]),
        )
        segment = publish_csr(matrix)
        try:
            buffer = segment.buffer()
            index = segment.meta.values_offset
            buffer[index] = buffer[index] ^ 0xFF
            # Trusted attach maps the torn bytes without complaint ...
            attached = attach_csr(segment.meta, verify=False)
            try:
                # ... but an explicit re-verify still catches them.
                with pytest.raises(SegmentChecksumError):
                    attached.verify()
            finally:
                attached.close()
        finally:
            segment.close()
