"""Unit tests for graph reordering and the reorder-invariance claim."""

import numpy as np
import pytest

from repro.core import schedule_for_cost
from repro.formats import CSRMatrix
from repro.graphs.reorder import (
    bfs_order,
    degree_sort_order,
    permute_rows_and_columns,
    random_order,
)


class TestPermutation:
    def test_identity_permutation(self, csr_small):
        # csr_small is square (12x12).
        order = np.arange(csr_small.n_rows)
        out = permute_rows_and_columns(csr_small, order)
        assert np.allclose(out.to_dense(), csr_small.to_dense())

    def test_permutation_is_symmetric_relabel(self, csr_small):
        order = random_order(csr_small, seed=1)
        out = permute_rows_and_columns(csr_small, order)
        dense = csr_small.to_dense()
        expected = dense[np.ix_(order, order)]
        assert np.allclose(out.to_dense(), expected)

    def test_preserves_nnz_and_degree_multiset(self, small_power_law):
        order = random_order(small_power_law, seed=2)
        out = permute_rows_and_columns(small_power_law, order)
        assert out.nnz == small_power_law.nnz
        assert sorted(out.row_lengths) == sorted(small_power_law.row_lengths)

    def test_rejects_non_permutation(self, csr_small):
        with pytest.raises(ValueError, match="permutation"):
            permute_rows_and_columns(csr_small, np.zeros(csr_small.n_rows,
                                                         dtype=int))

    def test_rejects_rectangular(self):
        rect = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            permute_rows_and_columns(rect, np.array([0, 1]))


class TestOrderings:
    def test_degree_sort_descending(self, small_power_law):
        order = degree_sort_order(small_power_law)
        lengths = small_power_law.row_lengths[order]
        assert (np.diff(lengths) <= 0).all()

    def test_degree_sort_ascending(self, small_power_law):
        order = degree_sort_order(small_power_law, descending=False)
        lengths = small_power_law.row_lengths[order]
        assert (np.diff(lengths) >= 0).all()

    def test_bfs_visits_every_node_once(self, small_power_law):
        order = bfs_order(small_power_law)
        assert sorted(order.tolist()) == list(range(small_power_law.n_rows))

    def test_bfs_start_first(self, small_power_law):
        assert bfs_order(small_power_law, start=5)[0] == 5

    def test_bfs_rejects_bad_start(self, small_power_law):
        with pytest.raises(ValueError):
            bfs_order(small_power_law, start=10_000)

    def test_random_order_deterministic(self, small_power_law):
        assert np.array_equal(
            random_order(small_power_law, seed=9),
            random_order(small_power_law, seed=9),
        )


class TestReorderInvariance:
    def test_merge_path_stats_invariant_under_permutation(self, small_power_law):
        """The paper's 'no reordering needed' claim, quantified."""
        base = schedule_for_cost(small_power_law, 10, min_threads=None)
        shuffled = permute_rows_and_columns(
            small_power_law, random_order(small_power_law, seed=4)
        )
        other = schedule_for_cost(shuffled, 10, min_threads=None)
        # Thread counts and per-thread bounds are identical; atomic write
        # counts move only marginally (boundaries land differently).
        assert base.n_threads == other.n_threads
        assert base.items_per_thread == other.items_per_thread
        ratio = other.statistics.atomic_writes / max(
            1, base.statistics.atomic_writes
        )
        assert 0.7 < ratio < 1.4

    def test_row_splitting_sensitive_to_degree_sort(self, small_power_law):
        from repro.baselines import RowSplitSchedule

        sorted_matrix = permute_rows_and_columns(
            small_power_law, degree_sort_order(small_power_law)
        )
        base = RowSplitSchedule.build(small_power_law, 20).load_imbalance
        sorted_ = RowSplitSchedule.build(sorted_matrix, 20).load_imbalance
        assert sorted_ > 1.5 * base
