"""Unit tests for the set-associative cache and MESI directory."""

import pytest

from repro.multicore.cache import SetAssociativeCache
from repro.multicore.config import CacheConfig
from repro.multicore.directory import Directory


def _cache(size=256, assoc=2, line=64):
    return SetAssociativeCache(CacheConfig(size_bytes=size, associativity=assoc,
                                           line_bytes=line))


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = _cache()
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = _cache(size=128, assoc=2)  # 1 set, 2 ways
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 0 is now MRU
        cache.access(2)  # evicts 1 (LRU)
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.stats.evictions == 1

    def test_set_isolation(self):
        cache = _cache(size=256, assoc=2)  # 2 sets
        # Lines 0 and 2 map to set 0; line 1 maps to set 1.
        cache.access(0)
        cache.access(2)
        cache.access(1)
        assert cache.contains(0) and cache.contains(2) and cache.contains(1)

    def test_invalidate(self):
        cache = _cache()
        cache.access(7)
        assert cache.invalidate(7) is True
        assert not cache.contains(7)
        assert cache.invalidate(7) is False

    def test_contains_does_not_touch_lru(self):
        cache = _cache(size=128, assoc=2)
        cache.access(0)
        cache.access(1)
        cache.contains(0)  # must NOT refresh 0
        cache.access(2)  # evicts 0 (still LRU)
        assert not cache.contains(0)

    def test_reset(self):
        cache = _cache()
        cache.access(1)
        cache.reset()
        assert not cache.contains(1)
        assert cache.stats.accesses == 0

    def test_hit_rate(self):
        cache = _cache()
        cache.access(1)
        cache.access(1)
        cache.access(1)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestDirectory:
    def test_read_registers_sharer(self):
        d = Directory(4)
        downgraded, evicted = d.read(10, core=3)
        assert not downgraded and not evicted
        assert d.sharers_of(10) == (3,)

    def test_repeat_read_no_duplicate(self):
        d = Directory(4)
        d.read(10, 3)
        d.read(10, 3)
        assert d.sharers_of(10) == (3,)

    def test_limited_pointers_evict(self):
        d = Directory(2)
        d.read(10, 0)
        d.read(10, 1)
        _, evicted = d.read(10, 2)
        assert evicted == [0]
        assert d.sharers_of(10) == (1, 2)
        assert d.stats.pointer_evictions == 1

    def test_write_invalidates_sharers(self):
        d = Directory(4)
        d.read(10, 0)
        d.read(10, 1)
        invalidated = d.write(10, 2)
        assert set(invalidated) == {0, 1}
        assert d.owner_of(10) == 2
        assert d.sharers_of(10) == ()

    def test_write_by_sharer_does_not_invalidate_self(self):
        d = Directory(4)
        d.read(10, 0)
        assert d.write(10, 0) == []

    def test_read_downgrades_remote_owner(self):
        d = Directory(4)
        d.write(10, 0)
        downgraded, _ = d.read(10, 1)
        assert downgraded
        assert d.owner_of(10) is None
        assert set(d.sharers_of(10)) == {0, 1}
        assert d.stats.downgrades == 1

    def test_owner_reread_no_downgrade(self):
        d = Directory(4)
        d.write(10, 0)
        downgraded, _ = d.read(10, 0)
        assert not downgraded

    def test_write_chain_serializes_ownership(self):
        d = Directory(4)
        assert d.write(10, 0) == []
        assert d.write(10, 1) == [0]
        assert d.write(10, 2) == [1]

    def test_drop(self):
        d = Directory(4)
        d.write(10, 0)
        d.drop(10)
        assert d.owner_of(10) is None
        assert d.sharers_of(10) == ()

    def test_rejects_bad_pointer_count(self):
        with pytest.raises(ValueError):
            Directory(0)
