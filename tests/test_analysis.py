"""Unit tests for schedule load-balance analysis."""

import numpy as np
import pytest

from repro.core import build_schedule
from repro.core.analysis import (
    compare_strategies,
    summarize_merge_path,
    work_histogram,
)


class TestSummaries:
    def test_merge_path_bounded_imbalance(self, small_power_law):
        summary = summarize_merge_path(build_schedule(small_power_law, 64))
        assert summary.strategy == "merge-path"
        assert summary.n_units == 64
        assert summary.imbalance <= 1.05  # merge-path cost bound

    def test_compare_orders_and_contents(self, small_power_law):
        summaries = compare_strategies(small_power_law, 64)
        names = [s.strategy for s in summaries]
        assert names == ["merge-path", "row-splitting", "neighbor-groups"]

    def test_power_law_story(self, small_power_law):
        mp, rs, ng = compare_strategies(small_power_law, 64)
        # Row-splitting's bottleneck explodes on the evil row.
        assert rs.imbalance > 3.0 * mp.imbalance
        # Row-splitting needs no atomics; neighbor groups are all atomic.
        assert rs.atomic_updates == 0
        assert ng.atomic_updates == ng.n_units
        # Merge-path uses some atomics, but far fewer than one per unit
        # of work handled by neighbor groups.
        assert 0 < mp.atomic_updates < ng.atomic_updates

    def test_structured_graph_row_splitting_ok(self, small_structured):
        mp, rs, _ = compare_strategies(small_structured, 64)
        assert rs.imbalance < 2.0  # no evil rows, row-splitting is fine

    def test_rejects_bad_thread_count(self, small_power_law):
        with pytest.raises(ValueError):
            compare_strategies(small_power_law, 0)


class TestHistogram:
    def test_degenerate_distribution(self, small_power_law):
        schedule = build_schedule(small_power_law, 64)
        edges, counts = work_histogram(schedule, n_bins=5)
        assert counts.sum() == 64
        assert len(edges) == 6
        # Nearly every thread sits in the top bin (the cost bound).
        assert counts[-1] >= 63

    def test_rejects_bad_bins(self, small_power_law):
        schedule = build_schedule(small_power_law, 8)
        with pytest.raises(ValueError):
            work_histogram(schedule, n_bins=0)


class TestOddDimensions:
    """GPU model coverage for non-power-of-two dimension sizes."""

    @pytest.mark.parametrize("dim", [1, 3, 48, 100])
    def test_kernel_time_defined(self, small_power_law, dim):
        from repro.gpu import kernel_time

        for kernel in ("mergepath", "gnnadvisor", "gnnadvisor-opt"):
            timing = kernel_time(kernel, small_power_law, dim)
            assert timing.cycles > 0

    def test_dim48_mapping(self):
        from repro.core import map_threads_to_simd

        mapping = map_threads_to_simd(48)
        assert mapping.warps_per_thread == 2
        assert mapping.lane_utilization == pytest.approx(0.75)

    def test_dim3_mapping_packs_ten_threads(self):
        from repro.core import map_threads_to_simd

        mapping = map_threads_to_simd(3)
        assert mapping.threads_per_warp == 10
        assert mapping.lane_utilization == pytest.approx(30 / 32)

    @pytest.mark.parametrize("dim", [1, 3, 48])
    def test_spmm_correct_at_odd_dims(self, small_power_law, dim, features):
        from repro.core import merge_path_spmm

        x = features(small_power_law.n_cols, dim)
        result = merge_path_spmm(small_power_law, x)
        assert np.allclose(result.output, small_power_law.multiply_dense(x))
