"""Append-only run trajectories and the perf-regression gate.

Covers satellite 1 (``write_run_record`` appends history with
schema-versioned migration of legacy single-run files) and the tentpole's
``tools/check_regression.py`` gate (pass / regression / insufficient
history / ``--require``).
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs.export import (
    MAX_RUNS,
    SCHEMA,
    TRAJECTORY_SCHEMA,
    read_records,
    read_trajectory,
    write_run_record,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_gate():
    path = REPO_ROOT / "tools" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gate():
    return _load_gate()


def _kernel_record(rows_per_s, status="ok"):
    return obs.run_record(
        "kernel",
        extra={
            "results": [
                {
                    "dataset": "cora",
                    "executor": "fused",
                    "rows_per_s": rows_per_s,
                    "check": "pass",
                }
            ]
        },
        status=status,
    )


def _serve_record(p95_ms, rps):
    return obs.run_record(
        "serve",
        extra={
            "serve": {
                "steady": {
                    "latency_ms": {"p95": p95_ms},
                    "throughput_rps": rps,
                }
            }
        },
    )


class TestTrajectories:
    def test_write_appends(self, tmp_path):
        write_run_record(_kernel_record(100.0), directory=tmp_path)
        path = write_run_record(_kernel_record(110.0), directory=tmp_path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == TRAJECTORY_SCHEMA
        assert doc["name"] == "kernel"
        assert len(doc["runs"]) == 2
        values = [r["results"][0]["rows_per_s"] for r in doc["runs"]]
        assert values == [100.0, 110.0]  # oldest first

    def test_legacy_single_run_migrated(self, tmp_path):
        # A pre-trajectory file is a bare repro.obs.run/1 dict; the next
        # append must keep it as the first history entry.
        legacy = _kernel_record(50.0)
        assert legacy["schema"] == SCHEMA
        (tmp_path / "BENCH_kernel.json").write_text(json.dumps(legacy))
        write_run_record(_kernel_record(60.0), directory=tmp_path)
        runs = read_trajectory("kernel", tmp_path)
        assert [r["results"][0]["rows_per_s"] for r in runs] == [50.0, 60.0]

    def test_max_runs_trims_oldest(self, tmp_path):
        for i in range(5):
            write_run_record(
                _kernel_record(float(i)), directory=tmp_path, max_runs=3
            )
        runs = read_trajectory("kernel", tmp_path)
        assert [r["results"][0]["rows_per_s"] for r in runs] == [
            2.0,
            3.0,
            4.0,
        ]

    def test_max_runs_validated(self, tmp_path):
        with pytest.raises(ValueError):
            write_run_record(
                _kernel_record(1.0), directory=tmp_path, max_runs=0
            )

    def test_default_bound_is_sane(self):
        assert MAX_RUNS >= 10

    def test_read_records_flattens(self, tmp_path):
        write_run_record(_kernel_record(1.0), directory=tmp_path)
        write_run_record(_kernel_record(2.0), directory=tmp_path)
        write_run_record(_serve_record(10.0, 100.0), directory=tmp_path)
        records = read_records(tmp_path)
        assert len(records) == 3
        assert all(r["schema"] == SCHEMA for r in records)
        assert obs.latest_record("kernel", tmp_path)["results"][0][
            "rows_per_s"
        ] == 2.0

    def test_corrupt_file_yields_empty(self, tmp_path):
        (tmp_path / "BENCH_kernel.json").write_text("{not json")
        assert read_trajectory("kernel", tmp_path) == []


class TestMetricExtraction:
    def test_kernel_metrics(self, gate):
        metrics = gate.kernel_metrics(_kernel_record(123.0))
        assert metrics == {
            "rows_per_s[cora/fused]": (123.0, gate.HIGHER)
        }

    def test_serve_metrics(self, gate):
        metrics = gate.serve_metrics(_serve_record(12.5, 80.0))
        assert metrics["steady.latency_ms.p95"] == (12.5, gate.LOWER)
        assert metrics["steady.throughput_rps"] == (80.0, gate.HIGHER)

    def test_missing_sections_empty(self, gate):
        assert gate.kernel_metrics({}) == {}
        assert gate.serve_metrics({"serve": {}}) == {}


class TestGate:
    def _seed(self, tmp_path, values):
        for value in values:
            write_run_record(_kernel_record(value), directory=tmp_path)

    def test_clean_pass(self, gate, tmp_path, capsys):
        self._seed(tmp_path, [100.0, 105.0, 98.0])
        code = gate.main(
            ["--bench-dir", str(tmp_path), "--name", "kernel"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_throughput_collapse_fails(self, gate, tmp_path, capsys):
        # Latest run at 30% of the median baseline: beyond the 50%
        # tolerance, so the gate must trip.
        self._seed(tmp_path, [100.0, 105.0, 30.0])
        code = gate.main(
            ["--bench-dir", str(tmp_path), "--name", "kernel"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_latency_blowup_fails(self, gate, tmp_path):
        for p95 in (10.0, 11.0, 40.0):  # LOWER-is-better direction
            write_run_record(_serve_record(p95, 100.0), directory=tmp_path)
        code = gate.main(["--bench-dir", str(tmp_path), "--name", "serve"])
        assert code == 1

    def test_insufficient_history_passes(self, gate, tmp_path, capsys):
        self._seed(tmp_path, [100.0])
        code = gate.main(
            ["--bench-dir", str(tmp_path), "--name", "kernel"]
        )
        assert code == 0
        assert "passing without judgement" in capsys.readouterr().out

    def test_error_runs_excluded_from_baseline(self, gate, tmp_path):
        # A crashed run's numbers must not poison the baseline: only the
        # two ok runs count, and one prior ok run < min-history default.
        write_run_record(_kernel_record(100.0), directory=tmp_path)
        write_run_record(
            _kernel_record(1.0, status="error"), directory=tmp_path
        )
        write_run_record(_kernel_record(95.0), directory=tmp_path)
        code = gate.main(
            [
                "--bench-dir",
                str(tmp_path),
                "--name",
                "kernel",
                "--min-history",
                "1",
            ]
        )
        assert code == 0

    def test_require_missing_trajectory(self, gate, tmp_path):
        code = gate.main(
            ["--bench-dir", str(tmp_path), "--name", "serve", "--require"]
        )
        assert code == 2

    def test_missing_without_require_skips(self, gate, tmp_path, capsys):
        code = gate.main(["--bench-dir", str(tmp_path)])
        assert code == 0
        assert "skipping" in capsys.readouterr().out

    def test_tolerance_validation(self, gate, tmp_path):
        with pytest.raises(SystemExit):
            gate.main(["--bench-dir", str(tmp_path), "--tolerance", "0"])
        with pytest.raises(SystemExit):
            gate.main(["--bench-dir", str(tmp_path), "--min-history", "0"])
