"""Unit tests for the CSC-backed neighbor index and its epoch-aware cache."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.sample.index import (
    PULL,
    PUSH,
    NeighborIndex,
    NeighborIndexCache,
    get_neighbor_index_cache,
    set_neighbor_index_cache,
)
from repro.serve.epoch import GraphEpochManager


def _square(dense):
    return CSRMatrix.from_dense(np.asarray(dense, dtype=float))


@pytest.fixture
def adjacency():
    # 4 nodes; row v lists the nodes v aggregates from.
    return _square(
        [
            [0, 2, 0, 1],
            [3, 0, 0, 0],
            [0, 0, 0, 0],  # isolated in the pull direction
            [1, 1, 1, 0],
        ]
    )


class TestNeighborIndex:
    def test_pull_is_zero_copy(self, adjacency):
        index = NeighborIndex(adjacency, PULL)
        assert index.csc.col_pointers is adjacency.row_pointers
        assert index.csc.row_indices is adjacency.column_indices
        assert index.nbytes == 0

    def test_pull_neighbors_are_row_entries(self, adjacency):
        index = NeighborIndex(adjacency, PULL)
        dense = adjacency.to_dense()
        for node in range(adjacency.n_rows):
            ids, values = index.neighbors(node)
            assert set(ids.tolist()) == set(
                np.flatnonzero(dense[node]).tolist()
            )
            assert np.allclose(values, dense[node][ids])

    def test_push_neighbors_are_column_entries(self, adjacency):
        index = NeighborIndex(adjacency, PUSH)
        dense = adjacency.to_dense()
        assert index.nbytes > 0
        for node in range(adjacency.n_rows):
            ids, _ = index.neighbors(node)
            assert set(ids.tolist()) == set(
                np.flatnonzero(dense[:, node]).tolist()
            )

    def test_degrees_and_n_nodes(self, adjacency):
        index = NeighborIndex(adjacency, PULL)
        assert index.n_nodes == 4
        assert np.array_equal(index.degrees, adjacency.row_lengths)

    def test_fingerprint_tracks_version(self, adjacency):
        assert (
            NeighborIndex(adjacency.with_version(3)).fingerprint
            != NeighborIndex(adjacency).fingerprint
        )

    def test_rejects_bad_inputs(self, adjacency):
        with pytest.raises(ValueError, match="direction"):
            NeighborIndex(adjacency, "sideways")
        rect = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            NeighborIndex(rect)


class TestNeighborIndexCache:
    def test_hit_miss_accounting(self, adjacency):
        cache = NeighborIndexCache()
        first = cache.get(adjacency)
        assert cache.get(adjacency) is first
        assert (cache.hits, cache.misses) == (1, 1)
        # The push view is a distinct entry under the same fingerprint.
        cache.get(adjacency, PUSH)
        assert (cache.hits, cache.misses) == (1, 2)
        assert len(cache) == 2

    def test_lru_eviction(self, adjacency):
        cache = NeighborIndexCache(capacity=2)
        epochs = [adjacency.with_version(v) for v in range(3)]
        for matrix in epochs:
            cache.get(matrix)
        assert len(cache) == 2
        # Epoch 0 was evicted; fetching it again is a miss.
        cache.get(epochs[0])
        assert cache.misses == 4

    def test_invalidate_fingerprint_drops_both_directions(self, adjacency):
        cache = NeighborIndexCache()
        cache.get(adjacency, PULL)
        cache.get(adjacency, PUSH)
        other = adjacency.with_version(1)
        cache.get(other)
        assert cache.invalidate_fingerprint(adjacency.fingerprint()) == 2
        assert len(cache) == 1
        assert cache.invalidations == 2
        # The surviving epoch still hits.
        cache.get(other)
        assert cache.hits == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            NeighborIndexCache(capacity=0)

    def test_clear_resets_counters(self, adjacency):
        cache = NeighborIndexCache()
        cache.get(adjacency)
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)

    def test_process_wide_swap(self):
        fresh = NeighborIndexCache()
        previous = set_neighbor_index_cache(fresh)
        try:
            assert get_neighbor_index_cache() is fresh
        finally:
            set_neighbor_index_cache(previous)


class TestEpochIntegration:
    def test_epoch_manager_invalidates_retired_index(self, adjacency):
        # The cache duck-types the epoch manager's cache protocol: a
        # retired epoch's index entries drop, while fingerprints still
        # referenced by a live epoch — the shared repair *base* included
        # — stay resident until their last sharer retires.
        from repro.graphs.delta import EdgeUpdate

        cache = NeighborIndexCache()
        manager = GraphEpochManager(adjacency, caches=(cache,))
        base = manager.current_snapshot().matrix
        cache.get(base)
        first = manager.apply_updates(
            [EdgeUpdate(op="insert", row=2, col=0, value=1.0)]
        )
        # Epoch 0 retired but its fingerprint is the live epoch's repair
        # base, so its index survives the first install.
        assert len(cache) == 1
        index = cache.get(first.matrix)
        ids, _ = index.neighbors(2)
        assert 0 in ids.tolist()
        manager.apply_updates(
            [EdgeUpdate(op="insert", row=2, col=1, value=1.0)]
        )
        # Epoch 1 retired and nothing live references it: exactly its
        # entry is dropped; the still-shared base entry remains.
        assert cache.invalidations == 1
        assert len(cache) == 1
        remaining = {key[0] for key in cache._indexes}
        assert first.fingerprint not in remaining
        assert base.fingerprint() in remaining

    def test_lease_pins_index_until_release(self, adjacency):
        from repro.graphs.delta import EdgeUpdate

        cache = NeighborIndexCache()
        manager = GraphEpochManager(adjacency, caches=(cache,))
        # Move past the shared-base epoch first so retirement semantics
        # are purely lease-driven.
        first = manager.apply_updates(
            [EdgeUpdate(op="insert", row=2, col=0, value=1.0)]
        )
        lease = manager.acquire()
        assert lease.epoch == first.epoch
        cache.get(lease.matrix)
        manager.apply_updates(
            [EdgeUpdate(op="insert", row=2, col=1, value=1.0)]
        )
        # The leased epoch is still live: its index must survive.
        assert len(cache) == 1
        lease.release()
        assert len(cache) == 0
        assert cache.invalidations == 1
