"""Fast inference: the engine fast path and the autotuner.

Builds a synthetic power-law graph, compares the engine's compiled SpMM
fast path against the serial reference executor, lets the autotuner pick
the best executor empirically, and runs a fused 2-layer GCN forward pass
through a single shared engine plan.

Run:  python examples/fast_inference.py
"""

import time

import numpy as np

from repro.engine import Autotuner, FusedGCNPipeline, compile_engine_plan
from repro.core.schedule import schedule_for_cost
from repro.core.spmm import execute_reference
from repro.core.thread_mapping import default_merge_path_cost
from repro.gnn.models import GCN
from repro.graphs import power_law_graph


def main() -> None:
    # 1. A mid-sized power-law graph (the shape GNN workloads see).
    adjacency = power_law_graph(
        n_nodes=20_000, nnz=160_000, max_degree=2_000, seed=11
    )
    dim = 32
    features = np.random.default_rng(0).standard_normal((20_000, dim))
    print(
        f"graph: {adjacency.n_rows} nodes, {adjacency.nnz} edges, "
        f"feature width {dim}"
    )

    # 2. Compile the engine plan once; execute many times.  The first
    # execute sizes the workspace arena; later calls allocate nothing.
    schedule = schedule_for_cost(adjacency, default_merge_path_cost(dim))
    plan = compile_engine_plan(adjacency, schedule=schedule)
    plan.execute(features)  # warmup

    start = time.perf_counter()
    engine_out = plan.execute(features)
    engine_s = time.perf_counter() - start

    start = time.perf_counter()
    reference_out, _ = execute_reference(schedule, features)
    reference_s = time.perf_counter() - start

    assert np.allclose(engine_out, reference_out, rtol=1e-9, atol=1e-9)
    # Expected: the engine several times faster than the reference
    # executor, e.g. "engine 12.3 ms vs reference 98.7 ms (8.0x)".
    print(
        f"engine {engine_s * 1e3:.1f} ms vs reference "
        f"{reference_s * 1e3:.1f} ms ({reference_s / engine_s:.1f}x)"
    )

    # 3. The autotuner measures every candidate once per (graph, width)
    # and remembers the winner; on a graph this size the engine wins.
    tuner = Autotuner()
    decision = tuner.tune(adjacency, dim)
    ranked = sorted(decision.timings.items(), key=lambda kv: kv[1])
    print("autotuner ranking (fastest first):")
    for name, seconds in ranked:
        print(f"  {name:12s} {seconds * 1e3:8.1f} ms")
    # Expected: "winner: engine" on this dataset.
    print(f"winner: {decision.winner}")

    run = tuner.best_executor(adjacency, dim)
    assert np.allclose(run(adjacency, features), reference_out)

    # 4. Fused GCN inference: one schedule and one engine plan shared by
    # both layers, layer ordering chosen by FLOP count (the 32 -> 4
    # classifier layer runs transform-first: A @ (X W) at width 4).
    model = GCN.random([dim, 16, 4], seed=3)
    pipeline = FusedGCNPipeline(model, adjacency)
    embeddings = pipeline.forward(features)
    orderings = ", ".join(p.ordering for p in pipeline.layer_plans)
    # Expected: "fused GCN: (20000, 4) embeddings" and two orderings.
    print(f"fused GCN: {embeddings.shape} embeddings")
    print(f"layer orderings: {orderings}")
    print(f"modeled forward FLOPs: {pipeline.total_flops:.2e}")


if __name__ == "__main__":
    main()
