"""Train a GCN end to end on a planted-community graph.

Demonstrates that the library is a complete GNN substrate, not just an
inference kernel: a stochastic-block-model graph with label-correlated
noisy features, a 2-layer GCN trained by full-batch Adam with manual
backpropagation, and MergePath-SpMM powering both the forward aggregation
and the transposed backward aggregation.

Run:  python examples/node_classification.py
"""

import numpy as np

from repro.gnn import accuracy
from repro.gnn.training import AdamOptimizer, TrainableGCN
from repro.graphs import Graph
from repro.graphs.generators import block_labels, stochastic_block_model

COMMUNITIES = [80, 80, 80]
FEATURE_NOISE = 2.0
EPOCHS = 60


def main() -> None:
    # 1. A 3-community SBM: dense within blocks, sparse across.
    adjacency = stochastic_block_model(
        COMMUNITIES, p_in=0.15, p_out=0.01, seed=7
    )
    graph = Graph(name="sbm-240", adjacency=adjacency)
    labels = block_labels(COMMUNITIES)
    rng = np.random.default_rng(0)
    features = np.eye(len(COMMUNITIES))[labels] + FEATURE_NOISE * rng.normal(
        size=(graph.n_nodes, len(COMMUNITIES))
    )
    print(
        f"graph: {graph.n_nodes} nodes in {len(COMMUNITIES)} communities, "
        f"{graph.n_edges} edges; feature noise {FEATURE_NOISE}"
    )

    # 2. Split: train on half the nodes, evaluate on the rest.
    mask = np.zeros(graph.n_nodes, dtype=bool)
    mask[rng.permutation(graph.n_nodes)[: graph.n_nodes // 2]] = True

    # 3. A linear probe on raw features shows the task is non-trivial.
    model_linear = TrainableGCN([3, 3], seed=3, backend="mergepath")
    linear = model_linear.fit(
        graph, features, labels, mask=mask, epochs=EPOCHS,
        optimizer=AdamOptimizer(learning_rate=0.05),
    )
    test_linear = accuracy(linear.final_logits[~mask], labels[~mask])

    # 4. The 2-layer GCN aggregates neighbours and should beat the probe.
    model = TrainableGCN([3, 16, 3], seed=3, backend="mergepath")
    report = model.fit(
        graph, features, labels, mask=mask, epochs=EPOCHS,
        optimizer=AdamOptimizer(learning_rate=0.05),
    )
    test_gcn = accuracy(report.final_logits[~mask], labels[~mask])

    print(f"loss: {report.losses[0]:.3f} -> {report.losses[-1]:.3f} "
          f"over {EPOCHS} epochs")
    print(f"1-layer probe : train {linear.train_accuracy:.2%}, "
          f"test {test_linear:.2%}")
    print(f"2-layer GCN   : train {report.train_accuracy:.2%}, "
          f"test {test_gcn:.2%}")
    print("aggregation backend: MergePath-SpMM (forward and transposed "
          "backward)")


if __name__ == "__main__":
    main()
