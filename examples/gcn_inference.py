"""End-to-end GCN inference with online vs offline scheduling.

Runs a 2-layer graph convolutional network on the Cora and Pubmed
stand-ins with MergePath-SpMM aggregation, comparing the paper's two
execution models (Section III-D):

* **offline** — the adjacency matrix is stationary, so the merge-path
  schedule is computed once and reused across inferences;
* **online** — the graph changes every inference, so the schedule is
  recomputed each time and its cost becomes visible (Figure 8).

Run:  python examples/gcn_inference.py
"""

from repro import SchedulingMode, load_dataset
from repro.gnn import GCN, InferenceEngine

HIDDEN_DIM = 16
N_INFERENCES = 5


def main() -> None:
    for name in ("Cora", "Pubmed"):
        graph = load_dataset(name)
        features = graph.random_features(HIDDEN_DIM, seed=0)
        model = GCN.random([HIDDEN_DIM, HIDDEN_DIM, HIDDEN_DIM], seed=1)
        print(f"\n=== {name}: {graph.n_nodes} nodes, {graph.n_edges} edges ===")

        for mode in (SchedulingMode.OFFLINE, SchedulingMode.ONLINE):
            engine = InferenceEngine(mode=mode)
            schedules = 0
            kernel_cycles = schedule_cycles = 0.0
            for _ in range(N_INFERENCES):
                report = engine.infer(model, graph, features)
                schedules += report.schedule_computations
                kernel_cycles += report.modeled_kernel_cycles
                schedule_cycles += report.modeled_schedule_cycles
            overhead = schedule_cycles / (schedule_cycles + kernel_cycles)
            print(
                f"{mode.value:8s}: {N_INFERENCES} inferences, "
                f"{schedules} schedule computation(s), "
                f"modeled scheduling overhead {100 * overhead:.1f}%"
            )

        # The embeddings themselves are backend-independent.
        out = InferenceEngine().infer(model, graph, features).output
        print(f"embeddings: shape {out.shape}, "
              f"mean |h| = {abs(out).mean():.4f}")


if __name__ == "__main__":
    main()
