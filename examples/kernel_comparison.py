"""Compare every SpMM kernel on a graph of your choice.

For a named Table II dataset (or a synthetic graph), runs all kernels
functionally (verifying they agree), then reports their modeled GPU times
and the scheduling statistics that explain the differences — a miniature
version of the paper's Figure 4 analysis for a single input.

Run:  python examples/kernel_comparison.py [dataset] [dim]
      python examples/kernel_comparison.py Nell 64
"""

import sys

import numpy as np

from repro import load_dataset, schedule_for_cost
from repro.baselines import NeighborGroupSchedule, select_kernel
from repro.experiments.reporting import format_table
from repro.gpu import KERNELS, kernel_time


def main(name: str = "email-Euall", dim: int = 16) -> None:
    graph = load_dataset(name)
    adjacency = graph.adjacency
    stats = graph.statistics
    print(
        f"{name}: {stats.n_rows} nodes, {stats.nnz} non-zeros, avg degree "
        f"{stats.avg_degree:.1f}, max degree {stats.max_degree}, dim {dim}"
    )

    # Functional agreement on a feature sample (skip the slow per-row
    # baselines on big inputs; the vectorized kernels cover correctness).
    features = graph.random_features(dim, seed=0)
    from repro import merge_path_spmm
    from repro.baselines import cusparse_like_spmm, gnnadvisor_spmm

    expected = adjacency.multiply_dense(features)
    assert np.allclose(merge_path_spmm(adjacency, features).output, expected)
    assert np.allclose(gnnadvisor_spmm(adjacency, features)[0], expected)
    assert np.allclose(cusparse_like_spmm(adjacency, features)[0], expected)
    print("functional check: mergepath == gnnadvisor == cusparse == dense\n")

    # Modeled GPU times for every kernel.
    rows = []
    baseline = kernel_time("gnnadvisor", adjacency, dim).microseconds
    for kernel in sorted(KERNELS):
        timing = kernel_time(kernel, adjacency, dim)
        rows.append(
            (
                kernel,
                timing.microseconds,
                baseline / timing.microseconds,
                timing.bound_by,
                timing.n_warps,
            )
        )
    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["kernel", "modeled_us", "vs_gnnadvisor", "bound_by", "warps"], rows
    ))

    # Why: the write-mode distribution and the library's dispatch choice.
    sched = schedule_for_cost(adjacency, 20, min_threads=1024).statistics
    groups = NeighborGroupSchedule.build(adjacency)
    print(
        f"\nmergepath: {sched.atomic_writes} atomic / "
        f"{sched.regular_writes} regular writes "
        f"({100 * sched.atomic_write_fraction:.1f}% atomic)"
    )
    print(
        f"gnnadvisor: {groups.n_groups} neighbor groups, all atomic, "
        f"worst row contended by {groups.max_row_sharers} groups"
    )
    print(f"cusparse dispatch: {select_kernel(adjacency).reason}")


if __name__ == "__main__":
    dataset = sys.argv[1] if len(sys.argv) > 1 else "email-Euall"
    dim = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(dataset, dim)
