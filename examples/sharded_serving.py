"""Sharded serving: partition a graph across worker processes.

Partitions a power-law graph into column shards, shows the partition's
quality stats and halo map, serves requests through an
``isolation="shard"`` inference service (scatter -> per-shard SpMM in
separate processes -> halo gather), and reads the per-stage latency
attribution and per-shard health back out of the response.

Run:  python examples/sharded_serving.py [n_shards]
"""

import sys

import numpy as np

from repro.graphs import power_law_graph
from repro.serve import InferenceService, ServeConfig
from repro.shard import partition_graph


def main() -> None:
    n_shards = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    # 1. A power-law graph and a batch of dense feature operands.
    adjacency = power_law_graph(
        n_nodes=2_000, nnz=16_000, max_degree=400, seed=7
    )
    dense = np.random.default_rng(0).standard_normal(
        (adjacency.n_cols, 16)
    )
    print(
        f"graph: {adjacency.n_rows} nodes, {adjacency.nnz} edges, "
        f"{n_shards} shards"
    )

    # 2. Inspect the partition the router will serve from.  Each shard
    # owns a column range; rows touched by >= 2 shards are boundary
    # (halo) rows whose partial outputs the gather pass must sum.
    partition = partition_graph(adjacency, n_shards, strategy="block")
    stats = partition.stats
    print(
        f"partition: balance {stats.balance:.3f}, "
        f"edge cut {stats.edge_cut:.1%}, "
        f"{stats.halo_rows} halo rows "
        f"({stats.halo_bytes(dense.shape[1])} gather bytes surplus)"
    )

    # 3. Serve through process shards.  The service builds a ShardRouter
    # (one supervised worker pool per shard); every response is verified
    # against an independent oracle before release.
    config = ServeConfig(
        isolation="shard",
        num_shards=n_shards,
        max_batch=4,
        verify=True,
        request_timeout=30.0,
    )
    with InferenceService(config=config) as service:
        response = service.submit(adjacency, dense).result(timeout=60.0)
        assert response.ok, response.error
        expected = adjacency.multiply_dense(dense)
        assert np.allclose(response.output, expected, atol=1e-9)
        print("response verified against the dense reference")

        # 4. Latency attribution: where did the request's time go?
        stages = response.attribution["stages"]
        for stage in ("scatter", "kernel", "ipc", "halo"):
            if stage in stages:
                print(f"  stage {stage:8s} {stages[stage] * 1e3:8.3f} ms")

        # 5. Per-shard health: every shard pool reports restarts,
        # quarantine, and memory pressure; the router aggregates.
        shards = service.health().snapshot["shards"]
        print(
            f"health: {len(shards['shards'])} shard pools, "
            f"{shards['executed']} batches executed, "
            f"{shards['replays']} crash replays, "
            f"{shards['zero_copy']['per_request_graph_bytes_copied']} "
            "graph bytes copied per request"
        )


if __name__ == "__main__":
    main()
