"""Tune the merge-path cost for a workload (the Figure 6 knob).

The merge-path cost is MergePath-SpMM's single tunable: low costs spawn
more threads (more parallelism, more partial rows, more atomics); high
costs spawn fewer threads (less parallelism, fewer atomics).  This example
sweeps the cost for several dimension sizes on a workload of your choice
and prints the tuned values next to the paper's defaults.

Run:  python examples/cost_tuning.py [dataset ...]
"""

import sys

from repro import load_dataset, tune_merge_path_cost
from repro.core.thread_mapping import DEFAULT_COST_BY_DIM
from repro.experiments.reporting import format_table


def main(names: list[str]) -> None:
    matrices = [load_dataset(n).adjacency for n in names]
    print(f"workload: {', '.join(names)}\n")
    rows = []
    for dim in (2, 8, 16, 32, 128):
        sweep = tune_merge_path_cost(matrices, dim)
        best_index = list(sweep.costs).index(sweep.best_cost)
        rows.append(
            (
                dim,
                sweep.best_cost,
                DEFAULT_COST_BY_DIM[dim],
                f"{sweep.normalized_performance[best_index]:.2f}x",
                f"{sweep.normalized_performance[-1]:.2f}x",
            )
        )
    print(format_table(
        ["dim", "tuned_cost", "paper_default", "best_vs_cost2", "cost50_vs_cost2"],
        rows,
    ))
    print(
        "\nthe tuned cost feeds merge_path_spmm(..., cost=<tuned>); the "
        "paper's defaults were measured on a Quadro RTX 6000, the tuned "
        "column comes from this library's GPU model."
    )


if __name__ == "__main__":
    args = sys.argv[1:] or ["Cora", "Pubmed", "email-Euall"]
    main(args)
