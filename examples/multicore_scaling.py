"""Simulate SpMM scaling on the 1000-core Table I machine.

Runs MergePath-SpMM and GNNAdvisor through the trace-driven multicore
simulator at increasing core counts on a power-law input, printing the
normalized completion times, the compute/memory breakdown, and the
coherence statistics that explain GNNAdvisor's scaling wall (Section V-D).

Run:  python examples/multicore_scaling.py [dataset]
"""

import sys

from repro import load_dataset
from repro.experiments.reporting import format_table
from repro.multicore import run_gnnadvisor, run_mergepath, run_row_splitting

CORE_COUNTS = (64, 128, 256, 512, 1024)
DIM = 16


def main(name: str = "Cora") -> None:
    graph = load_dataset(name)
    stats = graph.statistics
    print(
        f"{name}: {stats.n_rows} nodes, {stats.nnz} non-zeros, max degree "
        f"{stats.max_degree} — one thread per core, dim {DIM}\n"
    )
    rows = []
    for kernel, runner in (
        ("mergepath", run_mergepath),
        ("gnnadvisor", run_gnnadvisor),
        ("row-split", run_row_splitting),
    ):
        results = [runner(graph.adjacency, DIM, c) for c in CORE_COUNTS]
        base = results[0].completion_cycles
        for cores, res in zip(CORE_COUNTS, results):
            total = res.compute_cycles + res.memory_cycles
            rows.append(
                (
                    kernel,
                    cores,
                    res.completion_cycles / base,
                    f"{res.completion_cycles / 1e3:.1f}k",
                    res.memory_cycles / total if total else 0.0,
                    res.l1_hit_rate,
                    res.directory.invalidations_sent,
                )
            )
    print(format_table(
        ["kernel", "cores", "norm_to_64", "cycles", "mem_frac", "l1_hit",
         "invalidations"],
        rows,
    ))
    print(
        "\nreading guide: MergePath-SpMM keeps invalidations (coherence "
        "traffic from atomic updates) low, so its completion time keeps "
        "dropping; GNNAdvisor's all-atomic updates serialize on the evil "
        "rows' output lines at high core counts; row-splitting needs no "
        "synchronization at all but is pinned to the core holding the "
        "evil rows, so adding cores barely helps."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Cora")
