"""Quickstart: MergePath-SpMM on a synthetic power-law graph.

Builds a power-law adjacency matrix, runs the load-balanced SpMM against
a dense feature matrix, verifies the product, and inspects the schedule —
the three things a new user of the library does first.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import merge_path_spmm, power_law_graph, row_statistics


def main() -> None:
    # 1. A graph with an "evil row": one node connected to 900 others.
    adjacency = power_law_graph(
        n_nodes=10_000, nnz=80_000, max_degree=900, seed=42
    )
    stats = row_statistics(adjacency)
    print(
        f"graph: {stats.n_rows} nodes, {stats.nnz} edges, "
        f"avg degree {stats.avg_degree:.1f}, max degree {stats.max_degree} "
        f"(imbalance {stats.imbalance_factor:.0f}x)"
    )

    # 2. Multiply against a dense feature matrix (hidden dimension 16).
    features = np.random.default_rng(0).random((10_000, 16))
    result = merge_path_spmm(adjacency, features)

    # 3. The product is exact.
    expected = adjacency.multiply_dense(features)
    assert np.allclose(result.output, expected)
    print(f"output: {result.output.shape}, verified against dense reference")

    # 4. The schedule tells the load-balancing story: every thread gets the
    # same bounded share of (rows + non-zeros), and only rows split across
    # threads are updated atomically.
    sched = result.schedule.statistics
    print(
        f"schedule: {sched.n_threads} threads, "
        f"<= {sched.items_per_thread} merge items each"
    )
    print(
        f"writes: {sched.regular_writes} regular, {sched.atomic_writes} "
        f"atomic ({100 * sched.atomic_write_fraction:.1f}% atomic) across "
        f"{sched.split_rows} split rows"
    )

    # 5. Compare with a row-splitting decomposition of the same graph: the
    # evil row makes its most-loaded thread hundreds of times heavier.
    from repro.baselines import RowSplitSchedule

    rs = RowSplitSchedule.build(adjacency, sched.n_threads)
    print(
        f"row-splitting imbalance at the same thread count: "
        f"{rs.load_imbalance:.0f}x (merge-path: "
        f"{sched.max_thread_items / max(1, sched.items_per_thread):.2f}x)"
    )


if __name__ == "__main__":
    main()
