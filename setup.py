"""Setup shim for offline editable installs (no `wheel` package available)."""

from setuptools import setup

setup()
