"""Run-everything entry point: ``python -m repro.experiments.harness``.

Runs any subset of the paper's experiments by name and prints (optionally
saves) their tables.  The benchmarks under ``benchmarks/`` wrap the same
harnesses with pytest-benchmark and shape assertions; this module is the
interactive/CI-free way to regenerate results.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from repro.experiments import (
    end_to_end_gnn,
    engine_balance,
    fig1_power_law,
    fig2_motivation,
    fig3_example,
    fig4_speedup,
    fig5_write_ops,
    fig6_cost_sweep,
    fig7_dimension_scaling,
    fig8_online_overhead,
    fig9_multicore_scaling,
    table1_config,
    table2_datasets,
)
from repro.experiments.reporting import ExperimentResult

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig1": fig1_power_law.run,
    "fig2": fig2_motivation.run,
    "fig3": fig3_example.run,
    "table1": table1_config.run,
    "table2": table2_datasets.run,
    "fig4": fig4_speedup.run,
    "fig5": fig5_write_ops.run,
    "fig6": fig6_cost_sweep.run,
    "fig7": fig7_dimension_scaling.run,
    "fig8": fig8_online_overhead.run,
    "fig9": fig9_multicore_scaling.run,
    "e2e": end_to_end_gnn.run,
    "engines": engine_balance.run,
}

# Rough single-run wall-clock on a 2-core box, to set expectations.
APPROX_SECONDS = {
    "fig1": 2, "fig2": 5, "fig3": 1, "table1": 1, "table2": 8, "fig4": 15,
    "fig5": 5, "fig6": 10, "fig7": 15, "fig8": 50, "fig9": 200, "e2e": 5,
    "engines": 3,
}


def run_experiments(
    names: list[str], output_dir: "Path | None" = None
) -> dict[str, ExperimentResult]:
    """Run the named experiments; optionally persist tables to a directory.

    Args:
        names: Keys of :data:`EXPERIMENTS` (e.g. ``["fig4", "fig5"]``).
        output_dir: When given, each table is written to
            ``<output_dir>/<name>.txt``.

    Returns:
        Name -> result mapping, in execution order.
    """
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment(s) {unknown}; known: {known}")
    results: dict[str, ExperimentResult] = {}
    for name in names:
        started = time.perf_counter()
        result = EXPERIMENTS[name]()
        result.notes.append(
            f"regenerated in {time.perf_counter() - started:.1f}s"
        )
        results[name] = result
        if output_dir is not None:
            output_dir.mkdir(parents=True, exist_ok=True)
            (output_dir / f"{name}.txt").write_text(result.format() + "\n")
    return results


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"which to run (default: all). Choices: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=None,
        help="also write each table to <dir>/<name>.txt",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(f"{name:8s} ~{APPROX_SECONDS[name]}s")
        return 0
    names = args.experiments or list(EXPERIMENTS)
    results = run_experiments(names, output_dir=args.output_dir)
    for result in results.values():
        print()
        result.show()
    return 0


if __name__ == "__main__":
    sys.exit(main())
