"""Run-everything entry point: ``python -m repro.experiments.harness``.

Runs any subset of the paper's experiments by name and prints (optionally
saves) their tables.  The benchmarks under ``benchmarks/`` wrap the same
harnesses with pytest-benchmark and shape assertions; this module is the
interactive/CI-free way to regenerate results.

With ``--profile`` (or ``--trace-out``) the whole batch runs inside an
:func:`repro.obs.profiled` session: every experiment gets a wall-clock
span, a metric summary is printed at the end, and one ``BENCH_<name>.json``
run record per experiment is exported (see :mod:`repro.obs.export`) so the
next ``--list`` can show *measured* runtimes instead of the static
estimates.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from pathlib import Path
from typing import Callable

from repro import obs
from repro.experiments import (
    end_to_end_gnn,
    engine_balance,
    fig1_power_law,
    fig2_motivation,
    fig3_example,
    fig4_speedup,
    fig5_write_ops,
    fig6_cost_sweep,
    fig7_dimension_scaling,
    fig8_online_overhead,
    fig9_multicore_scaling,
    table1_config,
    table2_datasets,
)
from repro.experiments.reporting import ExperimentResult

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig1": fig1_power_law.run,
    "fig2": fig2_motivation.run,
    "fig3": fig3_example.run,
    "table1": table1_config.run,
    "table2": table2_datasets.run,
    "fig4": fig4_speedup.run,
    "fig5": fig5_write_ops.run,
    "fig6": fig6_cost_sweep.run,
    "fig7": fig7_dimension_scaling.run,
    "fig8": fig8_online_overhead.run,
    "fig9": fig9_multicore_scaling.run,
    "e2e": end_to_end_gnn.run,
    "engines": engine_balance.run,
}

# Rough single-run wall-clock on a 2-core box — the *fallback* when no
# measured run record exists (see approx_seconds).
APPROX_SECONDS = {
    "fig1": 2, "fig2": 5, "fig3": 1, "table1": 1, "table2": 8, "fig4": 15,
    "fig5": 5, "fig6": 10, "fig7": 15, "fig8": 50, "fig9": 200, "e2e": 5,
    "engines": 3,
}


def approx_seconds(name: str, bench_dir: "Path | None" = None) -> float:
    """Expected wall-clock for one experiment, in seconds.

    Prefers the last *measured* run (the ``wall_seconds`` of the newest
    exported ``BENCH_<name>.json`` record), so the estimate tracks the
    machine and the code instead of drifting; falls back to the static
    :data:`APPROX_SECONDS` table when no record exists.
    """
    record = obs.latest_record(name=name, directory=bench_dir)
    if record is not None:
        measured = record.get("wall_seconds")
        if isinstance(measured, (int, float)) and measured >= 0:
            return float(measured)
    return float(APPROX_SECONDS.get(name, 0))


def _failure_result(
    name: str,
    exc: BaseException,
    partial_metrics: "list | None" = None,
) -> ExperimentResult:
    """Placeholder result recording a captured experiment failure.

    Keeps the full traceback and whatever metrics the experiment emitted
    before dying, so a failed batch entry is debuggable from its record
    alone.
    """
    summary = f"{type(exc).__name__}: {exc}"
    tail = traceback.format_exception(type(exc), exc, exc.__traceback__)
    return ExperimentResult(
        title=f"{name} (FAILED)",
        headers=["error"],
        rows=[(summary,)],
        notes=["".join(tail[-2:]).rstrip()],
        error=summary,
        traceback="".join(tail),
        partial_metrics=list(partial_metrics or []),
    )


def run_experiments(
    names: list[str],
    output_dir: "Path | None" = None,
    on_error: str = "raise",
    bench_dir: "Path | None" = None,
    timeout: "float | None" = None,
    retries: int = 0,
    checkpoint_path: "Path | str | None" = None,
    resume: bool = False,
) -> dict[str, ExperimentResult]:
    """Run the named experiments; optionally persist tables to a directory.

    Each experiment runs inside an ``experiment.<name>`` trace span and a
    ``time.experiment`` timer (both no-ops unless an
    :func:`repro.obs.profiled` session is active).  When metric collection
    is on, a ``BENCH_<name>.json`` run record holding the experiment's
    metric *delta* is exported after each experiment.

    Args:
        names: Keys of :data:`EXPERIMENTS` (e.g. ``["fig4", "fig5"]``).
        output_dir: When given, each table is written to
            ``<output_dir>/<name>.txt``.
        on_error: ``"raise"`` propagates the first experiment failure
            (library default); ``"record"`` captures it as a failed
            :class:`ExperimentResult` — full traceback and the metrics it
            emitted before dying included — and continues with the rest
            of the batch.
        bench_dir: Override directory for exported run records (default:
            ``$REPRO_BENCH_DIR`` or ``benchmarks/results``).
        timeout: Per-experiment wall-clock budget in seconds; an
            experiment that exceeds it fails with
            :class:`~repro.resilience.runtime.ExperimentTimeoutError`
            (and is retried/recorded like any other failure).
        retries: Extra attempts per failing experiment, with exponential
            backoff between attempts.
        checkpoint_path: When given, a
            :class:`~repro.resilience.checkpoint.BatchCheckpoint` at this
            path is updated (atomically) after every experiment.
        resume: Load ``checkpoint_path`` and skip experiments it already
            holds, rehydrating their stored results.

    Returns:
        Name -> result mapping, in execution order.  Failed experiments
        (``on_error="record"``) appear with ``result.error`` set.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment(s) {unknown}; known: {known}")

    checkpoint = None
    if checkpoint_path is not None:
        from repro.resilience.checkpoint import BatchCheckpoint

        checkpoint = BatchCheckpoint.open(checkpoint_path, names, resume=resume)
    elif resume:
        raise ValueError("resume=True requires checkpoint_path")

    results: dict[str, ExperimentResult] = {}
    registry = obs.get_registry()
    for name in names:
        if checkpoint is not None:
            stored = checkpoint.result_for(name)
            if stored is not None:
                stored.notes.append("resumed from checkpoint")
                results[name] = stored
                continue
        before = registry.snapshot() if registry is not None else []
        started = time.perf_counter()
        error: "BaseException | None" = None

        def run_once(name: str = name) -> ExperimentResult:
            with obs.span(f"experiment.{name}", category="experiment"):
                return EXPERIMENTS[name]()

        attempt = run_once
        if timeout is not None or retries:
            from repro.resilience import runtime

            if timeout is not None:
                attempt = lambda fn=attempt: runtime.call_with_timeout(
                    fn, timeout
                )
            if retries:
                attempt = lambda fn=attempt: runtime.retry_with_backoff(
                    fn, attempts=retries + 1
                )
        try:
            result = attempt()
        except Exception as exc:
            if on_error == "raise":
                raise
            error = exc
            partial = (
                obs.diff_snapshots(before, registry.snapshot())
                if registry is not None
                else []
            )
            result = _failure_result(name, exc, partial_metrics=partial)
        elapsed = time.perf_counter() - started
        obs.timer("time.experiment", experiment=name).observe(elapsed)
        if error is None:
            result.notes.append(f"regenerated in {elapsed:.1f}s")
        results[name] = result
        if checkpoint is not None and error is None:
            # Failures are not checkpointed: a resumed batch re-runs them.
            checkpoint.record(name, result)
        if registry is not None:
            record = obs.run_record(
                name,
                metrics=obs.diff_snapshots(before, registry.snapshot()),
                wall_seconds=elapsed,
                status="ok" if error is None else "error",
                error=None if error is None else f"{type(error).__name__}: {error}",
            )
            obs.write_run_record(record, directory=bench_dir)
        if output_dir is not None:
            output_dir.mkdir(parents=True, exist_ok=True)
            (output_dir / f"{name}.txt").write_text(result.format() + "\n")
    return results


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"which to run (default: all). Choices: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=None,
        help="also write each table to <dir>/<name>.txt",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect metrics; print a summary and export BENCH_*.json "
             "run records",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="write a Chrome trace (chrome://tracing JSON) of the run "
             "here; implies --profile",
    )
    parser.add_argument(
        "--bench-dir", type=Path, default=None,
        help="directory for exported run records "
             "(default: $REPRO_BENCH_DIR or benchmarks/results)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-experiment wall-clock budget; an experiment exceeding "
             "it is recorded as failed and the batch continues",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry each failing experiment up to N times with "
             "exponential backoff",
    )
    parser.add_argument(
        "--checkpoint", type=Path, default=None, metavar="PATH",
        help="batch checkpoint file, updated atomically after every "
             "completed experiment "
             "(default with --resume: <bench-dir>/harness_checkpoint.json)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="load the checkpoint and run only the experiments it does "
             "not already hold",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(f"{name:8s} ~{approx_seconds(name, args.bench_dir):.0f}s")
        return 0
    names = args.experiments or list(EXPERIMENTS)
    profile = args.profile or args.trace_out is not None

    checkpoint_path = args.checkpoint
    if checkpoint_path is None and args.resume:
        checkpoint_path = (
            obs.records_dir(args.bench_dir) / "harness_checkpoint.json"
        )
    run_kwargs = dict(
        output_dir=args.output_dir,
        on_error="record",
        bench_dir=args.bench_dir,
        timeout=args.timeout,
        retries=args.retries,
        checkpoint_path=checkpoint_path,
        resume=args.resume,
    )
    if profile:
        with obs.profiled(trace_path=args.trace_out) as session:
            results = run_experiments(names, **run_kwargs)
    else:
        results = run_experiments(names, **run_kwargs)
    for result in results.values():
        print()
        result.show()
    if profile:
        print()
        print(obs.render_text(session.snapshot(), title="profile summary"))
        if args.trace_out is not None:
            print(f"\ntrace written to {args.trace_out}")
    failed = [name for name, result in results.items() if result.failed]
    if failed:
        print(
            f"\n{len(failed)} experiment(s) failed: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
