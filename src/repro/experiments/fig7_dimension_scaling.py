"""Figure 7: speedup at different dimension sizes.

MergePath-SpMM, GNNAdvisor and GNNAdvisor-opt across dimension sizes 2 to
128, normalized to GNNAdvisor at dimension 128.  MergePath-SpMM uses the
per-dimension tuned merge-path cost (the paper determines it empirically
per dimension; we use the model-tuned value from the Figure 6 machinery so
the experiment is self-consistent).
"""

from __future__ import annotations

from repro.core.cost_tuning import tune_merge_path_cost
from repro.experiments.reporting import ExperimentResult, geometric_mean
from repro.gpu import kernel_time, quadro_rtx_6000
from repro.graphs import load_dataset

DIMS = (128, 64, 32, 16, 8, 4, 2)
DEFAULT_GRAPHS = (
    "Cora", "Pubmed", "email-Euall", "Nell", "com-Amazon", "PROTEINS_full",
)
KERNELS = ("gnnadvisor", "gnnadvisor-opt", "mergepath")


def run(names=DEFAULT_GRAPHS, dims=DIMS, seed: int = 2023, device=None
        ) -> ExperimentResult:
    """Geomean speedups vs GNNAdvisor@128 per kernel and dimension."""
    device = device or quadro_rtx_6000()
    matrices = {n: load_dataset(n, seed=seed).adjacency for n in names}
    baseline = {
        n: kernel_time("gnnadvisor", m, 128, device).cycles
        for n, m in matrices.items()
    }
    tuned_cost = {
        dim: tune_merge_path_cost(list(matrices.values()), dim,
                                  device=device).best_cost
        for dim in dims
    }
    rows = []
    for kernel in KERNELS:
        row = [kernel]
        for dim in dims:
            ratios = []
            for name, matrix in matrices.items():
                kwargs = (
                    {"cost": tuned_cost[dim]} if kernel == "mergepath" else {}
                )
                cycles = kernel_time(kernel, matrix, dim, device, **kwargs).cycles
                ratios.append(baseline[name] / cycles)
            row.append(geometric_mean(ratios))
        rows.append(tuple(row))
    return ExperimentResult(
        title="Figure 7: speedup vs GNNAdvisor at dim 128",
        headers=["kernel"] + [f"d{d}" for d in dims],
        rows=rows,
        notes=[
            f"mergepath uses model-tuned costs: {tuned_cost}",
            "expected shape: GNNAdvisor saturates below dim 32; "
            "GNNAdvisor-opt keeps improving (paper ~9x at dim 2); "
            "MergePath-SpMM highest everywhere (paper 27.6x at dim 2)",
        ],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
