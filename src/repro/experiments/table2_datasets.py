"""Table II: sparse input graphs and their statistics.

Regenerates the dataset table, comparing each synthetic stand-in's
*measured* statistics against the published values it was matched to
(nodes and non-zeros match exactly by construction; the maximum degree
matches exactly; the average degree follows from nodes and non-zeros).
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult
from repro.formats.stats import row_statistics
from repro.graphs import DATASETS, load_dataset


def run(seed: int = 2023) -> ExperimentResult:
    """Published versus generated statistics for all 23 datasets."""
    rows = []
    for spec in DATASETS.values():
        stats = row_statistics(load_dataset(spec.name, seed=seed).adjacency)
        rows.append(
            (
                "I" if spec.is_power_law else "II",
                spec.name,
                spec.n_nodes,
                stats.n_rows,
                spec.nnz,
                stats.nnz,
                round(spec.avg_degree, 1),
                round(stats.avg_degree, 1),
                spec.max_degree,
                stats.max_degree,
            )
        )
    return ExperimentResult(
        title="Table II: datasets (published vs generated)",
        headers=[
            "type", "graph", "nodes", "gen_nodes", "nnz", "gen_nnz",
            "avg_deg", "gen_avg", "max_deg", "gen_max",
        ],
        rows=rows,
        notes=["generated columns must match published ones exactly"],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
