"""Table I: the 1000-core simulator configuration."""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult
from repro.multicore import table1_machine


def run(n_cores: int = 1024) -> ExperimentResult:
    """Render the simulated machine's parameters in Table I layout."""
    machine = table1_machine(n_cores)
    rows = [
        ("Number of Cores",
         f"{machine.n_cores} single-threaded, in-order @ "
         f"{machine.clock_ghz:g} GHz"),
        ("L1-D cache per core",
         f"{machine.l1.size_bytes // 1024} KB, "
         f"{machine.l1.associativity}-way assoc., "
         f"{machine.l1.hit_cycles} cycle"),
        ("Shared L2 last-level cache",
         f"{machine.l2_slice.size_bytes // 1024} KB per-core slice "
         f"({machine.total_l2_bytes // (1024 * 1024)} MB total)"),
        ("Directory protocol",
         f"invalidation-based MESI, limited-{machine.directory_pointers}"),
        ("Num. memory controllers", machine.dram.n_controllers),
        ("DRAM",
         f"{machine.dram.bandwidth_gbps:g} GB/s bandwidth, "
         f"{machine.dram.latency_ns:g} ns latency"),
        ("Network",
         f"{machine.mesh_width}x{machine.mesh_height} 2-D mesh, X-Y "
         f"routing, {machine.noc.hop_cycles}-cycle hops, "
         f"{machine.noc.flit_bits}-bit flits, link contention only"),
        ("SIMD per core", f"{machine.simd_width} x 16-bit vector ops"),
    ]
    return ExperimentResult(
        title=f"Table I: simulator parameters ({n_cores} cores)",
        headers=["parameter", "value"],
        rows=rows,
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
