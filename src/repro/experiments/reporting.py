"""Shared result container and table formatting for experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def geometric_mean(values) -> float:
    """Geometric mean of positive values (the paper's aggregate)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("geometric mean of an empty sequence")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: list[str], rows: list[tuple]) -> str:
    """Render an aligned plain-text table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Rows regenerating one paper table/figure.

    Attributes:
        title: What the result reproduces (e.g. ``"Figure 4"``).
        headers: Column names.
        rows: Data rows, one tuple per printed line.
        notes: Free-form remarks (aggregates, deviations, parameters).
        error: When the harness captured a failure instead of a table,
            the ``"ExcType: message"`` string (``None`` on success).
        traceback: Full traceback of a harness-captured failure
            (``None`` on success).
        partial_metrics: Obs metric deltas accumulated before a captured
            failure (empty on success or when collection was off) — the
            experiment's partial progress, for post-mortems.
    """

    title: str
    headers: list[str]
    rows: list[tuple]
    notes: list[str] = field(default_factory=list)
    error: "str | None" = None
    traceback: "str | None" = None
    partial_metrics: list = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Whether this result records a harness-captured failure."""
        return self.error is not None

    def to_dict(self) -> dict:
        """JSON-serializable form (checkpoint files, run records)."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "error": self.error,
            "traceback": self.traceback,
            "partial_metrics": list(self.partial_metrics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rehydrate a result serialized with :meth:`to_dict`."""
        return cls(
            title=data["title"],
            headers=list(data["headers"]),
            rows=[tuple(row) for row in data["rows"]],
            notes=list(data.get("notes", [])),
            error=data.get("error"),
            traceback=data.get("traceback"),
            partial_metrics=list(data.get("partial_metrics", [])),
        )

    def format(self) -> str:
        parts = [f"=== {self.title} ===", format_table(self.headers, self.rows)]
        if self.error is not None:
            parts.append(f"  ! FAILED: {self.error}")
        parts.extend(f"  * {note}" for note in self.notes)
        return "\n".join(parts)

    def show(self) -> None:
        print(self.format())

    def column(self, name: str) -> list:
        """All values of one column, by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]
