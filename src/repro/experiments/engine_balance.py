"""Two-engine underutilization study (Section I motivation, extension).

The paper's introduction argues that HyGCN-style designs — separate
SpGEMM (aggregation) and SpMM (combination) engines — "suffer from
underutilization of either engine due to its graph input dependence".
This harness quantifies that: per dataset, the busy fractions of the two
engines, which one bottlenecks, and the speedup a unified engine of the
same total MACs would achieve.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.hygcn import HyGCNModel
from repro.experiments.reporting import ExperimentResult, geometric_mean
from repro.formats import CSRMatrix
from repro.graphs import load_dataset

DEFAULT_GRAPHS = ("Cora", "Pubmed", "Wiki-Vote", "Nell", "PROTEINS_full")
FEATURE_DIM = 64
FEATURE_DENSITY = 0.3
OUT_DIM = 16


def _sparse_features(n: int, dim: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    lengths = rng.binomial(dim, density, size=n).astype(np.int64)
    row_pointers = np.concatenate(([0], np.cumsum(lengths)))
    cols = rng.integers(0, dim, size=int(lengths.sum()), dtype=np.int64)
    return CSRMatrix.from_arrays(row_pointers, cols, n_cols=dim)


def run(names=DEFAULT_GRAPHS, seed: int = 2023) -> ExperimentResult:
    """Engine balance per graph for one GCN layer ``(A @ X) @ W``."""
    model = HyGCNModel()
    rows = []
    unified_speedups = []
    for name in names:
        adjacency = load_dataset(name, seed=seed).adjacency
        features = _sparse_features(
            adjacency.n_cols, FEATURE_DIM, FEATURE_DENSITY, seed
        )
        timing = model.layer_time(adjacency, features, OUT_DIM)
        unified = model.unified_layer_time(adjacency, features, OUT_DIM)
        speedup = timing.layer_seconds / unified if unified > 0 else 1.0
        unified_speedups.append(speedup)
        rows.append(
            (
                name,
                timing.aggregation_seconds * 1e6,
                timing.combination_seconds * 1e6,
                timing.bottleneck,
                timing.idle_fraction,
                speedup,
            )
        )
    return ExperimentResult(
        title="Two-engine (HyGCN-style) balance for one GCN layer",
        headers=[
            "graph", "agg_us", "comb_us", "bottleneck", "idle_frac",
            "unified_speedup",
        ],
        rows=rows,
        notes=[
            f"geomean unified-engine speedup "
            f"{geometric_mean(unified_speedups):.2f}x — the paper's "
            "argument for unified designs",
            f"feature matrix: {FEATURE_DIM} wide at {FEATURE_DENSITY:.0%} "
            "density, output width 16",
        ],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
