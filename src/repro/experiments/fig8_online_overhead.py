"""Figure 8: online scheduling overhead in a 2-layer GCN setting.

In the online setting the MergePath-SpMM schedule is recomputed once per
inference and reused by the model's two SpMM kernel invocations.  The
overhead is the modeled scheduling time as a fraction of total modeled
time (schedule + two kernels) per input graph.
"""

from __future__ import annotations

from repro.core.scheduler import SchedulingMode
from repro.experiments.reporting import ExperimentResult, geometric_mean
from repro.gnn import GCN, InferenceEngine
from repro.graphs import load_dataset, power_law_dataset_names

DIM = 16


def run(names=None, seed: int = 2023) -> ExperimentResult:
    """Per-graph online scheduling overheads for a 2-layer GCN."""
    if names is None:
        names = power_law_dataset_names()
    rows = []
    overheads = []
    for name in names:
        graph = load_dataset(name, seed=seed)
        features = graph.random_features(DIM, seed=seed)
        model = GCN.random([DIM, DIM, DIM], seed=seed)
        engine = InferenceEngine(mode=SchedulingMode.ONLINE)
        report = engine.infer(model, graph, features)
        assert report.schedule_computations == 1, "online = 1 schedule/inference"
        assert report.kernel_invocations == 2
        overheads.append(report.scheduling_overhead)
        rows.append(
            (
                name,
                report.modeled_schedule_cycles,
                report.modeled_kernel_cycles,
                100.0 * report.scheduling_overhead,
            )
        )
    notes = [
        f"geomean overhead {100 * geometric_mean(overheads):.1f}% "
        "(paper: ~2%, max ~10% on Cora, <1% on com-Amazon)",
    ]
    return ExperimentResult(
        title="Figure 8: online scheduling overhead (2-layer GCN, dim 16)",
        headers=["graph", "sched_cycles", "kernel_cycles", "overhead_%"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
