"""Figure 2: motivation — existing accelerators and GPU kernels.

Kernel completion times for the AWB-GCN accelerator model and four GPU
implementations (row-splitting, GNNAdvisor, merge-path with serial fix-up,
and the proposed MergePath-SpMM) on the four graphs whose AWB-GCN times
the paper quotes.  Nell uses a hidden dimension of 64, the others 16,
exactly as in the paper.
"""

from __future__ import annotations

from repro.baselines import AWBGCNModel
from repro.experiments.reporting import ExperimentResult
from repro.gpu import kernel_time, quadro_rtx_6000
from repro.graphs import load_dataset

WORKLOADS = (("Cora", 16), ("Citeseer", 16), ("Pubmed", 16), ("Nell", 64))
GPU_KERNELS = ("row-splitting", "gnnadvisor", "merge-path-serial", "mergepath")


def run(seed: int = 2023, device=None) -> ExperimentResult:
    """Completion times (microseconds) for every Figure 2 bar."""
    device = device or quadro_rtx_6000()
    awb = AWBGCNModel()
    rows = []
    for name, dim in WORKLOADS:
        adjacency = load_dataset(name, seed=seed).adjacency
        row = [name, dim, awb.completion_time(adjacency, dim) * 1e6]
        for kernel in GPU_KERNELS:
            row.append(kernel_time(kernel, adjacency, dim, device).microseconds)
        rows.append(tuple(row))
    return ExperimentResult(
        title="Figure 2: kernel completion times (us)",
        headers=["graph", "dim", "awb-gcn"] + list(GPU_KERNELS),
        rows=rows,
        notes=[
            "expected shape: AWB-GCN best on Cora/Citeseer; merge-path "
            "(serial) worst there; GNNAdvisor ahead of AWB-GCN on Nell; "
            "AWB-GCN ahead of row-splitting on Nell",
        ],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
