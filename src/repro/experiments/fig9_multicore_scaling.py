"""Figure 9: performance scaling on the 1000-core multicore machine.

MergePath-SpMM and GNNAdvisor completion times at 64-1024 cores with a
one-to-one thread-to-core mapping, normalized to each kernel's 64-core
run, on the paper's representative inputs (Cora, Pubmed, Nell, com-Amazon
from Type I, Twitter-partial from Type II) at dimension 16.

Simulator speed policy (DESIGN.md §5): the two largest inputs are
downscaled with preserved degree shape; the paper applies the same kind of
input reduction "due to simulator speed constraints".
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult
from repro.graphs.datasets import load_dataset
from repro.multicore import run_gnnadvisor, run_mergepath

CORE_COUNTS = (64, 128, 256, 512, 1024)
# (name, downscale factor)
DEFAULT_GRAPHS = (
    ("Cora", 1.0),
    ("Pubmed", 1.0),
    ("Nell", 1.0),
    ("com-Amazon", 0.25),
    ("Twitter-partial", 0.25),
)
DIM = 16


def run(
    graphs=DEFAULT_GRAPHS,
    core_counts=CORE_COUNTS,
    seed: int = 2023,
) -> ExperimentResult:
    """Normalized completion times per kernel, graph and core count."""
    rows = []
    for name, scale in graphs:
        adjacency = load_dataset(name, seed=seed, scale=scale).adjacency
        for kernel, runner in (
            ("mergepath", run_mergepath),
            ("gnnadvisor", run_gnnadvisor),
        ):
            results = [runner(adjacency, DIM, cores) for cores in core_counts]
            base = results[0].completion_cycles
            row = [name, kernel]
            row.extend(r.completion_cycles / base for r in results)
            # Compute-vs-memory split of the largest configuration.
            last = results[-1]
            total = last.compute_cycles + last.memory_cycles
            row.append(last.memory_cycles / total if total else 0.0)
            rows.append(tuple(row))
    return ExperimentResult(
        title="Figure 9: multicore completion time normalized to 64 cores",
        headers=["graph", "kernel"]
        + [f"{c}c" for c in core_counts]
        + ["mem_frac@max"],
        rows=rows,
        notes=[
            "expected shape: GNNAdvisor stops scaling on evil-row graphs "
            "(Cora, Nell); MergePath-SpMM scales to 1024 cores except "
            "Cora; memory stalls scale worse than compute",
            "com-Amazon and Twitter-partial downscaled to 25% for "
            "simulator speed (DESIGN.md §5)",
        ],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
