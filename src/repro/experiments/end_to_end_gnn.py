"""End-to-end GNN inference comparison (extension experiment).

The paper evaluates the `A @ XW` kernel in isolation; this harness closes
the loop: a 2-layer GCN's full modeled inference time (both aggregation
kernels plus scheduling, per Section III-D's offline setting) for
MergePath-SpMM versus GNNAdvisor-style aggregation, over representative
graphs.  The kernel-level advantage should survive end to end because
aggregation dominates the model's runtime.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult, geometric_mean
from repro.gpu import kernel_time, quadro_rtx_6000
from repro.graphs import load_dataset

DEFAULT_GRAPHS = (
    "Cora", "Pubmed", "Wiki-Vote", "email-Euall", "Nell", "com-Amazon",
    "PROTEINS_full", "DD",
)
LAYER_DIMS = (16, 16)  # hidden widths of the 2-layer GCN


def run(names=DEFAULT_GRAPHS, seed: int = 2023, device=None) -> ExperimentResult:
    """Modeled end-to-end inference time per aggregation backend."""
    device = device or quadro_rtx_6000()
    rows = []
    speedups = []
    for name in names:
        adjacency = load_dataset(name, seed=seed).adjacency
        ours = sum(
            kernel_time("mergepath", adjacency, dim, device).cycles
            for dim in LAYER_DIMS
        )
        baseline = sum(
            kernel_time("gnnadvisor", adjacency, dim, device).cycles
            for dim in LAYER_DIMS
        )
        speedup = baseline / ours
        speedups.append(speedup)
        rows.append(
            (
                name,
                device.cycles_to_microseconds(ours),
                device.cycles_to_microseconds(baseline),
                speedup,
            )
        )
    return ExperimentResult(
        title="End-to-end 2-layer GCN inference (modeled, dim 16)",
        headers=["graph", "mergepath_us", "gnnadvisor_us", "speedup"],
        rows=rows,
        notes=[
            f"geomean end-to-end speedup "
            f"{geometric_mean(speedups):.2f}x — should track the Figure 4 "
            "kernel-level geomean since aggregation dominates",
        ],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
