"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes ``run(...) -> ExperimentResult`` returning the rows
the paper's figure/table plots, plus a ``main()`` that prints them.  The
mapping to the paper is recorded in DESIGN.md §3 and the measured-vs-paper
comparison in EXPERIMENTS.md.

Modules and the artifacts they regenerate:

* :mod:`repro.experiments.fig1_power_law` — Figure 1 degree distributions.
* :mod:`repro.experiments.fig2_motivation` — Figure 2 kernel times.
* :mod:`repro.experiments.fig3_example` — Figure 3 worked example.
* :mod:`repro.experiments.table1_config` — Table I machine parameters.
* :mod:`repro.experiments.table2_datasets` — Table II dataset statistics.
* :mod:`repro.experiments.fig4_speedup` — Figure 4 speedups at dim 16.
* :mod:`repro.experiments.fig5_write_ops` — Figure 5 write distribution.
* :mod:`repro.experiments.fig6_cost_sweep` — Figure 6 cost sweeps.
* :mod:`repro.experiments.fig7_dimension_scaling` — Figure 7.
* :mod:`repro.experiments.fig8_online_overhead` — Figure 8.
* :mod:`repro.experiments.fig9_multicore_scaling` — Figure 9.
"""

from repro.experiments.reporting import ExperimentResult, format_table, geometric_mean

__all__ = ["ExperimentResult", "format_table", "geometric_mean"]
