"""Figure 6: merge-path cost sweep per dimension size.

For every dimension size the merge-path cost is swept from 2 to 50; the
figure reports performance normalized to cost 2 and the best-performing
cost.  Aggregation is the geometric mean over the evaluated suite, as in
the paper.
"""

from __future__ import annotations

from repro.core.cost_tuning import DEFAULT_COST_GRID, tune_merge_path_cost
from repro.core.thread_mapping import DEFAULT_COST_BY_DIM
from repro.experiments.reporting import ExperimentResult
from repro.gpu import quadro_rtx_6000
from repro.graphs import load_dataset

DIMS = (2, 4, 8, 16, 32, 64, 128)
# A representative slice of the suite: small/medium/large power-law plus a
# structured control.  The full 23-graph sweep is available by passing
# names explicitly (it multiplies runtime by ~4).
DEFAULT_GRAPHS = ("Cora", "Pubmed", "email-Euall", "Nell", "PROTEINS_full")


def run(
    names=DEFAULT_GRAPHS,
    dims=DIMS,
    costs=DEFAULT_COST_GRID,
    seed: int = 2023,
    device=None,
) -> ExperimentResult:
    """Sweep costs per dimension; report normalized curves and best cost."""
    device = device or quadro_rtx_6000()
    matrices = [load_dataset(n, seed=seed).adjacency for n in names]
    rows = []
    for dim in dims:
        sweep = tune_merge_path_cost(matrices, dim, costs=costs, device=device)
        row = [dim, sweep.best_cost, DEFAULT_COST_BY_DIM.get(dim, "-")]
        row.extend(sweep.normalized_performance.round(3))
        rows.append(tuple(row))
    headers = ["dim", "best_cost", "paper_best"] + [f"c{c}" for c in costs]
    return ExperimentResult(
        title="Figure 6: normalized performance vs merge-path cost",
        headers=headers,
        rows=rows,
        notes=[
            "performance columns are normalized to cost 2 (higher is better)",
            f"suite: {', '.join(names)}",
        ],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
