"""Figure 4: speedup over GNNAdvisor at the default dimension size of 16.

cuSPARSE, GNNAdvisor-opt and MergePath-SpMM (merge-path cost 20, the
Figure 6 winner for dim 16) against the GNNAdvisor baseline on every
Table II graph, with the paper's geometric-mean aggregates.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult, geometric_mean
from repro.gpu import kernel_time, quadro_rtx_6000
from repro.graphs import (
    load_dataset,
    power_law_dataset_names,
    structured_dataset_names,
)

DIM = 16
MERGE_PATH_COST = 20


def run(names=None, seed: int = 2023, device=None) -> ExperimentResult:
    """Per-graph speedups and the Figure 4 geometric means."""
    device = device or quadro_rtx_6000()
    if names is None:
        names = power_law_dataset_names() + structured_dataset_names()
    power_law = set(power_law_dataset_names())
    rows = []
    speedups = {"cusparse": [], "gnnadvisor-opt": [], "mergepath": []}
    for name in names:
        adjacency = load_dataset(name, seed=seed).adjacency
        base = kernel_time("gnnadvisor", adjacency, DIM, device).cycles
        row = [("I" if name in power_law else "II"), name]
        for kernel in speedups:
            kwargs = {"cost": MERGE_PATH_COST} if kernel == "mergepath" else {}
            speedup = base / kernel_time(kernel, adjacency, DIM, device,
                                         **kwargs).cycles
            speedups[kernel].append(speedup)
            row.append(speedup)
        rows.append(tuple(row))
    notes = [
        f"geomean speedup over GNNAdvisor: "
        f"cuSPARSE={geometric_mean(speedups['cusparse']):.2f}x, "
        f"GNNAdvisor-opt={geometric_mean(speedups['gnnadvisor-opt']):.2f}x, "
        f"MergePath-SpMM={geometric_mean(speedups['mergepath']):.2f}x",
        "paper reports geomeans: GNNAdvisor-opt 1.41x, MergePath-SpMM "
        "1.85x (31% over GNNAdvisor-opt)",
    ]
    return ExperimentResult(
        title="Figure 4: speedup over GNNAdvisor (dim 16)",
        headers=["type", "graph", "cusparse", "gnnadvisor-opt", "mergepath"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
