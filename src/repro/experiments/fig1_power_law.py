"""Figure 1: power-law degree distributions across application domains.

The paper plots log-log degree distributions for graphs from diverse
domains to motivate the load-imbalance problem.  This harness fits the
power-law tail of representative Type I datasets (plus Type II controls)
and reports the exponent, fit quality, and dynamic range — the
quantitative content of the figure.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult
from repro.formats.stats import row_statistics
from repro.graphs import load_dataset
from repro.graphs.degree import fit_power_law, looks_power_law

DEFAULT_GRAPHS = (
    "Cora",
    "Wiki-Vote",
    "email-Enron",
    "Nell",
    "soc-BlogCatalog",
    "PROTEINS_full",
    "Yeast",
)


def run(names=DEFAULT_GRAPHS, seed: int = 2023) -> ExperimentResult:
    """Fit degree-distribution tails for the selected datasets."""
    rows = []
    for name in names:
        graph = load_dataset(name, seed=seed)
        stats = row_statistics(graph.adjacency)
        fit = fit_power_law(graph.adjacency)
        rows.append(
            (
                name,
                stats.avg_degree,
                stats.max_degree,
                fit.alpha,
                fit.r_squared,
                fit.dynamic_range,
                "power-law" if looks_power_law(graph.adjacency) else "structured",
            )
        )
    return ExperimentResult(
        title="Figure 1: degree-distribution power-law fits",
        headers=[
            "graph",
            "avg_deg",
            "max_deg",
            "alpha",
            "r^2",
            "dyn_range",
            "classified",
        ],
        rows=rows,
        notes=[
            "Type I datasets should classify as power-law, Type II as structured",
        ],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
