"""Figure 5: atomic versus regular output writes in MergePath-SpMM.

For every Table II graph at dimension 16 (merge-path cost 20), the share
of output-write operations performed atomically versus regularly — taken
directly from the schedule's write accounting, which the executors match
operation for operation.
"""

from __future__ import annotations

from repro.core import schedule_for_cost
from repro.experiments.reporting import ExperimentResult
from repro.graphs import (
    load_dataset,
    power_law_dataset_names,
    structured_dataset_names,
)

MERGE_PATH_COST = 20


def run(names=None, seed: int = 2023) -> ExperimentResult:
    """Atomic/regular write distribution per graph."""
    if names is None:
        names = power_law_dataset_names() + structured_dataset_names()
    power_law = set(power_law_dataset_names())
    rows = []
    for name in names:
        adjacency = load_dataset(name, seed=seed).adjacency
        stats = schedule_for_cost(
            adjacency, MERGE_PATH_COST, min_threads=1024
        ).statistics
        rows.append(
            (
                "I" if name in power_law else "II",
                name,
                stats.atomic_writes,
                stats.regular_writes,
                stats.atomic_write_fraction,
                stats.atomic_nnz_fraction,
                stats.split_rows,
            )
        )
    return ExperimentResult(
        title="Figure 5: write-operation distribution (dim 16, cost 20)",
        headers=[
            "type", "graph", "atomic", "regular", "atomic_frac",
            "atomic_nnz_frac", "split_rows",
        ],
        rows=rows,
        notes=[
            "expected shape: Type II graphs nearly all-regular; "
            "email-Euall far fewer atomics than email-Enron; high-degree "
            "small-row-count graphs (Wiki-Vote, artist, soc-BlogCatalog) "
            "atomic-heavy",
        ],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
