"""Figure 3: the paper's worked merge-path example.

A 10-row, 16-non-zero matrix decomposed across four threads with a
merge-path cost of 7.  The row-pointer array is reconstructed from the
constraints the paper's walk-through states: thread 2's start coordinate
is (1, 6) with ``start_nz = 6`` (a partial row), its end coordinate is
(3, 11) with a complete end row, and it owns rows 1-2 with five non-zeros.
"""

from __future__ import annotations

import numpy as np

from repro.core import build_schedule
from repro.experiments.reporting import ExperimentResult
from repro.formats import CSRMatrix

# Row pointers consistent with every statement in the paper's example:
# row 0 empty, row 1 holds non-zeros 0-7 (ends at 8), row 2 ends at 11.
EXAMPLE_ROW_POINTERS = (0, 0, 8, 11, 12, 12, 13, 14, 15, 16, 16)
N_THREADS = 4


def example_matrix() -> CSRMatrix:
    """The Figure 3 matrix (10 rows, 16 non-zeros)."""
    row_pointers = np.array(EXAMPLE_ROW_POINTERS, dtype=np.int64)
    nnz = int(row_pointers[-1])
    return CSRMatrix.from_arrays(row_pointers, np.arange(nnz) % len(
        EXAMPLE_ROW_POINTERS
    ) % 10)


def run() -> ExperimentResult:
    """Per-thread merge-path assignments for the worked example."""
    schedule = build_schedule(example_matrix(), N_THREADS)
    schedule.validate()
    rows = []
    for t in range(N_THREADS):
        a = schedule.assignment(t)
        rows.append(
            (
                t + 1,  # the paper numbers threads from 1
                f"({a.start_row}, {a.nnz_range[0]})",
                f"({a.end_row}, {a.nnz_range[1]})",
                a.start_nz,
                a.end_nz,
                a.n_nonzeros,
            )
        )
    return ExperimentResult(
        title="Figure 3: merge-path decomposition of the worked example",
        headers=["thread", "start(row,nnz)", "end(row,nnz)", "start_nz",
                 "end_nz", "nnz"],
        rows=rows,
        notes=[
            "thread 2 must start at (1, 6) with start_nz=6 and end at "
            "(3, 11) with a complete end row (paper Section III)",
        ],
    )


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
