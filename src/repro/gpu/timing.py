"""The GPU timing model: per-warp workload -> modeled kernel cycles.

The model composes six mechanisms, each a first-order GPU behaviour the
paper's analysis leans on:

1. **Issue throughput** — every SM issues roughly one warp-instruction per
   cycle; a kernel's issue load is spread over ``min(n_sms, n_warps)``
   SMs.  SIMD packing (GNNAdvisor-opt, MergePath's thread mapping) lowers
   the issue load; divergence raises it.
2. **Memory bandwidth** — total traffic over peak DRAM bytes/cycle.
3. **Little's-law memory throughput** — the memory system needs enough
   outstanding requests to reach peak bandwidth; with few resident warps
   (each sustaining ``mem_parallelism`` outstanding loads) the achievable
   request rate is ``outstanding / latency``.  This is what punishes
   low-parallelism schedules: very high merge-path costs, the serial
   merge-path baseline at small thread counts, row-splitting on small
   inputs.
4. **Straggler span** — a single warp cannot finish faster than its own
   dependent chain: its issue cycles plus its transactions served at
   ``latency / mem_parallelism`` apiece.  This is what serializes evil
   rows in row-per-warp kernels.
5. **Atomic updates** — read-modify-write traffic served at a fraction of
   peak bandwidth, plus serialization of updates contending on the same
   output row (hotspot).  Atomics are charged additively: the RMW path is
   dependent traffic at the end of each work unit.
6. **Launch overhead** — fixed cost per kernel invocation.

``total = launch + max(bandwidth, little, span) + issue + atomic + serial``

Issue is additive rather than folded into the max: at the modest occupancy
levels SpMM kernels run at, instruction issue and memory service overlap
only partially, and the additive form is what creates the measured
interior optimum of the merge-path cost sweep (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.gpu.device import GPUDevice
from repro.gpu.workload import GPUWorkload
from repro.resilience import faults


@dataclass(frozen=True)
class KernelTiming:
    """Modeled execution time of one kernel, with component breakdown.

    All components are in device cycles; ``microseconds`` converts the
    total using the device clock.
    """

    label: str
    device_name: str
    cycles: float
    issue_cycles: float
    bandwidth_cycles: float
    little_cycles: float
    span_cycles: float
    atomic_cycles: float
    hotspot_cycles: float
    serial_cycles: float
    launch_cycles: float
    n_warps: int
    microseconds: float

    @property
    def memory_cycles(self) -> float:
        """The binding memory-side term."""
        return max(self.bandwidth_cycles, self.little_cycles, self.span_cycles)

    @property
    def bound_by(self) -> str:
        """Which component binds the modeled time."""
        components = {
            "issue": self.issue_cycles,
            "bandwidth": self.bandwidth_cycles,
            "little": self.little_cycles,
            "span": self.span_cycles,
            "atomic": max(self.atomic_cycles, self.hotspot_cycles),
            "serial": self.serial_cycles,
        }
        return max(components, key=components.get)


def _self_check(timing: KernelTiming) -> None:
    """Reject non-physical kernel times (the model's self-check).

    A halted warp (injected or real) makes its dependent chain — and the
    modeled total — unbounded; corrupt workloads produce NaN or negative
    components.  Either way the timing is evidence of an execution fault,
    not a measurement, so it must never flow into a figure silently.
    """
    for component, cycles in (
        ("total", timing.cycles),
        ("issue", timing.issue_cycles),
        ("bandwidth", timing.bandwidth_cycles),
        ("little", timing.little_cycles),
        ("span", timing.span_cycles),
        ("atomic", timing.atomic_cycles),
        ("hotspot", timing.hotspot_cycles),
        ("serial", timing.serial_cycles),
    ):
        if not np.isfinite(cycles) or cycles < 0:
            faults.detected_externally("gpu-timing")
            raise faults.ExecutionFaultError(
                f"kernel {timing.label!r}: {component} component is "
                f"{cycles} cycles — a warp halted or the workload is corrupt"
            )


def _record_timing(timing: KernelTiming) -> None:
    """Publish a kernel's cycle breakdown as labeled metrics.

    One gauge per (kernel, component) — repeated simulations of the same
    kernel keep the last breakdown — plus a histogram of totals so sweeps
    retain the distribution.
    """
    for component, cycles in (
        ("total", timing.cycles),
        ("issue", timing.issue_cycles),
        ("bandwidth", timing.bandwidth_cycles),
        ("little", timing.little_cycles),
        ("span", timing.span_cycles),
        ("atomic", timing.atomic_cycles),
        ("hotspot", timing.hotspot_cycles),
        ("serial", timing.serial_cycles),
        ("launch", timing.launch_cycles),
    ):
        obs.gauge(
            "gpu.kernel.cycles", kernel=timing.label, component=component
        ).set(float(cycles))
    obs.counter("gpu.kernels_simulated").inc()
    obs.counter("gpu.kernels_simulated_by_label", kernel=timing.label).inc()
    obs.histogram("gpu.kernel.total_cycles", kernel=timing.label).observe(
        timing.cycles
    )


@obs.instrumented
def simulate(workload: GPUWorkload, device: GPUDevice) -> KernelTiming:
    """Model the execution time of ``workload`` on ``device``."""
    params = device.params
    n_warps = workload.n_warps

    def finish(parallel: float, issue: float, bandwidth: float, little: float,
               span: float, atomic: float, hotspot: float) -> KernelTiming:
        total = (
            params.launch_cycles
            + parallel
            + issue
            + max(atomic, hotspot)
            + workload.serial_cycles
        )
        timing = KernelTiming(
            label=workload.label,
            device_name=device.name,
            cycles=total,
            issue_cycles=issue,
            bandwidth_cycles=bandwidth,
            little_cycles=little,
            span_cycles=span,
            atomic_cycles=atomic,
            hotspot_cycles=hotspot,
            serial_cycles=workload.serial_cycles,
            launch_cycles=params.launch_cycles,
            n_warps=n_warps,
            microseconds=device.cycles_to_microseconds(total),
        )
        _self_check(timing)
        if obs.enabled():
            _record_timing(timing)
        return timing

    if n_warps == 0:
        return finish(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    # 1. Issue throughput: load spread over the SMs that have work.
    issue = workload.total_issue_cycles / min(device.n_sms, n_warps)

    # 2. Memory bandwidth.
    bandwidth = workload.total_mem_bytes / device.bytes_per_cycle

    # 3. Little's law: request throughput is outstanding-requests / latency.
    mlp = workload.mem_parallelism
    transactions = workload.warp_mem_bytes / params.min_transaction_bytes
    total_tx = float(transactions.sum())
    outstanding = mlp * min(n_warps, device.max_resident_warps)
    little = total_tx * params.mem_latency_cycles / outstanding

    # 4. Straggler span: the longest single warp's dependent chain.
    per_tx = params.mem_latency_cycles / mlp
    spans = (
        workload.warp_issue_cycles
        + transactions * per_tx
        + workload.warp_atomic_ops * per_tx
    )
    span = float(spans.max(initial=0.0))
    plan = faults.active_plan()
    if plan is not None and plan.fail_unit is not None:
        # Injected fault: warp fail_unit % n_warps halts — its dependent
        # chain, and therefore the kernel, never completes.
        plan.note_injected("halted_warp")
        span = float("inf")

    # 5. Atomic path: RMW throughput plus same-row serialization.
    atomic_bytes = workload.total_atomic_ops * workload.atomic_bytes_per_op
    atomic_bw = device.bytes_per_cycle * params.atomic_bandwidth_fraction
    atomic = atomic_bytes / atomic_bw if atomic_bw > 0 else 0.0
    sectors_per_update = max(
        1.0, workload.dim * 4.0 / params.min_transaction_bytes
    )
    hotspot = (
        workload.max_row_sharers
        * params.hotspot_serialize_cycles
        * sectors_per_update
    )

    parallel = max(bandwidth, little, span)
    return finish(parallel, issue, bandwidth, little, span, atomic, hotspot)


@obs.instrumented
def scheduling_time(
    n_threads: int,
    merge_items: int,
    device: GPUDevice,
) -> float:
    """Modeled cycles to compute a MergePath-SpMM schedule on the GPU.

    Each thread performs two constrained binary searches over the
    row-pointer array (Algorithm 1): ``log2(merge_items)`` dependent
    probes, each a compare plus an L2-latency load (the row-pointer array
    is hot in cache).  With one thread per lane the searches run
    ``n_threads / warp_size`` warps wide.

    The search runs in the main kernel's prologue (as in CUB), so no
    separate launch is charged.
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    steps = 2.0 * max(1.0, np.log2(max(2, merge_items)))
    l2_latency = 60.0  # cache-resident row pointers
    issue_per_step = 2.0
    n_warps = max(1, -(-n_threads // device.warp_size))
    # Dependent probes: each warp's span is latency-bound; throughput
    # across warps is issue-bound.
    per_thread = steps * (issue_per_step + l2_latency)
    throughput = steps * issue_per_step * n_warps / min(device.n_sms, n_warps)
    return max(per_thread, throughput)
