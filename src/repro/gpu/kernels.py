"""Workload builders: algorithm schedules -> per-warp GPU workloads.

Each builder translates a *real* schedule (merge-path thread assignments,
GNNAdvisor neighbor groups, row chunks, ...) into the per-warp issue,
memory and atomic counts the timing model consumes.  The SIMD mapping
follows Section III-C: ``dim < 32`` packs several logical threads per warp,
``dim > 32`` replicates a thread across ``dim / 32`` warps.

The :data:`KERNELS` registry maps kernel names to builders, and
:func:`kernel_time` is the one-call entry point the experiment harnesses
use.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import obs
from repro.baselines.cusparse_like import CuSparseKernel, select_kernel
from repro.baselines.neighbor_groups import NeighborGroupSchedule
from repro.core.schedule import MergePathSchedule, schedule_for_cost
from repro.core.thread_mapping import (
    SIMD_LANES,
    default_merge_path_cost,
    map_threads_to_simd,
)
from repro.formats import CSRMatrix
from repro.gpu.device import GPUDevice, quadro_rtx_6000
from repro.gpu.timing import KernelTiming, simulate
from repro.gpu.workload import GPUWorkload, group_reduce_max, group_reduce_sum


def _divergence_penalty(threads_per_warp: int, alpha: float) -> float:
    """Issue multiplier for warps sharing divergent logical threads."""
    return 1.0 + alpha * (threads_per_warp - 1)


def _xw_bytes_per_nnz(dim: int, device: GPUDevice) -> float:
    """Dense-operand traffic per non-zero after cache discount."""
    params = device.params
    useful = max(dim * 4.0, params.min_transaction_bytes)
    return params.index_bytes_per_nnz + useful * params.xw_cache_discount


def _issue_per_nnz(dim: int, device: GPUDevice) -> float:
    """Issue slots per non-zero for a warp-vectorized kernel."""
    params = device.params
    slices = max(dim, SIMD_LANES) / SIMD_LANES
    return params.issue_overhead_per_nnz + params.issue_lane_cycles * slices


# ----------------------------------------------------------------------
# MergePath-SpMM
# ----------------------------------------------------------------------
@obs.instrumented
def mergepath_workload(
    matrix: CSRMatrix,
    dim: int,
    device: GPUDevice,
    cost: int | None = None,
    min_threads: int = 1024,
    schedule: MergePathSchedule | None = None,
    force_all_atomic: bool = False,
) -> GPUWorkload:
    """Workload of the proposed MergePath-SpMM kernel.

    Args:
        matrix: Sparse input.
        dim: Dense operand width.
        device: Modeled GPU.
        cost: Merge-path cost; defaults to the paper's tuned value for
            ``dim``.
        min_threads: Small-graph thread floor (Section III-C).
        schedule: Reuse a precomputed schedule (offline mode).
        force_all_atomic: Ablation switch — pretend every output write is
            atomic, isolating the value of complete-row tracking.
    """
    if schedule is None:
        if cost is None:
            cost = default_merge_path_cost(dim)
        schedule = schedule_for_cost(matrix, cost, min_threads=min_threads)
    params = device.params
    mapping = map_threads_to_simd(dim)

    thread_nnz = schedule.per_thread_nnz().astype(np.float64)
    rows_read = (schedule.end_rows - schedule.start_rows + 1).astype(np.float64)
    atomic_writes = schedule.atomic_writes_per_thread.astype(np.float64)
    regular_writes = schedule.complete_counts.astype(np.float64)
    if force_all_atomic:
        atomic_writes = atomic_writes + regular_writes
        regular_writes = np.zeros_like(regular_writes)
    writes = atomic_writes + regular_writes

    # Lane work (the per-nnz FMA stream) is shared by packed threads; the
    # per-thread bookkeeping (binary search, row loop control, writes) is
    # control flow, which serializes across divergent threads in a warp.
    per_nnz_issue = _issue_per_nnz(dim, device)
    thread_lane_issue = thread_nnz * per_nnz_issue
    thread_overhead_issue = (
        rows_read * params.issue_per_row
        + writes * params.issue_per_write
        + params.issue_per_thread
    )
    thread_bytes = thread_nnz * _xw_bytes_per_nnz(dim, device) + writes * dim * 4.0

    tpw = mapping.threads_per_warp
    if tpw > 1:
        penalty = _divergence_penalty(tpw, params.divergence_alpha)
        warp_issue = (
            group_reduce_max(thread_lane_issue, tpw) * penalty
            + group_reduce_sum(thread_overhead_issue, tpw)
        )
        warp_bytes = group_reduce_sum(thread_bytes, tpw)
        warp_atomics = group_reduce_sum(atomic_writes, tpw)
    else:
        wpt = mapping.warps_per_thread
        thread_issue = thread_lane_issue + thread_overhead_issue
        warp_issue = np.repeat(thread_issue / wpt, wpt)
        warp_bytes = np.repeat(thread_bytes / wpt, wpt)
        warp_atomics = np.repeat(atomic_writes / wpt, wpt)

    targets = schedule.atomic_row_targets()
    if force_all_atomic:
        sharers = np.concatenate(
            [np.bincount(targets), np.ones(int(regular_writes.sum()))]
        ) if len(targets) else np.ones(matrix.n_rows)
    else:
        sharers = (
            np.bincount(targets) if len(targets) else np.empty(0, dtype=np.int64)
        )
        sharers = sharers[sharers > 0]
    return GPUWorkload(
        label="MergePath-SpMM" + ("-all-atomic" if force_all_atomic else ""),
        dim=dim,
        warp_issue_cycles=warp_issue,
        warp_mem_bytes=warp_bytes,
        warp_atomic_ops=warp_atomics,
        atomic_sharers=np.asarray(sharers),
        atomic_bytes_per_op=max(dim * 4.0, params.min_transaction_bytes)
        * params.atomic_rmw_factor,
    )


# ----------------------------------------------------------------------
# GNNAdvisor and GNNAdvisor-opt
# ----------------------------------------------------------------------
@obs.instrumented
def gnnadvisor_workload(
    matrix: CSRMatrix,
    dim: int,
    device: GPUDevice,
    group_size: int | None = None,
    opt: bool = False,
    schedule: NeighborGroupSchedule | None = None,
) -> GPUWorkload:
    """Workload of GNNAdvisor's neighbor-group kernel.

    ``opt=True`` enables the paper's GNNAdvisor-opt packing: when the
    dimension size is below the SIMD width, ``lanes / dim`` neighbor
    groups share a warp.  The baseline leaves those lanes idle (one group
    per warp regardless).
    """
    if schedule is None:
        schedule = NeighborGroupSchedule.build(matrix, group_size)
    params = device.params
    group_nnz = schedule.group_lengths.astype(np.float64)

    per_nnz_issue = _issue_per_nnz(dim, device)
    group_lane_issue = group_nnz * per_nnz_issue
    group_overhead = (
        params.issue_per_row
        + params.issue_per_write  # one atomic update per group
        + params.issue_per_thread
    )
    group_bytes = group_nnz * _xw_bytes_per_nnz(dim, device) + dim * 4.0

    if opt and dim < SIMD_LANES:
        pack = SIMD_LANES // dim
        penalty = _divergence_penalty(pack, params.divergence_alpha)
        warp_issue = (
            group_reduce_max(group_lane_issue, pack) * penalty
            + group_reduce_sum(np.full_like(group_nnz, group_overhead), pack)
        )
        warp_bytes = group_reduce_sum(group_bytes, pack)
        warp_atomics = group_reduce_sum(np.ones_like(group_nnz), pack)
    else:
        warp_issue = group_lane_issue + group_overhead
        warp_bytes = group_bytes
        warp_atomics = np.ones_like(group_nnz)

    sharers = schedule.groups_per_row
    sharers = sharers[sharers > 0]
    return GPUWorkload(
        label="GNNAdvisor-opt" if opt else "GNNAdvisor",
        dim=dim,
        warp_issue_cycles=warp_issue,
        warp_mem_bytes=warp_bytes,
        warp_atomic_ops=warp_atomics,
        atomic_sharers=np.asarray(sharers),
        atomic_bytes_per_op=max(dim * 4.0, params.min_transaction_bytes)
        * params.atomic_rmw_factor,
    )


# ----------------------------------------------------------------------
# Row-splitting (scalar thread-per-row kernel)
# ----------------------------------------------------------------------
@obs.instrumented
def row_splitting_workload(
    matrix: CSRMatrix, dim: int, device: GPUDevice
) -> GPUWorkload:
    """Workload of the classic row-splitting kernel.

    One scalar thread per row, 32 rows per warp: the warp advances at the
    pace of its longest row, each thread walks its dimension serially, and
    per-thread dense reads do not coalesce.
    """
    params = device.params
    lengths = matrix.row_lengths.astype(np.float64)
    # Scalar threads: each non-zero costs the bookkeeping plus `dim` FMA
    # lane-steps (no SIMD vectorization across the dimension).
    per_nnz_issue = params.issue_overhead_per_nnz + params.issue_lane_cycles * dim
    warp_steps = group_reduce_max(lengths, device.warp_size)
    warp_issue = warp_steps * per_nnz_issue + params.issue_per_row
    # Uncoalesced: every non-zero fetches its own sectors (no cache
    # discount) plus the per-row output store.
    useful = max(dim * 4.0, params.min_transaction_bytes)
    row_bytes = lengths * (params.index_bytes_per_nnz + useful) + dim * 4.0
    warp_bytes = group_reduce_sum(row_bytes, device.warp_size)
    n_warps = len(warp_issue)
    return GPUWorkload(
        label="row-splitting",
        dim=dim,
        warp_issue_cycles=warp_issue,
        warp_mem_bytes=warp_bytes,
        warp_atomic_ops=np.zeros(n_warps),
        # Scalar threads chase row pointers and per-thread strides; their
        # loads pipeline poorly.
        mem_parallelism=4.0,
    )


# ----------------------------------------------------------------------
# Merge-path with serial fix-up (Merrill & Garland SpMV strategy)
# ----------------------------------------------------------------------
@obs.instrumented
def merge_path_serial_workload(
    matrix: CSRMatrix,
    dim: int,
    device: GPUDevice,
    n_threads: int | None = None,
) -> GPUWorkload:
    """Workload of the merge-path baseline with a serial fix-up phase.

    The parallel phase matches MergePath-SpMM's decomposition (complete
    rows stored directly, partial sums kept thread-local), but partial-row
    carries are folded into the output by a single thread afterwards.
    Each carry costs unhidden memory latency, so the serial phase scales
    with the number of split-row segments times the dimension slices.
    """
    if n_threads is None:
        # The serial phase grows with the thread count while the parallel
        # phase shrinks, so the baseline is tuned per input (the paper
        # observes its scaling stops at "a few hundred warps").  Model the
        # tuned baseline by sweeping a coarse grid and keeping the best.
        candidates = [256, 1024, 4096, 16384, 65536]
        best: GPUWorkload | None = None
        best_cycles = float("inf")
        for threads in candidates:
            workload = merge_path_serial_workload(
                matrix, dim, device, n_threads=threads
            )
            cycles = simulate(workload, device).cycles
            if cycles < best_cycles:
                best, best_cycles = workload, cycles
        assert best is not None
        return best
    schedule = MergePathSchedule(matrix, min(n_threads, max(1, matrix.nnz)))
    params = device.params
    mapping = map_threads_to_simd(dim)

    thread_nnz = schedule.per_thread_nnz().astype(np.float64)
    rows_read = (schedule.end_rows - schedule.start_rows + 1).astype(np.float64)
    writes = schedule.complete_counts + schedule.atomic_writes_per_thread
    thread_lane_issue = thread_nnz * _issue_per_nnz(dim, device)
    thread_overhead_issue = (
        rows_read * params.issue_per_row
        + writes * params.issue_per_write
        + params.issue_per_thread
    )
    thread_bytes = thread_nnz * _xw_bytes_per_nnz(dim, device) + writes * dim * 4.0

    tpw = mapping.threads_per_warp
    if tpw > 1:
        penalty = _divergence_penalty(tpw, params.divergence_alpha)
        warp_issue = (
            group_reduce_max(thread_lane_issue, tpw) * penalty
            + group_reduce_sum(thread_overhead_issue, tpw)
        )
        warp_bytes = group_reduce_sum(thread_bytes, tpw)
    else:
        wpt = mapping.warps_per_thread
        thread_issue = thread_lane_issue + thread_overhead_issue
        warp_issue = np.repeat(thread_issue / wpt, wpt)
        warp_bytes = np.repeat(thread_bytes / wpt, wpt)

    carries = int(schedule.atomic_writes_per_thread.sum())
    # Serial fix-up: per carry, a dependent load-accumulate-store round
    # trip to the output row executed by a single thread.
    serial_cycles = carries * (
        params.issue_overhead_per_nnz + 2.5 * params.mem_latency_cycles
    )
    return GPUWorkload(
        label="merge-path (serial fix-up)",
        dim=dim,
        warp_issue_cycles=warp_issue,
        warp_mem_bytes=warp_bytes,
        warp_atomic_ops=np.zeros(len(warp_issue)),
        serial_cycles=serial_cycles,
    )


# ----------------------------------------------------------------------
# cuSPARSE-like kernel-selection library
# ----------------------------------------------------------------------
@obs.instrumented
def cusparse_workload(
    matrix: CSRMatrix, dim: int, device: GPUDevice
) -> GPUWorkload:
    """Workload of the modeled closed-source library (dispatched kernel)."""
    plan = select_kernel(matrix)
    params = device.params
    per_nnz_issue = _issue_per_nnz(dim, device) * plan.efficiency
    xw_bytes = _xw_bytes_per_nnz(dim, device)

    if plan.kernel is CuSparseKernel.ROW_PER_WARP:
        lengths = matrix.row_lengths.astype(np.float64)
        warp_issue = lengths * per_nnz_issue + params.row_per_warp_overhead
        warp_bytes = lengths * xw_bytes + dim * 4.0
    else:
        # Regular-matrix kernels: non-zeros split evenly across warps.
        nnz_per_warp = 256.0
        n_warps = max(1, int(np.ceil(matrix.nnz / nnz_per_warp)))
        per_warp_nnz = matrix.nnz / n_warps
        rows_per_warp = matrix.n_rows / n_warps
        warp_issue = np.full(
            n_warps,
            per_warp_nnz * per_nnz_issue + rows_per_warp * params.issue_per_row,
        )
        warp_bytes = np.full(
            n_warps, per_warp_nnz * xw_bytes + rows_per_warp * dim * 4.0
        )
    return GPUWorkload(
        label=f"cuSPARSE ({plan.kernel.value})",
        dim=dim,
        warp_issue_cycles=warp_issue,
        warp_mem_bytes=warp_bytes,
        warp_atomic_ops=np.zeros(len(warp_issue)),
    )


# ----------------------------------------------------------------------
# Registry and entry point
# ----------------------------------------------------------------------
KERNELS: dict[str, Callable[..., GPUWorkload]] = {
    "mergepath": mergepath_workload,
    "gnnadvisor": gnnadvisor_workload,
    "gnnadvisor-opt": lambda matrix, dim, device, **kw: gnnadvisor_workload(
        matrix, dim, device, opt=True, **kw
    ),
    "row-splitting": row_splitting_workload,
    "merge-path-serial": merge_path_serial_workload,
    "cusparse": cusparse_workload,
}


@obs.instrumented
def kernel_time(
    name: str,
    matrix: CSRMatrix,
    dim: int,
    device: GPUDevice | None = None,
    **kwargs,
) -> KernelTiming:
    """Modeled execution time of a named kernel on ``matrix``.

    Args:
        name: One of :data:`KERNELS` (``"mergepath"``, ``"gnnadvisor"``,
            ``"gnnadvisor-opt"``, ``"row-splitting"``,
            ``"merge-path-serial"``, ``"cusparse"``).
        matrix: Sparse input.
        dim: Dense operand width.
        device: Modeled GPU; defaults to the paper's Quadro RTX 6000.
        **kwargs: Extra builder arguments (e.g. ``cost=`` for mergepath).
    """
    if name not in KERNELS:
        known = ", ".join(sorted(KERNELS))
        raise KeyError(f"unknown kernel {name!r}; known kernels: {known}")
    device = device or quadro_rtx_6000()
    workload = KERNELS[name](matrix, dim, device, **kwargs)
    return simulate(workload, device)
