"""The per-warp workload abstraction consumed by the timing model.

A :class:`GPUWorkload` reduces a kernel execution to the quantities that
determine its modeled time: per-warp instruction-issue cycles, per-warp
memory traffic, atomic-update counts and their per-row contention, plus an
optional strictly-serial tail (the merge-path SpMV fix-up phase).

Workload builders (:mod:`repro.gpu.kernels`) compute these arrays exactly
from the algorithm's real schedule; nothing here is sampled or assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class GPUWorkload:
    """A kernel execution summarized per warp.

    Attributes:
        label: Kernel name for reports.
        dim: Dense operand width.
        warp_issue_cycles: Instruction-issue cycles per warp.
        warp_mem_bytes: DRAM traffic (bytes) attributed to each warp.
        warp_atomic_ops: Atomic output updates issued by each warp.
        atomic_sharers: For every output row receiving atomic updates, the
            number of distinct updates targeting it (contention profile).
        serial_cycles: Cycles executed with no parallelism after the
            parallel phase (0 for all kernels except the serial-fix-up
            merge-path baseline).
        atomic_bytes_per_op: Read-modify-write traffic per atomic update.
        mem_parallelism: Outstanding memory requests one warp sustains
            (memory-level parallelism).  Vectorized kernels pipeline well
            (default 8); scalar thread-per-row kernels chase dependent
            pointers and sustain far less.
    """

    label: str
    dim: int
    warp_issue_cycles: np.ndarray
    warp_mem_bytes: np.ndarray
    warp_atomic_ops: np.ndarray
    atomic_sharers: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    serial_cycles: float = 0.0
    atomic_bytes_per_op: float = 0.0
    mem_parallelism: float = 8.0

    def __post_init__(self) -> None:
        lengths = {
            len(self.warp_issue_cycles),
            len(self.warp_mem_bytes),
            len(self.warp_atomic_ops),
        }
        if len(lengths) != 1:
            raise ValueError(
                "per-warp arrays must have equal length, got "
                f"{sorted(lengths)}"
            )

    @property
    def n_warps(self) -> int:
        return len(self.warp_issue_cycles)

    @property
    def total_issue_cycles(self) -> float:
        return float(self.warp_issue_cycles.sum())

    @property
    def total_mem_bytes(self) -> float:
        return float(self.warp_mem_bytes.sum())

    @property
    def total_atomic_ops(self) -> float:
        return float(self.warp_atomic_ops.sum())

    @property
    def max_row_sharers(self) -> int:
        """Worst-case atomic contention on a single output row."""
        return int(self.atomic_sharers.max(initial=0))


def group_reduce_max(values: np.ndarray, group_size: int) -> np.ndarray:
    """Max over consecutive fixed-size groups (last group may be short).

    Used to compute per-warp step counts when several logical threads
    share a warp: the warp advances at the pace of its slowest thread.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    values = np.asarray(values)
    if len(values) == 0:
        return values.copy()
    n_groups = -(-len(values) // group_size)
    padded = np.full(n_groups * group_size, values.min(initial=0), dtype=values.dtype)
    padded[: len(values)] = values
    return padded.reshape(n_groups, group_size).max(axis=1)


def group_reduce_sum(values: np.ndarray, group_size: int) -> np.ndarray:
    """Sum over consecutive fixed-size groups (last group may be short)."""
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    values = np.asarray(values)
    if len(values) == 0:
        return values.copy()
    n_groups = -(-len(values) // group_size)
    padded = np.zeros(n_groups * group_size, dtype=values.dtype)
    padded[: len(values)] = values
    return padded.reshape(n_groups, group_size).sum(axis=1)
