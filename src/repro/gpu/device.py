"""GPU hardware description and timing-model constants.

:class:`GPUDevice` carries the published hardware parameters of the
evaluation GPU; :class:`ModelParams` carries the timing model's calibrated
constants.  Keeping every tunable in one frozen dataclass makes the
calibration auditable: EXPERIMENTS.md records which paper observations each
constant was fitted against.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelParams:
    """Calibrated constants of the GPU timing model.

    Issue-side constants (instruction slots per warp-step):

    Attributes:
        issue_overhead_per_nnz: Bookkeeping slots per non-zero (pointer
            arithmetic, index/value loads, loop control).
        issue_lane_cycles: Slots per 32-lane slice of dimension work per
            non-zero (the FMA itself plus the operand shuffle).
        issue_per_row: Row bookkeeping slots (row-pointer reads, output
            address computation).
        issue_per_thread: Per-thread setup slots (the merge-path binary
            search for MergePath-SpMM, partition metadata for GNNAdvisor).
        issue_per_write: Slots per output write operation.
        divergence_alpha: Issue multiplier slope per extra divergent
            thread sharing a warp (1 + alpha * (threads_per_warp - 1)).
        row_per_warp_overhead: Warp setup/drain slots per row for kernels
            that dedicate a whole warp to each row (cuSPARSE's generic
            csrmm path); dominates on short-row inputs.

    Memory-side constants:

    Attributes:
        index_bytes_per_nnz: Column-index + value traffic per non-zero.
        xw_cache_discount: Fraction of dense-operand reads that miss the
            on-chip caches (models row reuse through L1/L2).
        min_transaction_bytes: Smallest useful memory transaction (sector).
        mem_latency_cycles: DRAM round-trip latency.
        latency_hiding_warps: Resident warps per SM needed to fully hide
            memory latency.

    Atomic-update constants:

    Attributes:
        atomic_bandwidth_fraction: Fraction of peak DRAM bandwidth the
            atomic path sustains (read-modify-write traffic through L2).
        atomic_rmw_factor: Traffic multiplier for the read-modify-write.
        hotspot_serialize_cycles: Serialization cost per conflicting
            atomic update to the same output row, per 32-byte sector.

    Launch:

    Attributes:
        launch_cycles: Fixed kernel-launch overhead in device cycles.
    """

    issue_overhead_per_nnz: float = 20.0
    issue_lane_cycles: float = 10.0
    issue_per_row: float = 8.0
    issue_per_thread: float = 8.0
    issue_per_write: float = 4.0
    divergence_alpha: float = 0.05
    index_bytes_per_nnz: float = 8.0
    xw_cache_discount: float = 0.05
    row_per_warp_overhead: float = 64.0
    min_transaction_bytes: float = 32.0
    mem_latency_cycles: float = 440.0
    latency_hiding_warps: float = 6.0
    atomic_bandwidth_fraction: float = 0.5
    atomic_rmw_factor: float = 1.0
    hotspot_serialize_cycles: float = 16.0
    launch_cycles: float = 2500.0


@dataclass(frozen=True)
class GPUDevice:
    """Hardware parameters of the modeled GPU.

    Attributes:
        name: Marketing name, used in reports.
        n_sms: Streaming multiprocessors.
        cuda_cores: Total FP32 lanes (n_sms * 64 on Turing).
        clock_ghz: Sustained SM clock.
        mem_bandwidth_gbps: Peak DRAM bandwidth (GB/s).
        warp_size: SIMD width of one warp.
        max_warps_per_sm: Resident-warp limit per SM.
        params: Timing-model constants.
    """

    name: str
    n_sms: int
    cuda_cores: int
    clock_ghz: float
    mem_bandwidth_gbps: float
    warp_size: int = 32
    max_warps_per_sm: int = 32
    params: ModelParams = ModelParams()

    @property
    def bytes_per_cycle(self) -> float:
        """DRAM bytes deliverable per device cycle."""
        return self.mem_bandwidth_gbps / self.clock_ghz

    @property
    def max_resident_warps(self) -> int:
        """Device-wide resident-warp capacity."""
        return self.n_sms * self.max_warps_per_sm

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)

    def cycles_to_microseconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e3)


def quadro_rtx_6000(params: ModelParams | None = None) -> GPUDevice:
    """The paper's evaluation GPU (Section IV-A)."""
    return GPUDevice(
        name="NVIDIA Quadro RTX 6000",
        n_sms=72,
        cuda_cores=4608,
        clock_ghz=1.44,
        mem_bandwidth_gbps=672.0,
        warp_size=32,
        max_warps_per_sm=32,
        params=params or ModelParams(),
    )


def a100_like(params: ModelParams | None = None) -> GPUDevice:
    """An A100-class datacenter GPU (sensitivity-study device).

    More SMs, deeper residency, and ~2.3x the DRAM bandwidth of the
    paper's card.  Used by the device-sensitivity benchmark to check that
    the paper's kernel orderings are not an artifact of one GPU's balance
    point.
    """
    return GPUDevice(
        name="A100-class",
        n_sms=108,
        cuda_cores=6912,
        clock_ghz=1.41,
        mem_bandwidth_gbps=1555.0,
        warp_size=32,
        max_warps_per_sm=64,
        params=params or ModelParams(),
    )
