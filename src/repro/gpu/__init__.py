"""GPU execution model.

The paper's GPU results come from CUDA kernels profiled on an NVIDIA
Quadro RTX 6000.  This package substitutes a *timing model* driven by the
real schedules the algorithms produce (DESIGN.md §1): every workload is
described by per-warp instruction-issue, memory-traffic and atomic-update
counts derived exactly from the schedule, and
:func:`repro.gpu.timing.simulate` turns those counts into modeled kernel
cycles using throughput, latency-hiding, atomic-contention and
load-imbalance terms.

Modules:

* :mod:`repro.gpu.device` — hardware description + model constants.
* :mod:`repro.gpu.workload` — the per-warp workload abstraction.
* :mod:`repro.gpu.timing` — the timing model proper.
* :mod:`repro.gpu.kernels` — workload builders for MergePath-SpMM and all
  baselines, plus the top-level ``kernel_time`` entry point.
"""

from repro.gpu.device import GPUDevice, ModelParams, a100_like, quadro_rtx_6000
from repro.gpu.workload import GPUWorkload
from repro.gpu.timing import KernelTiming, simulate, scheduling_time
from repro.gpu.report import breakdown_table, compare_kernels, comparison_table
from repro.gpu.kernels import (
    KERNELS,
    kernel_time,
    mergepath_workload,
    gnnadvisor_workload,
    row_splitting_workload,
    merge_path_serial_workload,
    cusparse_workload,
)

__all__ = [
    "GPUDevice",
    "GPUWorkload",
    "KERNELS",
    "KernelTiming",
    "ModelParams",
    "a100_like",
    "breakdown_table",
    "compare_kernels",
    "comparison_table",
    "cusparse_workload",
    "gnnadvisor_workload",
    "kernel_time",
    "merge_path_serial_workload",
    "mergepath_workload",
    "quadro_rtx_6000",
    "row_splitting_workload",
    "scheduling_time",
    "simulate",
]
