"""Human-readable reports over the GPU timing model.

Utilities that turn :class:`~repro.gpu.timing.KernelTiming` objects into
breakdown tables and cross-kernel comparisons — the "why is this kernel
slow" surface users reach for after `kernel_time` tells them *that* it is.
"""

from __future__ import annotations

from repro.experiments.reporting import format_table
from repro.formats import CSRMatrix
from repro.gpu.device import GPUDevice, quadro_rtx_6000
from repro.gpu.kernels import KERNELS, kernel_time
from repro.gpu.timing import KernelTiming

_COMPONENTS = (
    ("issue", "issue_cycles"),
    ("bandwidth", "bandwidth_cycles"),
    ("little", "little_cycles"),
    ("span", "span_cycles"),
    ("atomic", "atomic_cycles"),
    ("hotspot", "hotspot_cycles"),
    ("serial", "serial_cycles"),
    ("launch", "launch_cycles"),
)


def breakdown_table(timing: KernelTiming) -> str:
    """One kernel's component breakdown as an aligned table."""
    rows = []
    for label, attr in _COMPONENTS:
        cycles = getattr(timing, attr)
        rows.append(
            (
                label + (" <- binding" if label == timing.bound_by else ""),
                cycles,
                100.0 * cycles / timing.cycles if timing.cycles else 0.0,
            )
        )
    header = (
        f"{timing.label} on {timing.device_name}: "
        f"{timing.microseconds:.2f} us ({timing.n_warps} warps)\n"
    )
    return header + format_table(["component", "cycles", "% of total"], rows)


def compare_kernels(
    matrix: CSRMatrix,
    dim: int,
    kernels: "tuple[str, ...] | None" = None,
    device: GPUDevice | None = None,
    **kwargs,
) -> list[KernelTiming]:
    """Time several kernels on one input, fastest first.

    Args:
        matrix: Sparse input.
        dim: Dense operand width.
        kernels: Kernel names; defaults to every registered kernel.
        device: GPU model; defaults to the paper's.
        **kwargs: Forwarded to each builder (e.g. ``cost=`` is accepted by
            mergepath and silently ignored by kernels without the knob is
            NOT supported — pass only universally valid options here).
    """
    device = device or quadro_rtx_6000()
    names = kernels if kernels is not None else tuple(sorted(KERNELS))
    timings = [kernel_time(name, matrix, dim, device, **kwargs) for name in names]
    return sorted(timings, key=lambda t: t.cycles)


def comparison_table(timings: list[KernelTiming]) -> str:
    """Render a ``compare_kernels`` result as an aligned table."""
    if not timings:
        raise ValueError("no timings to render")
    fastest = timings[0].cycles
    rows = [
        (
            t.label,
            t.microseconds,
            t.cycles / fastest,
            t.bound_by,
            t.n_warps,
        )
        for t in timings
    ]
    return format_table(
        ["kernel", "modeled_us", "vs_fastest", "bound_by", "warps"], rows
    )
