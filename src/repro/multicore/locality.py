"""Locality-aware thread-to-core placement (the paper's future work).

Section V-D closes with: "In the future, we plan to incorporate efficient
data locality and latency-hiding techniques to improve the performance of
MergePath-SpMM algorithm for 1000-core processors."  This module
implements the natural first step and makes it measurable:

* **linear placement** (the baseline): thread *i* runs on core *i*.
  Consecutive merge-path threads share cache lines (adjacent CSR ranges,
  often the same split row) but land on mesh-adjacent cores only by
  accident of the row-major core numbering.
* **tile placement**: consecutive threads are placed along small mesh
  tiles (space-filling order), so the threads most likely to share data —
  and to contend on split rows — are physically close, shortening
  coherence and sharing paths.
* **home-biased output mapping**: an address-map variant that homes each
  output row's directory entry near the cores that write it.

The ablation benchmark ``benchmarks/test_ablation_locality.py`` measures
the benefit on the Table I machine.
"""

from __future__ import annotations

import numpy as np

from repro.multicore.config import MachineConfig


def linear_placement(n_threads: int) -> np.ndarray:
    """Thread *i* on core *i* (the Figure 9 baseline)."""
    return np.arange(n_threads, dtype=np.int64)


def tile_placement(
    machine: MachineConfig, n_threads: int, tile: int = 4
) -> np.ndarray:
    """Place consecutive threads along ``tile x tile`` mesh blocks.

    Returns:
        ``placement[i]`` = core id for thread ``i``.  A bijection whenever
        ``n_threads == machine.n_cores``.
    """
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    width, height = machine.mesh_width, machine.mesh_height
    cores: list[int] = []
    for tile_y in range(0, height, tile):
        for tile_x in range(0, width, tile):
            for y in range(tile_y, min(tile_y + tile, height)):
                for x in range(tile_x, min(tile_x + tile, width)):
                    core = y * width + x
                    if core < machine.n_cores:
                        cores.append(core)
    order = np.array(cores, dtype=np.int64)
    if n_threads > len(order):
        raise ValueError(
            f"{n_threads} threads exceed {len(order)} cores"
        )
    return order[:n_threads]


def apply_placement(traces: list, placement: np.ndarray, n_cores: int) -> list:
    """Reorder per-thread traces into per-core slots.

    Args:
        traces: One trace per thread, thread-indexed.
        placement: ``placement[i]`` = core for thread ``i``.
        n_cores: Machine size; unassigned cores receive empty slots.

    Returns:
        A core-indexed list suitable for
        :meth:`repro.multicore.system.MulticoreSystem.run` (empty cores
        hold ``None``-free zero traces).
    """
    from repro.multicore.trace import ThreadTrace

    if len(placement) != len(traces):
        raise ValueError(
            f"placement covers {len(placement)} threads, got {len(traces)}"
        )
    empty = ThreadTrace(
        lines=np.empty(0, dtype=np.int64),
        kinds=np.empty(0, dtype=np.int8),
        compute_cycles=0.0,
    )
    slots = [empty] * n_cores
    for thread, core in enumerate(placement):
        if not 0 <= core < n_cores:
            raise ValueError(f"core {core} out of range [0, {n_cores})")
        if slots[core] is not empty:
            raise ValueError(f"core {core} assigned twice")
        slots[core] = traces[thread]
    return slots
