"""The multicore interval simulator.

Cores execute their traces in round-robin quanta so that coherence
interactions interleave realistically (Graphite itself relaxes cycle-level
synchronization the same way).  Every line access walks the memory
hierarchy:

* private L1 (1 cycle on hit);
* the line's home L2 slice across the mesh (slice latency + 2 hops each
  way, X-Y routed);
* the MESI directory at the home slice — remote-owner downgrades, limited
  pointer evictions, and write/atomic invalidations add round trips and
  drop remote L1 copies;
* DRAM on L2 miss (100 ns + controller path).

Per-core time = compute cycles + the sum of its access latencies; NoC link
contention and DRAM bandwidth queueing are applied as fixed-point
inflation factors over the interval (Table I models link contention only).
The parallel completion time is the slowest core, and the result keeps the
compute/memory breakdown the paper discusses in Section V-D.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.multicore.cache import SetAssociativeCache
from repro.multicore.config import MachineConfig
from repro.multicore.directory import Directory, DirectoryStats
from repro.multicore.dram import DramModel
from repro.multicore.noc import MeshNetwork
from repro.multicore.trace import ATOMIC, ThreadTrace
from repro.resilience import faults


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one multicore kernel simulation.

    Attributes:
        completion_cycles: Parallel completion time (slowest core), after
            contention inflation.
        compute_cycles: Compute component of the slowest core.
        memory_cycles: Memory-stall component of the slowest core.
        per_core_cycles: Total cycles per core (post-inflation).
        l1_hit_rate: Aggregate private-cache hit rate.
        l2_hit_rate: Aggregate shared-slice hit rate (of L1 misses).
        dram_accesses: Line fills from memory.
        directory: Coherence event counters.
        noc_contention_factor: Applied link-queueing inflation.
        dram_queueing_factor: Applied DRAM-bandwidth inflation.
    """

    completion_cycles: float
    compute_cycles: float
    memory_cycles: float
    per_core_cycles: np.ndarray
    l1_hit_rate: float
    l2_hit_rate: float
    dram_accesses: int
    directory: DirectoryStats
    noc_contention_factor: float
    dram_queueing_factor: float

    @property
    def completion_seconds(self) -> float:
        """Completion time assuming the Table I 1 GHz clock."""
        return self.completion_cycles / 1e9


class MulticoreSystem:
    """The Table I machine, ready to run per-core traces.

    Args:
        machine: Machine configuration (see
            :func:`repro.multicore.config.table1_machine`).
    """

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.l1s = [SetAssociativeCache(machine.l1) for _ in range(machine.n_cores)]
        self.l2_slices = [
            SetAssociativeCache(machine.l2_slice) for _ in range(machine.n_cores)
        ]
        self.directory = Directory(machine.directory_pointers)
        self.noc = MeshNetwork(machine)
        self.dram = DramModel(machine)

    def home_slice(self, line: int) -> int:
        """Home L2 slice of a line (address-interleaved)."""
        return line % self.machine.n_cores

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _event_totals(self) -> dict:
        """Cumulative cache/coherence/DRAM event counts for this system."""
        stats = self.directory.stats
        return {
            "l1_hits": sum(c.stats.hits for c in self.l1s),
            "l1_accesses": sum(c.stats.accesses for c in self.l1s),
            "l2_hits": sum(c.stats.hits for c in self.l2_slices),
            "l2_accesses": sum(c.stats.accesses for c in self.l2_slices),
            "dram_accesses": self.dram.accesses,
            "invalidations": stats.invalidations_sent,
            "downgrades": stats.downgrades,
            "pointer_evictions": stats.pointer_evictions,
        }

    def _record_run(
        self, prior: dict, per_core: np.ndarray, flit_hops: float
    ) -> None:
        """Publish one run's cache/NoC/DRAM deltas and per-core work."""
        totals = self._event_totals()
        for key, value in totals.items():
            obs.counter(f"multicore.{key}").inc(max(0, value - prior[key]))
        obs.counter("multicore.noc_flit_hops").inc(int(flit_hops))
        obs.counter("multicore.runs").inc()
        core_cycles = obs.histogram("multicore.core_cycles")
        for cycles in per_core:
            core_cycles.observe(float(cycles))

    # ------------------------------------------------------------------
    @obs.instrumented(name="multicore.system.run")
    def run(self, traces: list[ThreadTrace], quantum: int = 256) -> SimulationResult:
        """Execute one trace per core and return timing + statistics.

        Args:
            traces: One :class:`ThreadTrace` per core; fewer traces than
                cores leaves the remaining cores idle.
            quantum: Accesses each core advances per round-robin turn.
        """
        machine = self.machine
        n_cores = machine.n_cores
        if len(traces) > n_cores:
            raise ValueError(
                f"{len(traces)} traces for {n_cores} cores; fold threads "
                "into cores before simulation"
            )
        hop_cycles = machine.noc.hop_cycles
        l1_cycles = machine.l1.hit_cycles
        l2_cycles = machine.l2_slice.hit_cycles
        dram_cycles = machine.dram_latency_cycles
        width = machine.mesh_width
        line_bytes = machine.l1.line_bytes
        header_flits = 1
        line_flits = 1 + line_bytes * 8 // machine.noc.flit_bits

        collect = obs.enabled()
        if collect:
            # Caches, directory and DRAM accumulate across run() calls on
            # the same system; snapshot so the metrics report this run's
            # contribution only.
            prior_events = self._event_totals()
        mem_cycles = np.zeros(n_cores)
        positions = [0] * n_cores
        l1s = self.l1s
        l2s = self.l2_slices
        directory = self.directory
        dram = self.dram
        flit_hops_total = 0.0
        # Atomic read-modify-writes to the same line serialize: ownership
        # ping-pongs through the directory, so the k-th RMW waits for k-1
        # predecessors.  Service time per RMW is the slice access plus an
        # average-distance ownership transfer across the mesh.
        atomic_seq: dict[int, int] = {}
        avg_hops = (width + machine.mesh_height) / 3.0
        # Service = dirty forwarding from the previous owner plus the new
        # owner's request round trip (two mesh crossings end to end).
        rmw_service = 2.0 * (l2_cycles + 2.0 * hop_cycles * avg_hops)

        active = [c for c in range(len(traces)) if traces[c].n_accesses]
        plan = faults.active_plan()
        halt_core = halt_at = None
        if plan is not None and plan.fail_unit is not None and active:
            # Injected fault: one core dies halfway through its trace and
            # never completes; the post-run self-check must notice.
            halt_core = active[plan.fail_unit % len(active)]
            halt_at = traces[halt_core].n_accesses // 2
            plan.note_injected("halted_core")
        while active:
            still_active = []
            for core in active:
                trace = traces[core]
                lines = trace.lines
                kinds = trace.kinds
                pos = positions[core]
                end = min(pos + quantum, len(lines))
                if core == halt_core:
                    end = min(end, halt_at)
                    if end <= pos:
                        continue  # the core is dead; it never resumes
                latency_acc = 0.0
                l1 = l1s[core]
                cx, cy = core % width, core // width
                for i in range(pos, end):
                    line = int(lines[i])
                    kind = kinds[i]
                    if kind == 0 and l1.access(line):
                        latency_acc += l1_cycles
                        continue
                    # L1 miss (all writes go through to the home slice:
                    # the output is write-coalesced there, and atomics are
                    # RMWs at the directory).
                    if kind == 0:
                        pass
                    else:
                        l1.access(line)  # allocate locally as well
                    home = line % n_cores
                    hops = abs(cx - home % width) + abs(cy - home // width)
                    trip = 2 * hops * hop_cycles
                    flit_hops_total += hops * (header_flits + line_flits)
                    latency = l1_cycles + trip + l2_cycles
                    l2_hit, evicted_line = l2s[home].access_with_victim(line)
                    if not l2_hit:
                        latency += dram.record_access(line_bytes)
                        if evicted_line is not None:
                            # The L2 eviction retires the victim's
                            # directory entry; its L1 copies are recalled
                            # (off the critical path, so no latency).
                            for sharer in directory.sharers_of(evicted_line):
                                l1s[sharer].invalidate(evicted_line)
                            owner = directory.owner_of(evicted_line)
                            if owner is not None:
                                l1s[owner].invalidate(evicted_line)
                            directory.drop(evicted_line)
                    if kind == 0:
                        downgraded, evicted = directory.read(line, core)
                        if downgraded:
                            latency += 2 * hop_cycles  # owner forwarding
                        for victim in evicted:
                            l1s[victim].invalidate(line)
                    else:
                        invalidated = directory.write(line, core)
                        if invalidated:
                            # Invalidation round trip to the farthest
                            # sharer gates the write's completion.
                            worst = 0
                            for victim in invalidated:
                                l1s[victim].invalidate(line)
                                vh = abs(
                                    home % width - victim % width
                                ) + abs(home // width - victim // width)
                                if vh > worst:
                                    worst = vh
                            latency += 2 * worst * hop_cycles
                            flit_hops_total += worst * header_flits * 2
                        if kind == ATOMIC:
                            # Read-modify-write at the home slice, queued
                            # behind every earlier RMW to this line.
                            prior = atomic_seq.get(line, 0)
                            atomic_seq[line] = prior + 1
                            latency += l2_cycles + prior * rmw_service
                    latency_acc += latency
                mem_cycles[core] += latency_acc
                positions[core] = end
                if end < len(lines) and (core != halt_core or end < halt_at):
                    still_active.append(core)
            active = still_active

        # Completion self-check: every trace must have been fully
        # consumed, or the "parallel completion time" below would quietly
        # describe a kernel that never finished.
        for core, trace in enumerate(traces):
            if trace.n_accesses and positions[core] != trace.n_accesses:
                faults.detected_externally("multicore-completion")
                raise faults.ExecutionFaultError(
                    f"core {core} halted after {positions[core]} of "
                    f"{trace.n_accesses} accesses — simulation incomplete"
                )

        compute = np.zeros(n_cores)
        for core, trace in enumerate(traces):
            compute[core] = trace.compute_cycles

        # Fixed-point contention inflation: utilization over the interval
        # inflates memory stalls, which lengthens the interval, which
        # lowers utilization; two iterations converge closely.
        total = compute + mem_cycles
        interval = float(total.max(initial=1.0))
        noc_factor = dram_factor = 1.0
        n_links = max(1, 2 * (2 * width * (width - 1)))
        for _ in range(2):
            rho_noc = min(0.95, 3.0 * flit_hops_total / (n_links * interval))
            noc_factor = 1.0 + rho_noc / (2.0 * (1.0 - rho_noc))
            dram_factor = self.dram.queueing_factor(interval)
            inflated = compute + mem_cycles * noc_factor * dram_factor
            interval = float(inflated.max(initial=1.0))
        per_core = compute + mem_cycles * noc_factor * dram_factor

        slowest = int(np.argmax(per_core)) if n_cores else 0
        l1_hits = sum(c.stats.hits for c in l1s)
        l1_total = sum(c.stats.accesses for c in l1s)
        l2_hits = sum(c.stats.hits for c in l2s)
        l2_total = sum(c.stats.accesses for c in l2s)
        if collect:
            self._record_run(prior_events, per_core, flit_hops_total)
        return SimulationResult(
            completion_cycles=float(per_core.max(initial=0.0)),
            compute_cycles=float(compute[slowest]) if n_cores else 0.0,
            memory_cycles=(
                float(mem_cycles[slowest] * noc_factor * dram_factor)
                if n_cores
                else 0.0
            ),
            per_core_cycles=per_core,
            l1_hit_rate=l1_hits / l1_total if l1_total else 0.0,
            l2_hit_rate=l2_hits / l2_total if l2_total else 0.0,
            dram_accesses=self.dram.accesses,
            directory=self.directory.stats,
            noc_contention_factor=noc_factor,
            dram_queueing_factor=dram_factor,
        )
