"""Core-count sweeps on the multicore machine.

Reusable machinery behind Figure 9: run a kernel across a range of core
counts, collect normalized completion times and the compute/memory
breakdowns, and expose the scaling summary the paper discusses in
Section V-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.multicore.kernels import run_gnnadvisor, run_mergepath
from repro.multicore.system import SimulationResult

RUNNERS: dict[str, Callable[..., SimulationResult]] = {
    "mergepath": run_mergepath,
    "gnnadvisor": run_gnnadvisor,
}


@dataclass(frozen=True)
class ScalingCurve:
    """One kernel's scaling behaviour over a core-count sweep.

    Attributes:
        kernel: Kernel name.
        core_counts: Swept core counts, ascending.
        completion_cycles: Absolute completion time per core count.
        compute_cycles: Compute component of the slowest core, per count.
        memory_cycles: Memory-stall component of the slowest core.
    """

    kernel: str
    core_counts: tuple[int, ...]
    completion_cycles: np.ndarray
    compute_cycles: np.ndarray
    memory_cycles: np.ndarray

    @property
    def normalized(self) -> np.ndarray:
        """Completion time normalized to the smallest core count."""
        return self.completion_cycles / self.completion_cycles[0]

    @property
    def total_speedup(self) -> float:
        """Speedup from the smallest to the largest core count."""
        return float(self.completion_cycles[0] / self.completion_cycles[-1])

    @property
    def compute_speedup(self) -> float:
        """How well the compute component alone scales."""
        return float(self.compute_cycles[0] / max(1e-9, self.compute_cycles[-1]))

    @property
    def memory_speedup(self) -> float:
        """How well the memory-stall component scales (paper: poorly)."""
        return float(self.memory_cycles[0] / max(1e-9, self.memory_cycles[-1]))

    def scaling_stalls_after(self, threshold: float = 1.15) -> int | None:
        """First core count where doubling cores gains < ``threshold``.

        Returns ``None`` when the kernel scales across the whole sweep.
        """
        for i in range(len(self.core_counts) - 1):
            gain = self.completion_cycles[i] / self.completion_cycles[i + 1]
            if gain < threshold:
                return self.core_counts[i]
        return None


@obs.instrumented
def sweep_core_counts(
    matrix: CSRMatrix,
    kernel: str,
    core_counts: tuple[int, ...] = (64, 128, 256, 512, 1024),
    dim: int = 16,
) -> ScalingCurve:
    """Run ``kernel`` at every core count and collect its scaling curve.

    Args:
        matrix: Sparse input.
        kernel: ``"mergepath"`` or ``"gnnadvisor"``.
        core_counts: Ascending core counts to sweep.
        dim: Dense operand width.
    """
    if kernel not in RUNNERS:
        known = ", ".join(sorted(RUNNERS))
        raise KeyError(f"unknown kernel {kernel!r}; known: {known}")
    if list(core_counts) != sorted(core_counts) or not core_counts:
        raise ValueError("core_counts must be a non-empty ascending sequence")
    results = [RUNNERS[kernel](matrix, dim, cores) for cores in core_counts]
    return ScalingCurve(
        kernel=kernel,
        core_counts=tuple(core_counts),
        completion_cycles=np.array([r.completion_cycles for r in results]),
        compute_cycles=np.array([r.compute_cycles for r in results]),
        memory_cycles=np.array([r.memory_cycles for r in results]),
    )
