"""Machine configuration for the multicore simulator (paper Table I).

The reference machine is 1024 single-threaded in-order cores at 1 GHz,
4 KB 4-way private L1-I/L1-D (1 cycle), a shared L2 built from 8 KB
per-core slices (8 MB total), an invalidation-based MESI directory with
limited-4 sharer pointers, 32 memory controllers in front of 320 GB/s /
100 ns DRAM, and an electrical 2-D mesh with X-Y routing, 2-cycle hops
(1 router + 1 link), 64-bit flits and link-only contention.

Scaling rules for smaller core counts follow Section V-D: total cache
capacity is held constant by growing the per-core slice, memory
controllers shrink with the core count, and total DRAM bandwidth stays
fixed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry.

    Attributes:
        size_bytes: Total capacity of this cache (per core for L1, per
            slice for L2).
        associativity: Ways per set.
        line_bytes: Cache-line size.
        hit_cycles: Access latency on a hit.
    """

    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_cycles: int = 1

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return max(1, self.n_lines // self.associativity)


@dataclass(frozen=True)
class NocConfig:
    """2-D mesh network parameters.

    Attributes:
        hop_cycles: Latency per hop (1 router + 1 link in Table I).
        flit_bits: Link width; a 64-byte line payload is 8 flits.
        link_contention: Whether to model link queueing delays.
    """

    hop_cycles: int = 2
    flit_bits: int = 64
    link_contention: bool = True


@dataclass(frozen=True)
class DramConfig:
    """Memory subsystem parameters.

    Attributes:
        n_controllers: Memory controllers at the chip boundary.
        latency_ns: DRAM access latency.
        bandwidth_gbps: Total DRAM bandwidth (held constant across core
            counts).
    """

    n_controllers: int = 32
    latency_ns: float = 100.0
    bandwidth_gbps: float = 320.0


@dataclass(frozen=True)
class MachineConfig:
    """The full Table I machine.

    Attributes:
        n_cores: Core count (power of four yields a square mesh, but any
            count is accepted — the mesh is the smallest enclosing
            rectangle).
        clock_ghz: Core clock.
        l1: Private L1-D configuration (L1-I is not simulated: the SpMM
            kernels' code footprint trivially fits 4 KB).
        l2_slice: Per-core shared-L2 slice configuration.
        directory_pointers: Sharer pointers per directory entry
            (limited-4 in Table I).
        simd_width: 16-bit vector lanes per core (4 in Section IV-B).
        noc: Mesh parameters.
        dram: Memory subsystem parameters.
    """

    n_cores: int = 1024
    clock_ghz: float = 1.0
    l1: CacheConfig = CacheConfig(size_bytes=4 * 1024, associativity=4)
    l2_slice: CacheConfig = CacheConfig(
        size_bytes=8 * 1024, associativity=8, hit_cycles=8
    )
    directory_pointers: int = 4
    simd_width: int = 4
    noc: NocConfig = NocConfig()
    dram: DramConfig = DramConfig()

    @property
    def mesh_width(self) -> int:
        return int(math.ceil(math.sqrt(self.n_cores)))

    @property
    def mesh_height(self) -> int:
        return int(math.ceil(self.n_cores / self.mesh_width))

    @property
    def dram_latency_cycles(self) -> float:
        return self.dram.latency_ns * self.clock_ghz

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram.bandwidth_gbps / self.clock_ghz

    @property
    def total_l2_bytes(self) -> int:
        return self.l2_slice.size_bytes * self.n_cores

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)


def table1_machine(n_cores: int = 1024) -> MachineConfig:
    """The Table I machine scaled to ``n_cores`` (Section V-D rules).

    * total shared-L2 capacity stays at 8 MB (per-core slices grow as the
      core count shrinks);
    * memory controllers scale down proportionally (min 1);
    * total DRAM bandwidth stays at 320 GB/s.
    """
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    base = MachineConfig()
    slice_bytes = base.l2_slice.size_bytes * base.n_cores // n_cores
    controllers = max(1, base.dram.n_controllers * n_cores // base.n_cores)
    return replace(
        base,
        n_cores=n_cores,
        l2_slice=replace(base.l2_slice, size_bytes=slice_bytes),
        dram=replace(base.dram, n_controllers=controllers),
    )
