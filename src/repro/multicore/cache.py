"""Set-associative LRU cache model.

Line-granular and functional-free: the cache tracks which line tags are
present, not their data.  Used for both the private L1s and the shared-L2
slices of the multicore simulator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.multicore.config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Addresses are *line* addresses (byte address // line size); the caller
    performs the division once so the hot path stays cheap.

    Args:
        config: Geometry (size, associativity, line size).
    """

    __slots__ = ("config", "n_sets", "associativity", "_sets", "stats")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.associativity = config.associativity
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def access(self, line: int) -> bool:
        """Touch ``line``; return True on hit.  Misses insert the line.

        Returns:
            Whether the line was present (LRU state is updated either way;
            an eviction may occur on miss).
        """
        return self.access_with_victim(line)[0]

    def access_with_victim(self, line: int) -> "tuple[bool, int | None]":
        """Like :meth:`access`, also reporting the evicted line (if any).

        Returns:
            ``(hit, victim)`` — ``victim`` is the line evicted to make
            room, or ``None`` on a hit or a non-evicting fill.
        """
        target = self._sets[line % self.n_sets]
        if line in target:
            target.move_to_end(line)
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        target[line] = None
        victim = None
        if len(target) > self.associativity:
            victim, _ = target.popitem(last=False)
            self.stats.evictions += 1
        return False, victim

    def contains(self, line: int) -> bool:
        """Whether ``line`` is present (no LRU update, no counters)."""
        return line in self._sets[line % self.n_sets]

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; return whether it was present."""
        target = self._sets[line % self.n_sets]
        if line in target:
            del target[line]
            return True
        return False

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()
