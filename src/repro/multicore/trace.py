"""Per-thread memory/compute traces generated from real SpMM schedules.

A :class:`ThreadTrace` is the unit of work one core executes: a sequence
of cache-line accesses (reads of the CSR arrays and the dense operand,
regular or atomic writes of the output) plus the thread's total compute
cycles.  Traces are derived from the same schedules the GPU model uses —
:class:`~repro.core.schedule.MergePathSchedule` for MergePath-SpMM and
:class:`~repro.baselines.neighbor_groups.NeighborGroupSchedule` for
GNNAdvisor — so the multicore results inherit the genuine load-balance and
synchronization structure of each algorithm.

Consecutive duplicate line accesses (e.g. sixteen ``CP`` indices sharing a
line) are collapsed at generation time: they would hit L1 unconditionally
and only slow the simulator down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.neighbor_groups import NeighborGroupSchedule
from repro.core.schedule import MergePathSchedule
from repro.core.spmm import write_segments
from repro.formats import CSRMatrix

READ = 0
WRITE = 1
ATOMIC = 2


@dataclass(frozen=True)
class AddressMap:
    """Line-granular layout of the kernel's data structures.

    Regions (row pointers, column indices, values, dense operand, output)
    are laid out back to back; dense rows are line-aligned so one XW row
    of ``dim <= 16`` floats occupies exactly one 64-byte line.
    """

    n_rows: int
    nnz: int
    dim: int
    line_bytes: int = 64

    @property
    def ints_per_line(self) -> int:
        return self.line_bytes // 4  # 4-byte indices/values

    @property
    def lines_per_dense_row(self) -> int:
        return max(1, -(-self.dim * 4 // self.line_bytes))

    @property
    def rp_base(self) -> int:
        return 0

    @property
    def cp_base(self) -> int:
        return self.rp_base + -(-(self.n_rows + 1) // self.ints_per_line)

    @property
    def val_base(self) -> int:
        return self.cp_base + -(-self.nnz // self.ints_per_line)

    @property
    def xw_base(self) -> int:
        return self.val_base + -(-self.nnz // self.ints_per_line)

    @property
    def out_base(self) -> int:
        return self.xw_base + self.n_rows * self.lines_per_dense_row

    @property
    def total_lines(self) -> int:
        return self.out_base + self.n_rows * self.lines_per_dense_row

    def rp_line(self, row: "np.ndarray | int") -> "np.ndarray | int":
        return self.rp_base + row // self.ints_per_line

    def cp_line(self, j: "np.ndarray | int") -> "np.ndarray | int":
        return self.cp_base + j // self.ints_per_line

    def val_line(self, j: "np.ndarray | int") -> "np.ndarray | int":
        return self.val_base + j // self.ints_per_line

    def xw_first_line(self, col: "np.ndarray | int") -> "np.ndarray | int":
        return self.xw_base + col * self.lines_per_dense_row

    def out_first_line(self, row: "np.ndarray | int") -> "np.ndarray | int":
        return self.out_base + row * self.lines_per_dense_row


@dataclass(frozen=True)
class ThreadTrace:
    """One core's work: line accesses plus aggregate compute cycles."""

    lines: np.ndarray
    kinds: np.ndarray
    compute_cycles: float

    @property
    def n_accesses(self) -> int:
        return len(self.lines)


def _dedupe_consecutive(lines: np.ndarray, kinds: np.ndarray):
    """Drop *reads* identical (line and kind) to their predecessor.

    Writes and atomics are never dropped: each is a distinct update
    operation even when it targets the same line as its predecessor.
    """
    if len(lines) == 0:
        return lines, kinds
    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    keep[1:] = (
        (lines[1:] != lines[:-1])
        | (kinds[1:] != kinds[:-1])
        | (kinds[1:] != READ)
    )
    return lines[keep], kinds[keep]


def _nnz_stream(amap: AddressMap, matrix: CSRMatrix, lo: int, hi: int):
    """Interleaved CP/value/XW line accesses for non-zeros ``[lo, hi)``."""
    if hi <= lo:
        return np.empty(0, dtype=np.int64)
    j = np.arange(lo, hi, dtype=np.int64)
    cols = matrix.column_indices[lo:hi]
    per_nnz = 2 + amap.lines_per_dense_row
    out = np.empty((hi - lo) * per_nnz, dtype=np.int64)
    out[0::per_nnz] = amap.cp_line(j)
    out[1::per_nnz] = amap.val_line(j)
    first = amap.xw_first_line(cols)
    for k in range(amap.lines_per_dense_row):
        out[2 + k::per_nnz] = first + k
    return out


def _compute_cycles(nnz: int, writes: int, dim: int, simd_width: int) -> float:
    """In-order core compute cycles: SIMD FMAs plus index bookkeeping."""
    fma = -(-dim // simd_width)
    return nnz * (fma + 2.0) + writes * fma


def _output_accesses(amap: AddressMap, rows: np.ndarray, kind: int):
    """Write accesses covering each output row's lines."""
    lpr = amap.lines_per_dense_row
    first = amap.out_first_line(rows)
    lines = (first[:, None] + np.arange(lpr)[None, :]).reshape(-1)
    kinds = np.full(len(lines), kind, dtype=np.int8)
    return lines, kinds


def mergepath_traces(
    schedule: MergePathSchedule, dim: int, simd_width: int = 4
) -> list[ThreadTrace]:
    """Per-thread traces for the MergePath-SpMM kernel.

    Each thread reads its row-pointer window, streams its non-zeros (index,
    value, dense row), and writes complete rows regularly and partial rows
    atomically, exactly as Algorithm 2 prescribes.
    """
    matrix = schedule.matrix
    amap = AddressMap(matrix.n_rows, matrix.nnz, dim)
    segments = write_segments(schedule)
    # Map each write segment to its owning thread via the segment's start
    # non-zero (searchsorted over thread nnz boundaries).  Zero-length
    # segments (empty rows) belong to the thread whose range covers them.
    seg_thread = np.searchsorted(
        schedule.end_nnzs, segments.starts, side="right"
    )
    seg_thread = np.minimum(seg_thread, schedule.n_threads - 1)
    order = np.argsort(seg_thread, kind="stable")
    seg_sorted = order
    seg_bounds = np.searchsorted(
        seg_thread[order], np.arange(schedule.n_threads + 1)
    )

    traces = []
    for t in range(schedule.n_threads):
        y0, y1 = int(schedule.start_nnzs[t]), int(schedule.end_nnzs[t])
        x0, x1 = int(schedule.start_rows[t]), int(schedule.end_rows[t])
        rp_rows = np.arange(x0, min(x1 + 2, matrix.n_rows + 1), dtype=np.int64)
        rp_lines = np.asarray(amap.rp_line(rp_rows), dtype=np.int64)
        stream = _nnz_stream(amap, matrix, y0, y1)
        segs = seg_sorted[seg_bounds[t]: seg_bounds[t + 1]]
        wl, wk = _output_accesses(
            amap, segments.rows[segs], WRITE
        )
        wk[np.repeat(segments.atomic[segs], amap.lines_per_dense_row)] = ATOMIC
        lines = np.concatenate([rp_lines, stream, wl])
        kinds = np.concatenate(
            [
                np.zeros(len(rp_lines) + len(stream), dtype=np.int8),
                wk,
            ]
        )
        lines, kinds = _dedupe_consecutive(lines, kinds)
        traces.append(
            ThreadTrace(
                lines=lines,
                kinds=kinds,
                compute_cycles=_compute_cycles(
                    y1 - y0, len(segs), dim, simd_width
                ),
            )
        )
    return traces


def row_splitting_traces(
    schedule, dim: int, simd_width: int = 4
) -> list[ThreadTrace]:
    """Per-core traces for the row-splitting kernel.

    Each core owns a contiguous row chunk (equal row counts, wildly
    unequal non-zeros on power-law inputs) and writes every output row
    regularly — no coherence traffic, but the completion time is pinned
    to the heaviest chunk.

    Args:
        schedule: A :class:`repro.baselines.row_splitting.RowSplitSchedule`.
        dim: Dense operand width.
        simd_width: Core SIMD lanes.
    """
    matrix = schedule.matrix
    amap = AddressMap(matrix.n_rows, matrix.nnz, dim)
    rp = matrix.row_pointers
    traces = []
    for t in range(schedule.n_threads):
        row_lo = int(schedule.boundaries[t])
        row_hi = int(schedule.boundaries[t + 1])
        nnz_lo, nnz_hi = int(rp[row_lo]), int(rp[row_hi])
        rp_rows = np.arange(row_lo, min(row_hi + 1, matrix.n_rows + 1))
        rp_lines = np.asarray(amap.rp_line(rp_rows), dtype=np.int64)
        stream = _nnz_stream(amap, matrix, nnz_lo, nnz_hi)
        wl, wk = _output_accesses(
            amap, np.arange(row_lo, row_hi, dtype=np.int64), WRITE
        )
        lines = np.concatenate([rp_lines, stream, wl])
        kinds = np.concatenate(
            [np.zeros(len(rp_lines) + len(stream), dtype=np.int8), wk]
        )
        lines, kinds = _dedupe_consecutive(lines, kinds)
        traces.append(
            ThreadTrace(
                lines=lines,
                kinds=kinds,
                compute_cycles=_compute_cycles(
                    nnz_hi - nnz_lo, row_hi - row_lo, dim, simd_width
                ),
            )
        )
    return traces


def gnnadvisor_traces(
    schedule: NeighborGroupSchedule,
    dim: int,
    n_cores: int,
    simd_width: int = 4,
) -> list[ThreadTrace]:
    """Per-core traces for GNNAdvisor's neighbor-group kernel.

    Groups are dealt round-robin across cores (the kernel's grid-stride
    mapping); every output update is an atomic read-modify-write.
    """
    matrix = schedule.matrix
    amap = AddressMap(matrix.n_rows, matrix.nnz, dim)
    traces = []
    for core in range(n_cores):
        group_ids = np.arange(core, schedule.n_groups, n_cores, dtype=np.int64)
        parts = []
        total_nnz = 0
        for g in group_ids:
            lo, hi = int(schedule.group_starts[g]), int(schedule.group_ends[g])
            rp_line = np.asarray(
                [amap.rp_line(int(schedule.group_rows[g]))], dtype=np.int64
            )
            parts.append(rp_line)
            parts.append(_nnz_stream(amap, matrix, lo, hi))
            total_nnz += hi - lo
        wl, wk = _output_accesses(amap, schedule.group_rows[group_ids], ATOMIC)
        reads = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        lines = np.concatenate([reads, wl])
        kinds = np.concatenate([np.zeros(len(reads), dtype=np.int8), wk])
        lines, kinds = _dedupe_consecutive(lines, kinds)
        traces.append(
            ThreadTrace(
                lines=lines,
                kinds=kinds,
                compute_cycles=_compute_cycles(
                    total_nnz, len(group_ids), dim, simd_width
                ),
            )
        )
    return traces
