"""Large-core-count multicore simulator (Table I machine).

A from-scratch, trace-driven reimplementation of the evaluation
methodology the paper borrows from the MIT Graphite simulator: up to 1024
single-threaded in-order RISC-V-style cores, each with a private L1 and a
slice of a physically distributed shared L2, kept coherent by an
invalidation-based MESI directory with limited-4 sharer pointers, connected
by a 2-D mesh NoC with X-Y routing, and backed by distributed memory
controllers (DESIGN.md §1).

Traces are generated from the *actual* SpMM schedules
(:mod:`repro.multicore.trace`), so load imbalance, coherence traffic on
atomically updated output rows, and NoC/DRAM pressure all emerge from the
algorithms rather than being assumed.

Modules:

* :mod:`repro.multicore.config` — Table I machine description + scaling
  rules for lower core counts.
* :mod:`repro.multicore.cache` — set-associative LRU cache model.
* :mod:`repro.multicore.directory` — MESI directory with limited pointers.
* :mod:`repro.multicore.noc` — 2-D mesh with X-Y routing and link
  contention accounting.
* :mod:`repro.multicore.dram` — memory controllers and DRAM timing.
* :mod:`repro.multicore.trace` — per-thread memory/compute traces from
  SpMM schedules.
* :mod:`repro.multicore.system` — the interval simulator tying it together.
* :mod:`repro.multicore.kernels` — one-call runners for MergePath-SpMM and
  GNNAdvisor on the modeled machine.
"""

from repro.multicore.config import (
    CacheConfig,
    DramConfig,
    MachineConfig,
    NocConfig,
    table1_machine,
)
from repro.multicore.system import MulticoreSystem, SimulationResult
from repro.multicore.trace import (
    ThreadTrace,
    gnnadvisor_traces,
    mergepath_traces,
    row_splitting_traces,
)
from repro.multicore.kernels import (
    run_gnnadvisor,
    run_mergepath,
    run_row_splitting,
)
from repro.multicore.sweep import ScalingCurve, sweep_core_counts
from repro.multicore.locality import (
    apply_placement,
    linear_placement,
    tile_placement,
)

__all__ = [
    "CacheConfig",
    "DramConfig",
    "MachineConfig",
    "MulticoreSystem",
    "NocConfig",
    "ScalingCurve",
    "SimulationResult",
    "ThreadTrace",
    "apply_placement",
    "linear_placement",
    "sweep_core_counts",
    "tile_placement",
    "gnnadvisor_traces",
    "mergepath_traces",
    "row_splitting_traces",
    "run_gnnadvisor",
    "run_mergepath",
    "run_row_splitting",
    "table1_machine",
]
