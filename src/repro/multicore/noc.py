"""2-D electrical mesh with X-Y routing and link-contention accounting.

Table I's network: 2 cycles per hop (1 router + 1 link), 64-bit flits,
infinite input buffers, link contention only.  Messages route X-first then
Y.  Contention is modeled by accumulating flit traversals per directed
link and inflating hop latency with an M/D/1-style queueing factor based
on each link's utilization over the simulated interval.
"""

from __future__ import annotations

import numpy as np

from repro.multicore.config import MachineConfig, NocConfig


class MeshNetwork:
    """Mesh geometry, routing and traffic accounting.

    Args:
        machine: Machine configuration (mesh dimensions, NoC parameters).
    """

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.noc: NocConfig = machine.noc
        self.width = machine.mesh_width
        self.height = machine.mesh_height
        # Directed link loads (flit counts): horizontal then vertical.
        # link id encoding: (row, col, direction) flattened.
        self._h_links = np.zeros((self.height, max(1, self.width - 1), 2))
        self._v_links = np.zeros((max(1, self.height - 1), self.width, 2))
        self.total_flit_hops = 0.0

    def coordinates(self, core: int) -> tuple[int, int]:
        """``(x, y)`` mesh position of a core."""
        if not 0 <= core < self.machine.n_cores:
            raise IndexError(f"core {core} out of range")
        return core % self.width, core // self.width

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two cores (X-Y routing)."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def base_latency(self, src: int, dst: int) -> int:
        """Uncontended message latency in cycles."""
        return self.noc.hop_cycles * self.hops(src, dst)

    def record_message(self, src: int, dst: int, payload_bytes: int) -> int:
        """Account a message's flits on every link of its X-Y path.

        Returns:
            The uncontended latency of the message (contention is applied
            globally at the end of the interval via
            :meth:`contention_factor`).
        """
        flits = max(1, int(np.ceil(payload_bytes * 8 / self.noc.flit_bits)))
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        # X-first.
        step = 1 if dx > sx else -1
        for x in range(sx, dx, step):
            direction = 0 if step > 0 else 1
            self._h_links[sy, min(x, x + step), direction] += flits
            self.total_flit_hops += flits
        step = 1 if dy > sy else -1
        for y in range(sy, dy, step):
            direction = 0 if step > 0 else 1
            self._v_links[min(y, y + step), dx, direction] += flits
            self.total_flit_hops += flits
        return self.base_latency(src, dst)

    def record_bulk(self, src: int, dst: int, payload_bytes: int, count: float) -> None:
        """Account ``count`` identical messages without per-message looping.

        Used by the interval simulator for aggregate traffic (e.g. all of a
        core's L2-slice lookups in a quantum); loads every link on the X-Y
        path with ``count * flits``.
        """
        flits = max(1, int(np.ceil(payload_bytes * 8 / self.noc.flit_bits)))
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        step = 1 if dx > sx else -1
        for x in range(sx, dx, step):
            direction = 0 if step > 0 else 1
            self._h_links[sy, min(x, x + step), direction] += flits * count
            self.total_flit_hops += flits * count
        step = 1 if dy > sy else -1
        for y in range(sy, dy, step):
            direction = 0 if step > 0 else 1
            self._v_links[min(y, y + step), dx, direction] += flits * count
            self.total_flit_hops += flits * count

    def max_link_load(self) -> float:
        """Flit count on the most loaded directed link."""
        h = float(self._h_links.max(initial=0.0))
        v = float(self._v_links.max(initial=0.0))
        return max(h, v)

    def contention_factor(self, interval_cycles: float) -> float:
        """Latency inflation factor from link queueing over an interval.

        With utilization ``rho`` of the hottest link (one flit per cycle
        per link), an M/D/1-style waiting factor ``1 + rho / (2 (1 - rho))``
        is applied; utilization is clamped below 1 (saturated links
        lengthen the interval itself on the next fixed-point iteration).
        """
        if not self.noc.link_contention or interval_cycles <= 0:
            return 1.0
        rho = min(0.95, self.max_link_load() / interval_cycles)
        return 1.0 + rho / (2.0 * (1.0 - rho))

    def reset(self) -> None:
        """Zero all traffic accounting."""
        self._h_links[:] = 0.0
        self._v_links[:] = 0.0
        self.total_flit_hops = 0.0
