"""One-call multicore kernel runners for the Figure 9 experiments.

Each runner builds the algorithm's schedule with a one-to-one
thread-to-core mapping (Section V-D), generates traces, and simulates the
Table I machine at the requested core count.
"""

from __future__ import annotations

from repro import obs
from repro.baselines.neighbor_groups import NeighborGroupSchedule
from repro.baselines.row_splitting import RowSplitSchedule
from repro.core.schedule import MergePathSchedule
from repro.formats import CSRMatrix
from repro.multicore.config import table1_machine
from repro.multicore.system import MulticoreSystem, SimulationResult
from repro.multicore.trace import (
    gnnadvisor_traces,
    mergepath_traces,
    row_splitting_traces,
)


@obs.instrumented
def run_mergepath(
    matrix: CSRMatrix,
    dim: int,
    n_cores: int,
    quantum: int = 256,
) -> SimulationResult:
    """Simulate MergePath-SpMM with one merge-path thread per core.

    With the thread count pinned to the core count, the merge-path cost
    scales with the input size (Section V-D's observation), so larger
    graphs see fewer partial rows per core.
    """
    machine = table1_machine(n_cores)
    schedule = MergePathSchedule(matrix, n_cores)
    traces = mergepath_traces(schedule, dim, simd_width=machine.simd_width)
    return MulticoreSystem(machine).run(traces, quantum=quantum)


@obs.instrumented
def run_row_splitting(
    matrix: CSRMatrix,
    dim: int,
    n_cores: int,
    quantum: int = 256,
) -> SimulationResult:
    """Simulate row-splitting with one contiguous row chunk per core.

    The hardware-accelerator baseline strategy: no synchronization at all,
    but on power-law inputs the core holding the evil rows becomes the
    completion-time bottleneck.
    """
    machine = table1_machine(n_cores)
    schedule = RowSplitSchedule.build(matrix, n_cores)
    traces = row_splitting_traces(schedule, dim, simd_width=machine.simd_width)
    return MulticoreSystem(machine).run(traces, quantum=quantum)


@obs.instrumented
def run_gnnadvisor(
    matrix: CSRMatrix,
    dim: int,
    n_cores: int,
    group_size: int | None = None,
    quantum: int = 256,
) -> SimulationResult:
    """Simulate GNNAdvisor with neighbor groups dealt across the cores."""
    machine = table1_machine(n_cores)
    schedule = NeighborGroupSchedule.build(matrix, group_size)
    traces = gnnadvisor_traces(
        schedule, dim, n_cores, simd_width=machine.simd_width
    )
    return MulticoreSystem(machine).run(traces, quantum=quantum)
