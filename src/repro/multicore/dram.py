"""Memory controllers and DRAM timing.

Table I: 32 distributed controllers at the chip boundary, 100 ns access
latency, 320 GB/s aggregate bandwidth (held constant as core counts
scale).  Lines are address-interleaved across controllers; queueing delay
is modeled from aggregate bandwidth utilization over the simulated
interval, mirroring the link-contention treatment in
:mod:`repro.multicore.noc`.
"""

from __future__ import annotations

from repro.multicore.config import MachineConfig


class DramModel:
    """DRAM access accounting for one simulation.

    Args:
        machine: Machine configuration.
    """

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.accesses = 0
        self.bytes_transferred = 0.0

    def controller_of(self, line: int) -> int:
        """Home memory controller of a line (address-interleaved)."""
        return line % self.machine.dram.n_controllers

    def record_access(self, line_bytes: int) -> float:
        """Account one line fill/writeback; return uncontended latency."""
        self.accesses += 1
        self.bytes_transferred += line_bytes
        return self.machine.dram_latency_cycles

    def queueing_factor(self, interval_cycles: float) -> float:
        """Latency inflation from bandwidth utilization over an interval."""
        if interval_cycles <= 0:
            return 1.0
        peak = self.machine.dram_bytes_per_cycle * interval_cycles
        rho = min(0.95, self.bytes_transferred / peak) if peak > 0 else 0.0
        return 1.0 + rho / (2.0 * (1.0 - rho))

    def reset(self) -> None:
        self.accesses = 0
        self.bytes_transferred = 0.0
