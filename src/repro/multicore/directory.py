"""Invalidation-based MESI directory with limited sharer pointers.

Each cache line's directory entry lives at its home L2 slice and tracks up
to ``n_pointers`` sharers (Table I: limited-4) plus an exclusive owner.
When a fifth sharer arrives, one existing sharer is invalidated to free a
pointer — the classic limited-directory behaviour.  Writes (including the
atomic read-modify-writes of partial-row updates) invalidate every sharer
and take exclusive ownership; this is the serialization mechanism that
makes indiscriminate atomics expensive at high core counts (Section V-D).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DirectoryStats:
    """Coherence event counters."""

    read_misses: int = 0
    write_misses: int = 0
    invalidations_sent: int = 0
    downgrades: int = 0
    pointer_evictions: int = 0


class Directory:
    """Directory state for all lines, with limited sharer pointers.

    Args:
        n_pointers: Maximum sharers tracked per line before pointer
            eviction kicks in.
    """

    __slots__ = ("n_pointers", "_sharers", "_owner", "stats")

    def __init__(self, n_pointers: int = 4) -> None:
        if n_pointers < 1:
            raise ValueError(f"n_pointers must be >= 1, got {n_pointers}")
        self.n_pointers = n_pointers
        self._sharers: dict[int, list[int]] = {}
        self._owner: dict[int, int] = {}
        self.stats = DirectoryStats()

    def sharers_of(self, line: int) -> tuple[int, ...]:
        """Current sharers of ``line`` (read-only view)."""
        return tuple(self._sharers.get(line, ()))

    def owner_of(self, line: int) -> int | None:
        """Exclusive owner of ``line``, if any."""
        return self._owner.get(line)

    def read(self, line: int, core: int) -> tuple[bool, list[int]]:
        """Record a read of ``line`` by ``core``.

        Returns:
            ``(owner_downgraded, invalidated_cores)`` — whether a remote
            exclusive owner had to be downgraded (dirty forwarding), and
            which sharers lost their copy to pointer eviction.
        """
        owner = self._owner.get(line)
        downgraded = False
        if owner is not None and owner != core:
            # Remote M/E copy: downgrade to shared, data forwarded.
            del self._owner[line]
            self._sharers.setdefault(line, [])
            if owner not in self._sharers[line]:
                self._sharers[line].append(owner)
            self.stats.downgrades += 1
            downgraded = True
        sharers = self._sharers.setdefault(line, [])
        invalidated: list[int] = []
        if core not in sharers:
            if len(sharers) >= self.n_pointers:
                victim = sharers.pop(0)
                invalidated.append(victim)
                self.stats.pointer_evictions += 1
                self.stats.invalidations_sent += 1
            sharers.append(core)
        return downgraded, invalidated

    def write(self, line: int, core: int) -> list[int]:
        """Record a write of ``line`` by ``core``; take exclusive ownership.

        Returns:
            Cores whose copies were invalidated (remote sharers and any
            remote exclusive owner).
        """
        invalidated: list[int] = []
        owner = self._owner.get(line)
        if owner is not None and owner != core:
            invalidated.append(owner)
        for sharer in self._sharers.get(line, ()):
            if sharer != core and sharer not in invalidated:
                invalidated.append(sharer)
        self._sharers[line] = []
        self._owner[line] = core
        self.stats.invalidations_sent += len(invalidated)
        return invalidated

    def drop(self, line: int) -> None:
        """Forget all state for ``line`` (L2 eviction)."""
        self._sharers.pop(line, None)
        self._owner.pop(line, None)
