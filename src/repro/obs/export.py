"""Exported run records: ``BENCH_<name>.json`` files.

One record per experiment run, written next to the regenerated tables in
``benchmarks/results/`` (override with ``$REPRO_BENCH_DIR`` or the
``directory=`` argument).  A record is self-describing JSON::

    {
      "schema": "repro.obs.run/1",
      "name": "fig5",
      "timestamp": 1754500000.0,        # unix seconds
      "iso_time": "2026-08-06T12:00:00",
      "wall_seconds": 5.1,
      "status": "ok" | "error",
      "error": null | "ValueError: ...",
      "metrics": [...],                  # MetricRegistry.snapshot() form
      "kernel_cycles": {kernel: {component: cycles}},
    }

Records give every figure a machine-readable provenance trail: the
harness uses the last recorded ``wall_seconds`` for its time estimates,
``python -m repro obs-report`` renders them, and future PRs can diff the
``metrics`` field for perf regressions.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime
from pathlib import Path

SCHEMA = "repro.obs.run/1"
RECORD_PREFIX = "BENCH_"
_ENV_DIR = "REPRO_BENCH_DIR"
_DEFAULT_DIR = Path("benchmarks") / "results"


def records_dir(directory: "Path | str | None" = None) -> Path:
    """Resolve the run-record directory (arg > ``$REPRO_BENCH_DIR`` > default)."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(_ENV_DIR)
    return Path(env) if env else _DEFAULT_DIR


def diff_snapshots(before: list[dict], after: list[dict]) -> list[dict]:
    """Per-run metric deltas between two registry snapshots.

    Counters and histogram/timer aggregates subtract; gauges (last-write
    semantics) keep their ``after`` value.  Metrics absent from
    ``before`` pass through unchanged, and metrics whose delta is zero
    are dropped, so the result is "what this run contributed".
    """
    def key(entry: dict) -> tuple:
        return (entry["name"], tuple(sorted(entry.get("labels", {}).items())))

    prior = {key(e): e for e in before}
    deltas: list[dict] = []
    for entry in after:
        old = prior.get(key(entry))
        if old is None:
            deltas.append(entry)
            continue
        kind = entry.get("kind")
        if kind == "counter":
            value = entry["value"] - old["value"]
            if value:
                deltas.append({**entry, "value": value})
        elif kind in ("histogram", "timer"):
            count = entry["count"] - old["count"]
            if count:
                total = entry["total"] - old["total"]
                deltas.append(
                    {
                        **entry,
                        "count": count,
                        "total": total,
                        "mean": total / count,
                        # min/max/percentiles are not decomposable over a
                        # window; keep the cumulative values.
                    }
                )
        else:
            deltas.append(entry)
    return deltas


def run_record(
    name: str,
    metrics: "list[dict] | None" = None,
    wall_seconds: "float | None" = None,
    status: str = "ok",
    error: "str | None" = None,
    extra: "dict | None" = None,
) -> dict:
    """Assemble a schema-conforming run record dict."""
    from repro.obs.report import kernel_breakdowns

    now = time.time()
    record = {
        "schema": SCHEMA,
        "name": name,
        "timestamp": now,
        "iso_time": datetime.fromtimestamp(now).isoformat(timespec="seconds"),
        "wall_seconds": wall_seconds,
        "status": status,
        "error": error,
        "metrics": metrics or [],
        "kernel_cycles": kernel_breakdowns(metrics or []),
    }
    if extra:
        record.update(extra)
    return record


def write_run_record(
    record: dict, directory: "Path | str | None" = None
) -> Path:
    """Write ``record`` to ``<dir>/BENCH_<name>.json`` and return the path."""
    directory = records_dir(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{RECORD_PREFIX}{record['name']}.json"
    path.write_text(json.dumps(record, indent=1) + "\n")
    return path


def read_records(directory: "Path | str | None" = None) -> list[dict]:
    """All parseable run records in the directory, oldest first."""
    directory = records_dir(directory)
    if not directory.is_dir():
        return []
    records = []
    for path in sorted(directory.glob(f"{RECORD_PREFIX}*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and record.get("schema") == SCHEMA:
            records.append(record)
    records.sort(key=lambda r: r.get("timestamp") or 0.0)
    return records


def latest_record(
    name: "str | None" = None, directory: "Path | str | None" = None
) -> "dict | None":
    """Most recent run record, optionally restricted to one experiment."""
    records = read_records(directory)
    if name is not None:
        records = [r for r in records if r.get("name") == name]
    return records[-1] if records else None
