"""Exported run records: append-only ``BENCH_<name>.json`` trajectories.

Each ``BENCH_<name>.json`` holds the *history* of an experiment — every
recorded run, oldest first — written next to the regenerated tables in
``benchmarks/results/`` (override with ``$REPRO_BENCH_DIR`` or the
``directory=`` argument).  The file is a self-describing trajectory::

    {
      "schema": "repro.obs.runs/2",
      "name": "serve",
      "runs": [ <run record>, <run record>, ... ]   # oldest first
    }

where each run record keeps the PR-1 per-run schema::

    {
      "schema": "repro.obs.run/1",
      "name": "fig5",
      "timestamp": 1754500000.0,        # unix seconds
      "iso_time": "2026-08-06T12:00:00",
      "wall_seconds": 5.1,
      "status": "ok" | "error",
      "error": null | "ValueError: ...",
      "metrics": [...],                  # MetricRegistry.snapshot() form
      "kernel_cycles": {kernel: {component: cycles}},
    }

:func:`write_run_record` **appends**: a new run never overwrites the
trajectory (the original PR-1 behavior lost all history, which made
regression gating impossible).  Legacy single-run files are migrated in
place — a ``repro.obs.run/1`` document found on disk becomes the first
entry of the new trajectory.  Trajectories are bounded at
:data:`MAX_RUNS` entries (oldest dropped) and written atomically.

``tools/check_regression.py`` compares a trajectory's latest run against
its history with noise-tolerant thresholds; ``python -m repro
obs-report`` renders the most recent runs; the harness uses the last
recorded ``wall_seconds`` for its time estimates.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime
from pathlib import Path

SCHEMA = "repro.obs.run/1"
TRAJECTORY_SCHEMA = "repro.obs.runs/2"
RECORD_PREFIX = "BENCH_"
# Per-trajectory retention bound: enough history for regression
# baselines while keeping the JSON files reviewable.
MAX_RUNS = 200
_ENV_DIR = "REPRO_BENCH_DIR"
_DEFAULT_DIR = Path("benchmarks") / "results"


def records_dir(directory: "Path | str | None" = None) -> Path:
    """Resolve the run-record directory (arg > ``$REPRO_BENCH_DIR`` > default)."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(_ENV_DIR)
    return Path(env) if env else _DEFAULT_DIR


def diff_snapshots(before: list[dict], after: list[dict]) -> list[dict]:
    """Per-run metric deltas between two registry snapshots.

    Counters and histogram/timer aggregates subtract; gauges (last-write
    semantics) keep their ``after`` value.  Metrics absent from
    ``before`` pass through unchanged, and metrics whose delta is zero
    are dropped, so the result is "what this run contributed".
    """
    def key(entry: dict) -> tuple:
        return (entry["name"], tuple(sorted(entry.get("labels", {}).items())))

    prior = {key(e): e for e in before}
    deltas: list[dict] = []
    for entry in after:
        old = prior.get(key(entry))
        if old is None:
            deltas.append(entry)
            continue
        kind = entry.get("kind")
        if kind == "counter":
            value = entry["value"] - old["value"]
            if value:
                deltas.append({**entry, "value": value})
        elif kind in ("histogram", "timer"):
            count = entry["count"] - old["count"]
            if count:
                total = entry["total"] - old["total"]
                deltas.append(
                    {
                        **entry,
                        "count": count,
                        "total": total,
                        "mean": total / count,
                        # min/max/percentiles are not decomposable over a
                        # window; keep the cumulative values.
                    }
                )
        else:
            deltas.append(entry)
    return deltas


def run_record(
    name: str,
    metrics: "list[dict] | None" = None,
    wall_seconds: "float | None" = None,
    status: str = "ok",
    error: "str | None" = None,
    extra: "dict | None" = None,
) -> dict:
    """Assemble a schema-conforming run record dict."""
    from repro.obs.report import kernel_breakdowns

    now = time.time()
    record = {
        "schema": SCHEMA,
        "name": name,
        "timestamp": now,
        "iso_time": datetime.fromtimestamp(now).isoformat(timespec="seconds"),
        "wall_seconds": wall_seconds,
        "status": status,
        "error": error,
        "metrics": metrics or [],
        "kernel_cycles": kernel_breakdowns(metrics or []),
    }
    if extra:
        record.update(extra)
    return record


def _load_trajectory(path: Path) -> list[dict]:
    """Parse one ``BENCH_*.json`` file into its run list (oldest first).

    Understands both the trajectory form (``repro.obs.runs/2``) and the
    legacy single-run form (``repro.obs.run/1``), which is migrated by
    wrapping it as a one-entry history.  Unparseable files yield ``[]``.
    """
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(doc, dict):
        return []
    if doc.get("schema") == TRAJECTORY_SCHEMA:
        runs = doc.get("runs")
        if not isinstance(runs, list):
            return []
        return [
            run
            for run in runs
            if isinstance(run, dict) and run.get("schema") == SCHEMA
        ]
    if doc.get("schema") == SCHEMA:
        # Legacy single-run file from before trajectories existed.
        return [doc]
    return []


def write_run_record(
    record: dict,
    directory: "Path | str | None" = None,
    max_runs: int = MAX_RUNS,
) -> Path:
    """Append ``record`` to ``<dir>/BENCH_<name>.json``; return the path.

    The trajectory on disk (including a legacy single-run file, which is
    migrated in place) is preserved; histories longer than ``max_runs``
    drop their oldest entries.  The write is atomic (tmp + ``os.replace``)
    so a crash mid-write never corrupts the history.
    """
    if max_runs < 1:
        raise ValueError(f"max_runs must be >= 1, got {max_runs}")
    directory = records_dir(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{RECORD_PREFIX}{record['name']}.json"
    runs = _load_trajectory(path) if path.exists() else []
    runs.append(record)
    runs = runs[-max_runs:]
    doc = {
        "schema": TRAJECTORY_SCHEMA,
        "name": record["name"],
        "runs": runs,
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=1) + "\n")
    os.replace(tmp, path)
    return path


def read_trajectory(
    name: str, directory: "Path | str | None" = None
) -> list[dict]:
    """One experiment's full run history, oldest first."""
    directory = records_dir(directory)
    path = directory / f"{RECORD_PREFIX}{name}.json"
    if not path.is_file():
        return []
    runs = [r for r in _load_trajectory(path) if r.get("name") == name]
    runs.sort(key=lambda r: r.get("timestamp") or 0.0)
    return runs


def read_records(directory: "Path | str | None" = None) -> list[dict]:
    """All parseable run records in the directory, oldest first.

    Flattens trajectories: every run of every experiment appears as its
    own record, so pre-trajectory consumers keep working unchanged.
    """
    directory = records_dir(directory)
    if not directory.is_dir():
        return []
    records = []
    for path in sorted(directory.glob(f"{RECORD_PREFIX}*.json")):
        records.extend(_load_trajectory(path))
    records.sort(key=lambda r: r.get("timestamp") or 0.0)
    return records


def latest_record(
    name: "str | None" = None, directory: "Path | str | None" = None
) -> "dict | None":
    """Most recent run record, optionally restricted to one experiment."""
    records = read_records(directory)
    if name is not None:
        records = [r for r in records if r.get("name") == name]
    return records[-1] if records else None
