"""Thread-safe metric primitives and the process-global registry.

Four primitives cover everything the reproduction needs to observe:

* :class:`Counter` — monotonically increasing event count (binary-search
  steps, atomic writes issued, DRAM accesses);
* :class:`Gauge` — last-written value (the current kernel's issue-cycle
  component);
* :class:`Histogram` — distribution of observations (per-core cycles,
  per-kernel totals);
* :class:`Timer` — a histogram of elapsed seconds with a context-manager
  front end.

Metrics live in a :class:`MetricRegistry` keyed by ``(name, labels)``.
Instrumentation never talks to a registry directly; it calls the
module-level accessors (:func:`counter`, :func:`gauge`, :func:`histogram`,
:func:`timer`), which resolve against the *active* registry.  When no
registry is active — the default — the accessors hand back shared null
singletons whose mutators are ``pass``, so instrumented code paths run
uninstrumented at the cost of one global load.  Hot loops should guard
with :func:`enabled` and skip even that.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

# Histograms keep raw observations for percentile estimates, but only up
# to this many; past the cap only the running aggregates update.
_RESERVOIR_CAP = 65536


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: "dict | None" = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: "int | float" = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> "int | float":
        return self._value

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Gauge:
    """A value that can go up or down; keeps the last write."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: "dict | None" = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Histogram:
    """A distribution of observations with running aggregates.

    Raw observations are retained (up to a cap) so snapshots can report
    percentiles; ``count``/``total``/``min``/``max`` are exact regardless.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "_lock", "_count", "_total", "_min",
                 "_max", "_values")

    def __init__(self, name: str, labels: "dict | None" = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._values) < _RESERVOIR_CAP:
                self._values.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``q`` in [0, 100])."""
        with self._lock:
            if not self._values:
                return 0.0
            ordered = sorted(self._values)
        rank = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict:
        with self._lock:
            count = self._count
            total = self._total
            lo = self._min if count else 0.0
            hi = self._max if count else 0.0
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "min": lo,
            "max": hi,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class Timer(Histogram):
    """A histogram of elapsed wall-clock seconds.

    Use as a context manager::

        with registry.timer("core.schedule.seconds"):
            build_schedule(matrix, 1024)
    """

    kind = "timer"
    __slots__ = ("_started",)

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.observe(time.perf_counter() - self._started)


class _NullMetric:
    """Shared do-nothing stand-in used when no registry is active."""

    kind = "null"
    name = ""
    labels: dict = {}
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def add(self, amount) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def percentile(self, q) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricRegistry:
    """A collection of metrics keyed by ``(name, sorted labels)``.

    Get-or-create accessors are thread-safe; two threads asking for the
    same ``(name, labels)`` receive the same object.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: dict):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, labels)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def timer(self, name: str, **labels) -> Timer:
        return self._get(Timer, name, labels)

    def __iter__(self) -> Iterator:
        return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> list[dict]:
        """All metrics as plain dicts, sorted by name then labels."""
        entries = [m.snapshot() for m in self]
        entries.sort(key=lambda e: (e["name"], _label_key(e["labels"])))
        return entries

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# Active-registry plumbing
# ----------------------------------------------------------------------
_active_registry: "MetricRegistry | None" = None


def enabled() -> bool:
    """Whether a metric registry is currently collecting."""
    return _active_registry is not None


def get_registry() -> "MetricRegistry | None":
    """The active registry, or ``None`` when collection is disabled."""
    return _active_registry


def set_registry(registry: "MetricRegistry | None") -> "MetricRegistry | None":
    """Install ``registry`` as the active one; returns the previous one."""
    global _active_registry
    previous = _active_registry
    _active_registry = registry
    return previous


def enable() -> MetricRegistry:
    """Start collecting into a fresh registry (replacing any active one)."""
    registry = MetricRegistry()
    set_registry(registry)
    return registry


def disable() -> "MetricRegistry | None":
    """Stop collecting; returns the registry that was active."""
    return set_registry(None)


def counter(name: str, **labels):
    """Active registry's counter, or a null metric when disabled."""
    registry = _active_registry
    return (
        registry.counter(name, **labels)
        if registry is not None
        else NULL_METRIC
    )


def gauge(name: str, **labels):
    """Active registry's gauge, or a null metric when disabled."""
    registry = _active_registry
    return (
        registry.gauge(name, **labels)
        if registry is not None
        else NULL_METRIC
    )


def histogram(name: str, **labels):
    """Active registry's histogram, or a null metric when disabled."""
    registry = _active_registry
    return (
        registry.histogram(name, **labels)
        if registry is not None
        else NULL_METRIC
    )


def timer(name: str, **labels):
    """Active registry's timer, or a null metric when disabled."""
    registry = _active_registry
    return (
        registry.timer(name, **labels)
        if registry is not None
        else NULL_METRIC
    )
