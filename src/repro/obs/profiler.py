"""Profiled runs and the ``@instrumented`` entry-point decorator.

:func:`profiled` turns collection on for a scope: it installs a fresh
:class:`~repro.obs.metrics.MetricRegistry` and
:class:`~repro.obs.trace.TraceRecorder`, yields a
:class:`ProfileSession`, and restores the previous state (writing the
trace file if asked) on exit.  Sessions nest: an inner ``profiled()``
shadows the outer one and puts it back afterwards.

:func:`instrumented` marks a public kernel/executor entry point.  When
nothing is collecting, the wrapper is two global loads and a branch —
uninstrumented runs pay essentially nothing (enforced by
``tools/check_instrumentation.py``'s companion tests).  When a session is
active, each call becomes a trace span plus a ``time.<span>`` timer
observation and a ``calls.<span>`` counter increment.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


class ProfileSession:
    """Handle on one profiled scope's registry and trace recorder."""

    def __init__(
        self,
        registry: _metrics.MetricRegistry,
        recorder: _trace.TraceRecorder,
        trace_path: "str | Path | None" = None,
    ) -> None:
        self.registry = registry
        self.trace = recorder
        self.trace_path = Path(trace_path) if trace_path else None
        self.started_at = time.time()
        self.wall_seconds: "float | None" = None

    def snapshot(self) -> list[dict]:
        """Current metric snapshot (see ``MetricRegistry.snapshot``)."""
        return self.registry.snapshot()

    def summary(self) -> str:
        """Human-readable metric summary for this session so far."""
        from repro.obs.report import render_text

        return render_text(self.snapshot())


@contextmanager
def profiled(
    trace_path: "str | Path | None" = None,
    process_name: str = "repro",
) -> Iterator[ProfileSession]:
    """Collect metrics and trace events for the scope of the ``with``.

    Args:
        trace_path: When given, the Chrome trace JSON is written there on
            exit (even if the body raises).
        process_name: Trace metadata process name.

    Yields:
        The live :class:`ProfileSession`.
    """
    registry = _metrics.MetricRegistry()
    recorder = _trace.TraceRecorder(process_name=process_name)
    session = ProfileSession(registry, recorder, trace_path=trace_path)
    previous_registry = _metrics.set_registry(registry)
    previous_recorder = _trace.set_recorder(recorder)
    started = time.perf_counter()
    try:
        yield session
    finally:
        session.wall_seconds = time.perf_counter() - started
        _metrics.set_registry(previous_registry)
        _trace.set_recorder(previous_recorder)
        if session.trace_path is not None:
            recorder.write(session.trace_path)


def collecting() -> bool:
    """Whether any collection (metrics or tracing) is currently active."""
    return (
        _metrics._active_registry is not None
        or _trace._active_recorder is not None
    )


def instrumented(
    fn: "Callable | None" = None,
    *,
    name: "str | None" = None,
    category: str = "repro",
) -> Callable:
    """Mark an entry point for span + timer instrumentation.

    Usable bare (``@instrumented``) or configured
    (``@instrumented(name="gpu.kernel_time")``).  The span name defaults
    to ``<module tail>.<qualname>`` (e.g. ``core.spmm.merge_path_spmm``).
    """

    def decorate(func: Callable) -> Callable:
        span_name = name
        if span_name is None:
            module_tail = func.__module__.split(".", 1)[-1]
            span_name = f"{module_tail}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            # Fast path: nothing collecting, call straight through.
            if (
                _metrics._active_registry is None
                and _trace._active_recorder is None
            ):
                return func(*args, **kwargs)
            _metrics.counter(f"calls.{span_name}").inc()
            started = time.perf_counter()
            with _trace.span(span_name, category=category):
                result = func(*args, **kwargs)
            _metrics.timer(f"time.{span_name}").observe(
                time.perf_counter() - started
            )
            return result

        wrapper.__instrumented__ = True
        wrapper.__instrumented_span__ = span_name
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
