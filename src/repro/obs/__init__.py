"""``repro.obs`` — the unified instrumentation layer.

Counters, gauges, histograms and timers (:mod:`repro.obs.metrics`),
Chrome-trace spans (:mod:`repro.obs.trace`), profiled runs and the
``@instrumented`` decorator (:mod:`repro.obs.profiler`), text/JSON
summaries (:mod:`repro.obs.report`) and ``BENCH_*.json`` run records
(:mod:`repro.obs.export`).

The layer is **off by default and free when off**: every accessor
resolves against a process-global "active" registry/recorder, and with
none installed the accessors return shared no-op objects while
``@instrumented`` wrappers call straight through.  Turn collection on
for a scope with::

    from repro import obs

    with obs.profiled(trace_path="trace.json") as session:
        merge_path_spmm(matrix, dense)
    print(session.summary())

or for a whole process with ``obs.enable()`` / ``obs.disable()``.
Hot loops guard their accounting with ``if obs.enabled():`` so the
uninstrumented path costs a single global load.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs import rtrace, slo
from repro.obs.export import (
    diff_snapshots,
    latest_record,
    read_records,
    read_trajectory,
    records_dir,
    run_record,
    write_run_record,
)
from repro.obs.rtrace import FlightRecorder, RequestContext
from repro.obs.slo import SLObjective, SLOTracker, render_slo_report
from repro.obs.metrics import (
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Timer,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    get_registry,
    histogram,
    set_registry,
    timer,
)
from repro.obs.profiler import (
    ProfileSession,
    collecting,
    instrumented,
    profiled,
)
from repro.obs.report import kernel_breakdowns, render_json, render_text
from repro.obs.trace import (
    TraceRecorder,
    get_recorder,
    instant,
    set_recorder,
    span,
)

__all__ = [
    # metrics
    "Counter", "Gauge", "Histogram", "Timer", "MetricRegistry",
    "NULL_METRIC", "counter", "gauge", "histogram", "timer",
    "enable", "disable", "enabled", "get_registry", "set_registry",
    # trace
    "TraceRecorder", "span", "instant", "get_recorder", "set_recorder",
    # profiler
    "profiled", "ProfileSession", "instrumented", "collecting",
    # report
    "render_text", "render_json", "kernel_breakdowns",
    # export
    "run_record", "write_run_record", "read_records", "latest_record",
    "records_dir", "diff_snapshots", "read_trajectory",
    # request tracing + SLOs
    "rtrace", "slo", "RequestContext", "FlightRecorder",
    "SLObjective", "SLOTracker", "render_slo_report",
]
