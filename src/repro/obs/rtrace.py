"""Request-scoped tracing: per-request latency attribution ledgers.

The PR-1 span layer (:mod:`repro.obs.trace`) answers "where does *the
process* spend time"; it cannot answer "where did *this request* spend
time", because a serving request crosses thread and queue boundaries —
admission on the client thread, a wait in the batch queue, execution on
a worker thread, dispatch into a backend, plan caches, the engine
kernel — and thread-local span nesting loses the request identity at
every hop.

This module adds **explicit context propagation**: a
:class:`RequestContext` (trace id + per-stage timing :class:`Ledger`) is
created at admission, carried *by value* through the queue alongside the
request's operands, and **activated** on whichever thread currently
works on the request's behalf.  While active, :func:`stage` blocks
attribute their *self time* (wall time minus nested stage time) to every
active context, so the stage taxonomy forms non-overlapping leaves whose
sum reconciles with end-to-end latency:

``queue`` → ``batch_form`` → ``dispatch`` (selection overhead) →
``kernel`` (backend execution, excluding nested ``plan_compile``) →
``verify`` / ``fallback`` → ``scatter`` (copy-out), plus ``other`` for
the residual the service stamps at finalization.

A batch executes once for many requests, so activation takes a *set* of
contexts and shared stages are attributed at full wall value to each
member — the per-request view of shared wall time, which is what tail
latency attribution needs.  Cache events that are counts rather than
durations (``plan_cache_hit`` / ``plan_compile``) land in the ledger's
event counters.

When a Chrome-trace recorder is active, each attributed stage also emits
a span stamped with the request's ``trace_id``, so one slow request can
be followed across threads in Perfetto by filtering on the id.

:class:`FlightRecorder` retains a bounded set of the slowest completed
and most recent failed request summaries for post-hoc dumps (the
serving layer owns one per service; ``serve-bench`` embeds the dump in
``BENCH_serve.json``).
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

# Stage names the serving stack emits, in pipeline order.  Not enforced —
# any stage name is accepted — but documented here as the canonical
# taxonomy reports and tests rely on.
STAGES = (
    "sample",       # ego-graph sampling + extraction (pre-admission)
    "queue",        # admission -> pulled into a forming batch
    "batch_form",   # pulled -> batch execution start
    "dispatch",     # backend selection + bandit accounting overhead
    "plan_compile", # schedule build + plan compilation (cache miss)
    "kernel",       # backend execution, excluding nested plan_compile
    "verify",       # output-oracle cross-check
    "fallback",     # verified_spmm recovery path
    "ipc",          # process-pool transport: pickle, pipe, wakeups
    "scatter",      # per-request copy-out / per-shard operand slicing
    "halo",         # shard-tier gather: partial boundary-row summation
    "other",        # residual stamped at finalization
)

_trace_counter = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id (pid-prefixed monotonic counter)."""
    return f"{os.getpid():x}-{next(_trace_counter):08x}"


class Ledger:
    """Thread-safe per-request accumulator of stage seconds and events.

    Each request owns exactly one ledger; ledgers are never shared
    between requests (batched requests each keep their own — shared
    stages are attributed to every member's ledger separately).
    """

    __slots__ = ("_lock", "_stages", "_events")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: "dict[str, float]" = {}
        self._events: "dict[str, int]" = {}

    def add(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` of attributed time into ``stage``."""
        if seconds < 0.0:
            seconds = 0.0
        with self._lock:
            self._stages[stage] = self._stages.get(stage, 0.0) + seconds

    def count(self, event: str, n: int = 1) -> None:
        """Bump a countable event (e.g. ``plan_cache_hit``)."""
        with self._lock:
            self._events[event] = self._events.get(event, 0) + n

    def total(self) -> float:
        """Summed attributed seconds across every stage."""
        with self._lock:
            return sum(self._stages.values())

    def stages(self) -> "dict[str, float]":
        with self._lock:
            return dict(self._stages)

    def events(self) -> "dict[str, int]":
        with self._lock:
            return dict(self._events)

    def to_dict(self) -> dict:
        """``{"stages": {...seconds}, "events": {...counts}}``."""
        with self._lock:
            return {
                "stages": dict(self._stages),
                "events": dict(self._events),
            }


class RequestContext:
    """One request's identity and timing ledger, carried across threads.

    Attributes:
        trace_id: Process-unique id stamped on every emitted span.
        request_id: The service's monotonic request id (-1 outside a
            service).
        route: Logical route/workload name for SLO grouping.
        ledger: The request's attribution :class:`Ledger`.
    """

    __slots__ = ("trace_id", "request_id", "route", "ledger")

    def __init__(
        self,
        trace_id: str,
        request_id: int = -1,
        route: str = "default",
    ) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self.route = route
        self.ledger = Ledger()

    @classmethod
    def new(
        cls, request_id: int = -1, route: str = "default"
    ) -> "RequestContext":
        return cls(new_trace_id(), request_id=request_id, route=route)

    def summary(self, status: str = "ok", **extra) -> dict:
        """Machine-readable dump for flight-recorder retention."""
        doc = self.ledger.to_dict()
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "route": self.route,
            "status": status,
            "total_seconds": sum(doc["stages"].values()),
            "stages": doc["stages"],
            "events": doc["events"],
            **extra,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestContext(trace_id={self.trace_id!r}, "
            f"request_id={self.request_id}, route={self.route!r})"
        )


# ----------------------------------------------------------------------
# Activation: explicit propagation across thread/queue boundaries
# ----------------------------------------------------------------------
_state = threading.local()


def active_contexts() -> "tuple[RequestContext, ...]":
    """Contexts activated on *this* thread (empty when none)."""
    return getattr(_state, "contexts", ())


@contextmanager
def activate(*contexts: "RequestContext | None") -> Iterator[None]:
    """Attribute this thread's stages to ``contexts`` for the scope.

    ``None`` entries are ignored; with no live context the block is a
    plain passthrough.  Activation *replaces* any previous set for the
    scope (a worker acting for a batch acts for exactly that batch) and
    restores it on exit, so nested single-request work — e.g. the
    per-request ``scatter`` copy inside a batch — re-activates just its
    own context.
    """
    live = tuple(c for c in contexts if c is not None)
    if not live:
        yield
        return
    previous = getattr(_state, "contexts", ())
    previous_stack = getattr(_state, "stack", None)
    _state.contexts = live
    _state.stack = []
    try:
        yield
    finally:
        _state.contexts = previous
        _state.stack = previous_stack


class _Frame:
    __slots__ = ("name", "child_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.child_seconds = 0.0


@contextmanager
def stage(name: str, **span_args) -> Iterator[None]:
    """Attribute the block's *self time* to every active context.

    Nested stages subtract: a ``plan_compile`` inside ``kernel`` charges
    the compile seconds to ``plan_compile`` only, so stage sums never
    double-count.  A no-op (bare yield) when no context is active.
    Emits a ``trace_id``-stamped Chrome span when a recorder is active.
    """
    contexts = getattr(_state, "contexts", ())
    if not contexts:
        yield
        return
    stack: "list[_Frame]" = getattr(_state, "stack", None) or []
    _state.stack = stack
    frame = _Frame(name)
    stack.append(frame)
    started = time.perf_counter()
    try:
        with _trace.span(
            f"rtrace.{name}",
            category="rtrace",
            trace_id=contexts[0].trace_id,
            n_requests=len(contexts),
            **span_args,
        ):
            yield
    finally:
        elapsed = time.perf_counter() - started
        stack.pop()
        if stack:
            stack[-1].child_seconds += elapsed
        self_seconds = max(0.0, elapsed - frame.child_seconds)
        for ctx in contexts:
            ctx.ledger.add(name, self_seconds)


def attribute(stage_name: str, seconds: float) -> None:
    """Directly attribute measured seconds to every active context."""
    for ctx in getattr(_state, "contexts", ()):
        ctx.ledger.add(stage_name, seconds)


def count(event: str, n: int = 1) -> None:
    """Bump a countable event on every active context (no-op inactive)."""
    for ctx in getattr(_state, "contexts", ()):
        ctx.ledger.count(event, n)


def mark(name: str, **args) -> None:
    """Emit an instant trace event stamped with the active trace id(s)."""
    contexts = getattr(_state, "contexts", ())
    trace_id = contexts[0].trace_id if contexts else None
    _trace.instant(f"rtrace.{name}", category="rtrace", trace_id=trace_id, **args)


# ----------------------------------------------------------------------
# Flight recorder: bounded retention of interesting request traces
# ----------------------------------------------------------------------
class FlightRecorder:
    """Bounded retention of the slowest and the most recent failed traces.

    Args:
        capacity: Slowest *completed* summaries retained (a min-heap on
            ``total_seconds``: a new completion evicts the fastest
            retained entry once full, so memory stays flat under any
            load).
        failed_capacity: Most recent non-``ok`` summaries retained
            (FIFO ring).

    ``record`` accepts any dict with ``status`` and ``total_seconds``
    keys — normally :meth:`RequestContext.summary` output.  Thread-safe.
    """

    def __init__(self, capacity: int = 32, failed_capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if failed_capacity < 1:
            raise ValueError(
                f"failed_capacity must be >= 1, got {failed_capacity}"
            )
        self.capacity = capacity
        self.failed_capacity = failed_capacity
        self._lock = threading.Lock()
        self._seq = itertools.count()
        # Min-heap of (total_seconds, seq, summary); root = fastest kept.
        self._slowest: "list[tuple[float, int, dict]]" = []
        self._failed: "deque[dict]" = deque(maxlen=failed_capacity)
        self._recorded = 0

    def record(self, summary: dict) -> None:
        """Retain one request summary (slow-path or failure buffer)."""
        total = float(summary.get("total_seconds", 0.0))
        with self._lock:
            self._recorded += 1
            if summary.get("status") == "ok":
                entry = (total, next(self._seq), summary)
                if len(self._slowest) < self.capacity:
                    heapq.heappush(self._slowest, entry)
                elif total > self._slowest[0][0]:
                    heapq.heapreplace(self._slowest, entry)
            else:
                self._failed.append(summary)
        _metrics.counter("obs.rtrace.recorded").inc()

    def slowest(self, n: "int | None" = None) -> "list[dict]":
        """Retained completed summaries, slowest first."""
        with self._lock:
            ranked = sorted(self._slowest, key=lambda e: -e[0])
        summaries = [entry[2] for entry in ranked]
        return summaries if n is None else summaries[:n]

    def failures(self) -> "list[dict]":
        """Retained failed summaries, oldest first."""
        with self._lock:
            return list(self._failed)

    @property
    def recorded(self) -> int:
        """Total summaries ever offered (retained or not)."""
        with self._lock:
            return self._recorded

    def __len__(self) -> int:
        with self._lock:
            return len(self._slowest) + len(self._failed)

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "failed_capacity": self.failed_capacity,
            "recorded": self.recorded,
            "slowest": self.slowest(),
            "failures": self.failures(),
        }
