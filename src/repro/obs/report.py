"""Rendering metric snapshots as text or JSON, plus ``obs-report``.

A *snapshot* is the plain-dict list produced by
``MetricRegistry.snapshot()`` (and stored verbatim in the ``metrics``
field of exported run records).  :func:`render_text` turns one into the
aligned tables the harness prints under ``--profile``;
:func:`kernel_breakdowns` extracts the per-kernel cycle components the
GPU timing model publishes so reports and run records can show the
paper's issue/bandwidth/little/span/atomic/launch split directly.

``python -m repro obs-report`` (see :func:`main`) pretty-prints the most
recent exported run record.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

# Cycle components in presentation order, matching the timing model's
# ``total = launch + max(bandwidth, little, span) + issue + atomic + serial``.
CYCLE_COMPONENTS = (
    "total", "issue", "bandwidth", "little", "span", "atomic", "hotspot",
    "serial", "launch",
)
KERNEL_CYCLES_METRIC = "gpu.kernel.cycles"


def _format_number(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return lines


def kernel_breakdowns(snapshot: list[dict]) -> dict[str, dict[str, float]]:
    """Per-kernel cycle components from the snapshot's timing gauges.

    Returns ``{kernel label: {component: cycles}}`` for every gauge named
    :data:`KERNEL_CYCLES_METRIC` carrying ``kernel``/``component`` labels.
    """
    breakdowns: dict[str, dict[str, float]] = {}
    for entry in snapshot:
        if entry.get("name") != KERNEL_CYCLES_METRIC:
            continue
        labels = entry.get("labels", {})
        kernel = labels.get("kernel")
        component = labels.get("component")
        if kernel is None or component is None:
            continue
        breakdowns.setdefault(kernel, {})[component] = entry.get("value", 0.0)
    return breakdowns


def render_text(snapshot: list[dict], title: "str | None" = None) -> str:
    """Render a snapshot as aligned text tables, grouped by metric kind."""
    lines: list[str] = []
    if title:
        lines += [f"=== {title} ===", ""]

    counters = [e for e in snapshot if e.get("kind") == "counter"]
    gauges = [
        e for e in snapshot
        if e.get("kind") == "gauge" and e.get("name") != KERNEL_CYCLES_METRIC
    ]
    dists = [e for e in snapshot if e.get("kind") in ("histogram", "timer")]

    if counters:
        lines.append("Counters")
        lines += _table(
            ["name", "value"],
            [
                [e["name"] + _label_suffix(e.get("labels", {})),
                 _format_number(e["value"])]
                for e in counters
            ],
        )
        lines.append("")
    if gauges:
        lines.append("Gauges")
        lines += _table(
            ["name", "value"],
            [
                [e["name"] + _label_suffix(e.get("labels", {})),
                 _format_number(e["value"])]
                for e in gauges
            ],
        )
        lines.append("")
    if dists:
        lines.append("Timers / histograms")
        lines += _table(
            ["name", "count", "total", "mean", "max"],
            [
                [
                    e["name"] + _label_suffix(e.get("labels", {})),
                    _format_number(e.get("count", 0)),
                    _format_number(e.get("total", 0.0)),
                    _format_number(e.get("mean", 0.0)),
                    _format_number(e.get("max", 0.0)),
                ]
                for e in dists
            ],
        )
        lines.append("")

    breakdowns = kernel_breakdowns(snapshot)
    if breakdowns:
        lines.append("Kernel cycle breakdown (last simulated, cycles)")
        components = [
            c for c in CYCLE_COMPONENTS
            if any(c in b for b in breakdowns.values())
        ]
        lines += _table(
            ["kernel"] + list(components),
            [
                [kernel] + [
                    _format_number(parts.get(c, 0.0)) for c in components
                ]
                for kernel, parts in sorted(breakdowns.items())
            ],
        )
        lines.append("")
    if not (counters or gauges or dists or breakdowns):
        lines.append("(no metrics recorded)")
    return "\n".join(lines).rstrip("\n")


def render_json(snapshot: list[dict], indent: int = 1) -> str:
    """Snapshot as a JSON document string."""
    return json.dumps(
        {"metrics": snapshot, "kernel_cycles": kernel_breakdowns(snapshot)},
        indent=indent,
    )


def render_record(record: dict) -> str:
    """Render one exported run record (see :mod:`repro.obs.export`)."""
    lines = [f"=== run record: {record.get('name', '?')} ==="]
    for key in ("iso_time", "wall_seconds", "status", "error"):
        if record.get(key) is not None:
            lines.append(f"  {key}: {_format_number(record[key])}")
    lines.append("")
    lines.append(render_text(record.get("metrics", [])))
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """CLI for ``python -m repro obs-report``."""
    from repro.obs.export import latest_record, read_records, records_dir

    parser = argparse.ArgumentParser(
        prog="repro obs-report",
        description="Pretty-print the most recent exported run record.",
    )
    parser.add_argument(
        "--name", default=None,
        help="experiment name to report on (default: most recent run)",
    )
    parser.add_argument(
        "--bench-dir", type=Path, default=None,
        help="directory holding BENCH_*.json records "
             "(default: $REPRO_BENCH_DIR or benchmarks/results)",
    )
    parser.add_argument(
        "--json", action="store_true", help="dump the raw record as JSON"
    )
    parser.add_argument(
        "--all", action="store_true", help="list every record, newest last"
    )
    args = parser.parse_args(argv)

    if args.all:
        records = read_records(directory=args.bench_dir)
        if not records:
            print(f"no run records under {records_dir(args.bench_dir)}")
            return 1
        for record in records:
            print(
                f"{record.get('name', '?'):12s} "
                f"{record.get('iso_time', '?'):26s} "
                f"{record.get('wall_seconds', 0.0):8.2f}s "
                f"{record.get('status', '?')}"
            )
        return 0

    record = latest_record(name=args.name, directory=args.bench_dir)
    if record is None:
        print(
            f"no run records under {records_dir(args.bench_dir)}; "
            "run an experiment with --profile first, e.g. "
            "`python -m repro fig5 --profile`"
        )
        return 1
    if args.json:
        print(json.dumps(record, indent=1))
    else:
        print(render_record(record))
    return 0
