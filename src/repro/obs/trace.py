"""Chrome-trace event recording (``chrome://tracing`` / Perfetto JSON).

A :class:`TraceRecorder` collects *complete* events (``"ph": "X"``) with
microsecond timestamps and durations.  Chrome/Perfetto reconstruct span
nesting from time containment on the same ``pid``/``tid``, so nested
``span()`` context managers render as a flame graph with no extra
bookkeeping; each event also carries its stack ``depth`` for consumers
that want the nesting without replaying timestamps.

Like :mod:`repro.obs.metrics`, the module keeps one *active* recorder;
the module-level :func:`span` no-ops (a bare ``yield``) when none is
installed, so instrumented code needs no conditionals.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator


def _jsonable(value):
    """Coerce span args to something ``json.dump`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class TraceRecorder:
    """Collects Chrome-trace events for one profiled run."""

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._origin = time.perf_counter()
        self._depth = threading.local()
        self._pid = os.getpid()
        self._emit_metadata()

    def _emit_metadata(self) -> None:
        self._events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": self._pid,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        )

    def _now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    @property
    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    @property
    def n_spans(self) -> int:
        with self._lock:
            return sum(1 for e in self._events if e.get("ph") == "X")

    @contextmanager
    def span(self, name: str, category: str = "repro", **args) -> Iterator[dict]:
        """Record a complete event covering the ``with`` body.

        Yields the (mutable) args dict so callers can attach results;
        an escaping exception marks the span with ``error``.
        """
        depth = getattr(self._depth, "value", 0)
        self._depth.value = depth + 1
        span_args = {k: _jsonable(v) for k, v in args.items()}
        span_args["depth"] = depth
        start = self._now_us()
        try:
            yield span_args
        except BaseException as exc:
            span_args["error"] = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            end = self._now_us()
            self._depth.value = depth
            event = {
                "ph": "X",
                "name": name,
                "cat": category,
                "ts": start,
                "dur": max(0.0, end - start),
                "pid": self._pid,
                "tid": threading.get_ident(),
                "args": span_args,
            }
            with self._lock:
                self._events.append(event)

    def instant(self, name: str, category: str = "repro", **args) -> None:
        """Record a zero-duration instant event."""
        event = {
            "ph": "i",
            "name": name,
            "cat": category,
            "ts": self._now_us(),
            "pid": self._pid,
            "tid": threading.get_ident(),
            "s": "t",
            "args": {k: _jsonable(v) for k, v in args.items()},
        }
        with self._lock:
            self._events.append(event)

    def to_dict(self) -> dict:
        """The complete trace document (``traceEvents`` container form)."""
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs"},
        }

    def write(self, path: "str | Path") -> Path:
        """Serialize the trace to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1))
        return path


# ----------------------------------------------------------------------
# Active-recorder plumbing
# ----------------------------------------------------------------------
_active_recorder: "TraceRecorder | None" = None


def get_recorder() -> "TraceRecorder | None":
    """The active recorder, or ``None`` when tracing is disabled."""
    return _active_recorder


def set_recorder(recorder: "TraceRecorder | None") -> "TraceRecorder | None":
    """Install ``recorder`` as the active one; returns the previous one."""
    global _active_recorder
    previous = _active_recorder
    _active_recorder = recorder
    return previous


@contextmanager
def span(name: str, category: str = "repro", **args) -> Iterator["dict | None"]:
    """Span on the active recorder; a plain passthrough when disabled."""
    recorder = _active_recorder
    if recorder is None:
        yield None
        return
    with recorder.span(name, category=category, **args) as span_args:
        yield span_args


def instant(name: str, category: str = "repro", **args) -> None:
    """Instant event on the active recorder; no-op when disabled."""
    recorder = _active_recorder
    if recorder is not None:
        recorder.instant(name, category=category, **args)
