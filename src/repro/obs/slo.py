"""Service-level objectives: per-route percentiles, burn rates, budgets.

An :class:`SLObjective` declares what a route owes its callers —
percentile latency targets, a per-request latency threshold, and a
success-rate floor.  An :class:`SLOTracker` folds every finished request
into bounded per-route windows and reports, per route:

* observed p50/p95/p99 (over *successful* requests) vs. the declared
  targets;
* **error-budget accounting** over the window: a request *violates* its
  SLO when it fails (rejected / errored / deadline-exceeded) or runs
  past the per-request ``threshold_ms``; the budget is the violation
  fraction the ``success_rate`` floor allows, and the **burn rate** is
  the observed violation rate over the allowed rate (1.0 = burning
  exactly at budget, >1 = on track to exhaust it);
* whether the window's budget is already **exhausted**.

The tracker is wired into the serving stack: every
:class:`~repro.serve.service.InferenceService` owns one, feeds it every
response (including sheds and errors), exposes it through
:meth:`health() <repro.serve.service.InferenceService.health>` — budget
exhaustion surfaces as a ``DEGRADED`` cause — and ``serve-bench``
embeds :meth:`SLOTracker.report` in ``BENCH_serve.json``, which
``python -m repro slo-report`` renders.
"""

from __future__ import annotations

import argparse
import sys
import threading
from collections import deque
from dataclasses import dataclass, replace

from repro.obs import metrics as _metrics

# Percentile targets an objective may declare, with their report keys.
_PERCENTILES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0))


@dataclass(frozen=True)
class SLObjective:
    """Declared objectives for one route.

    Attributes:
        route: Route name (``"default"`` objects apply as a template to
            routes without their own declaration).
        p50_ms / p95_ms / p99_ms: Percentile latency targets in
            milliseconds (``None`` = undeclared, reported but unjudged).
        threshold_ms: Per-request latency bound used for error-budget
            accounting; defaults to ``p95_ms`` (then ``p99_ms``) when
            omitted.  ``None`` with no percentile targets means only
            failures burn budget.
        success_rate: Fraction of requests that must meet the SLO; the
            error budget is ``1 - success_rate`` of the window.
        window: Bounded per-route sample window (requests).
    """

    route: str = "default"
    p50_ms: "float | None" = None
    p95_ms: "float | None" = 250.0
    p99_ms: "float | None" = None
    threshold_ms: "float | None" = None
    success_rate: float = 0.99
    window: int = 512

    def __post_init__(self) -> None:
        for name in ("p50_ms", "p95_ms", "p99_ms", "threshold_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if not 0.0 < self.success_rate < 1.0:
            raise ValueError(
                f"success_rate must be in (0, 1), got {self.success_rate}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    @property
    def effective_threshold_ms(self) -> "float | None":
        """The per-request latency bound budget accounting judges."""
        if self.threshold_ms is not None:
            return self.threshold_ms
        if self.p95_ms is not None:
            return self.p95_ms
        return self.p99_ms

    def to_dict(self) -> dict:
        return {
            "route": self.route,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "threshold_ms": self.effective_threshold_ms,
            "success_rate": self.success_rate,
            "window": self.window,
        }


class _RouteState:
    __slots__ = ("objective", "samples", "total", "total_violations")

    def __init__(self, objective: SLObjective) -> None:
        self.objective = objective
        # (latency_seconds, ok, violated) triples, bounded by the window.
        self.samples: "deque[tuple[float, bool, bool]]" = deque(
            maxlen=objective.window
        )
        self.total = 0
        self.total_violations = 0


class SLOTracker:
    """Per-route SLO accounting over bounded sample windows.

    Args:
        objectives: Explicit per-route objectives.
        default_objective: Template applied (with the route name
            substituted) to routes that have no explicit objective.

    Thread-safe: the serving workers call :meth:`observe` concurrently.
    """

    def __init__(
        self,
        objectives: "tuple[SLObjective, ...] | list[SLObjective]" = (),
        default_objective: "SLObjective | None" = None,
    ) -> None:
        self.default_objective = default_objective or SLObjective()
        self._lock = threading.Lock()
        self._routes: "dict[str, _RouteState]" = {}
        for objective in objectives:
            self._routes[objective.route] = _RouteState(objective)

    def objective_for(self, route: str) -> SLObjective:
        """The objective judging ``route`` (explicit or templated)."""
        with self._lock:
            state = self._routes.get(route)
        if state is not None:
            return state.objective
        return replace(self.default_objective, route=route)

    def observe(self, route: str, latency_seconds: float, ok: bool = True) -> None:
        """Fold one finished request into its route's window.

        Failed requests (``ok=False``) always burn budget; successful
        ones burn it when they run past the objective's threshold.
        """
        with self._lock:
            state = self._routes.get(route)
            if state is None:
                state = self._routes[route] = _RouteState(
                    replace(self.default_objective, route=route)
                )
            threshold = state.objective.effective_threshold_ms
            violated = (not ok) or (
                threshold is not None and latency_seconds * 1e3 > threshold
            )
            state.samples.append((latency_seconds, ok, violated))
            state.total += 1
            state.total_violations += violated
        if violated:
            _metrics.counter("obs.slo.violations", route=route).inc()

    def routes(self) -> "list[str]":
        with self._lock:
            return sorted(self._routes)

    def _route_report_locked(self, route: str, state: _RouteState) -> dict:
        objective = state.objective
        samples = list(state.samples)
        ok_latencies_ms = sorted(
            lat * 1e3 for lat, ok, _ in samples if ok
        )
        observed: "dict[str, float | None]" = {}
        targets_met: "dict[str, bool | None]" = {}
        for key, q in _PERCENTILES:
            if ok_latencies_ms:
                # Nearest-rank percentile over the sorted window.
                rank = min(
                    len(ok_latencies_ms) - 1,
                    max(0, int(round(q / 100.0 * len(ok_latencies_ms))) - 1),
                )
                observed[key] = ok_latencies_ms[rank]
            else:
                observed[key] = None
            target = getattr(objective, f"{key}_ms")
            if target is None or observed[key] is None:
                targets_met[key] = None
            else:
                targets_met[key] = observed[key] <= target
        window_n = len(samples)
        violations = sum(1 for _, _, v in samples if v)
        allowed = (1.0 - objective.success_rate) * window_n
        burn_rate = (
            (violations / window_n) / (1.0 - objective.success_rate)
            if window_n
            else 0.0
        )
        return {
            "route": route,
            "objective": objective.to_dict(),
            "samples": window_n,
            "total_observed": state.total,
            "observed_ms": observed,
            "targets_met": targets_met,
            "violations": violations,
            "budget": {
                "allowed": allowed,
                "spent": violations,
                "remaining": allowed - violations,
                "burn_rate": burn_rate,
                "exhausted": violations > allowed,
            },
        }

    def route_report(self, route: str) -> dict:
        """Full SLO report for one route."""
        with self._lock:
            state = self._routes.get(route)
            if state is None:
                state = _RouteState(replace(self.default_objective, route=route))
            return self._route_report_locked(route, state)

    def report(self) -> dict:
        """Machine-readable report across every observed route."""
        with self._lock:
            routes = {
                route: self._route_report_locked(route, state)
                for route, state in sorted(self._routes.items())
            }
        burn_rates = [r["budget"]["burn_rate"] for r in routes.values()]
        worst = max(burn_rates) if burn_rates else 0.0
        _metrics.gauge("obs.slo.worst_burn_rate").set(float(worst))
        return {
            "routes": routes,
            "worst_burn_rate": worst,
            "any_exhausted": any(
                r["budget"]["exhausted"] for r in routes.values()
            ),
        }

    def health_snapshot(self) -> dict:
        """Compact per-route state for :func:`repro.serve.health.evaluate_health`."""
        report = self.report()
        return {
            "routes": {
                route: {
                    "samples": r["samples"],
                    "burn_rate": r["budget"]["burn_rate"],
                    "exhausted": r["budget"]["exhausted"],
                }
                for route, r in report["routes"].items()
            }
        }


def render_slo_report(slo: dict) -> str:
    """Human-readable table of a :meth:`SLOTracker.report` payload."""
    routes = slo.get("routes", {})
    if not routes:
        return "slo-report: no routes observed"
    lines = ["slo-report"]
    for route, r in sorted(routes.items()):
        obj = r["objective"]
        budget = r["budget"]
        cells = []
        for key, _ in _PERCENTILES:
            observed = r["observed_ms"].get(key)
            target = obj.get(f"{key}_ms")
            met = r["targets_met"].get(key)
            shown = "-" if observed is None else f"{observed:.1f}"
            if target is None:
                cells.append(f"{key}={shown}ms")
            else:
                verdict = "?" if met is None else ("ok" if met else "MISS")
                cells.append(f"{key}={shown}/{target:g}ms {verdict}")
        state = "EXHAUSTED" if budget["exhausted"] else "ok"
        lines.append(
            f"  {route:<12} {r['samples']:>4} samples  "
            + "  ".join(cells)
        )
        lines.append(
            f"  {'':<12} budget: {budget['spent']}/{budget['allowed']:.1f} "
            f"violations (burn {budget['burn_rate']:.2f}x) [{state}]"
        )
    lines.append(
        f"worst burn rate: {slo.get('worst_burn_rate', 0.0):.2f}x"
        + ("  ** BUDGET EXHAUSTED **" if slo.get("any_exhausted") else "")
    )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point for ``python -m repro slo-report``.

    Renders the SLO section of the most recent ``BENCH_<name>.json`` run
    (default: the ``serve`` trajectory written by ``serve-bench``).
    Exit 1 when there is no record or it carries no SLO data.
    """
    from repro.obs.export import latest_record

    parser = argparse.ArgumentParser(
        prog="repro slo-report",
        description=(
            "Render per-route SLO attainment (observed percentiles vs. "
            "objectives, error-budget burn) from the latest serve-bench "
            "run record."
        ),
    )
    parser.add_argument(
        "--name", default="serve",
        help="run-record name to read (default: serve)",
    )
    parser.add_argument(
        "--bench-dir", default=None,
        help="run-record directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the raw SLO JSON instead of the rendered table",
    )
    args = parser.parse_args(argv)

    record = latest_record(name=args.name, directory=args.bench_dir)
    if record is None:
        print(
            f"no '{args.name}' run record found; run "
            "`python -m repro serve-bench` first",
            file=sys.stderr,
        )
        return 1
    slo = (record.get("serve") or {}).get("slo") or record.get("slo")
    if not slo:
        print(
            f"latest '{args.name}' record ({record.get('iso_time')}) "
            "carries no SLO section",
            file=sys.stderr,
        )
        return 1
    if args.json:
        import json

        print(json.dumps(slo, indent=1))
    else:
        print(f"run: {record.get('name')} @ {record.get('iso_time')}")
        print(render_slo_report(slo))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
