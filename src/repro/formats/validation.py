"""Structural validation for sparse matrix containers.

All containers validate their arrays on construction so that algorithm code
can rely on well-formed inputs.  Validation failures raise
:class:`SparseFormatError` with a message naming the violated invariant.
"""

from __future__ import annotations

import numpy as np


class SparseFormatError(ValueError):
    """A sparse matrix's arrays violate a structural invariant."""


def validate_csr(
    row_pointers: np.ndarray,
    column_indices: np.ndarray,
    values: np.ndarray,
    n_rows: int,
    n_cols: int,
    *,
    strict: bool = False,
) -> None:
    """Check the CSR invariants; raise :class:`SparseFormatError` on failure.

    Invariants checked:

    * ``row_pointers`` has length ``n_rows + 1``
    * ``row_pointers[0] == 0`` and ``row_pointers[-1] == nnz``
    * ``row_pointers`` is non-decreasing
    * every column index is in ``[0, n_cols)``
    * ``column_indices`` and ``values`` have the same length

    With ``strict=True``, three further checks reject inputs that are
    structurally legal but semantically hazardous for aggregation:

    * no duplicate column index within a row (duplicates double-count
      edges in ``A @ XW``)
    * column indices sorted within every row
    * all stored values finite (no NaN/Inf)

    Strict mode is opt-in because real pipelines legitimately produce
    unsorted CSR, and the executors handle it; enable it at trust
    boundaries (file loads, network inputs, fault audits).
    """
    if n_rows < 0 or n_cols < 0:
        raise SparseFormatError(
            f"matrix shape must be non-negative, got ({n_rows}, {n_cols})"
        )
    if row_pointers.ndim != 1 or len(row_pointers) != n_rows + 1:
        raise SparseFormatError(
            f"row_pointers must have length n_rows + 1 = {n_rows + 1}, "
            f"got shape {row_pointers.shape}"
        )
    if len(column_indices) != len(values):
        raise SparseFormatError(
            f"column_indices (len {len(column_indices)}) and values "
            f"(len {len(values)}) must have equal length"
        )
    if len(row_pointers) == 0:
        raise SparseFormatError("row_pointers must not be empty")
    if row_pointers[0] != 0:
        raise SparseFormatError(
            f"row_pointers[0] must be 0, got {row_pointers[0]}"
        )
    if row_pointers[-1] != len(column_indices):
        raise SparseFormatError(
            f"row_pointers[-1] must equal nnz = {len(column_indices)}, "
            f"got {row_pointers[-1]}"
        )
    if np.any(np.diff(row_pointers) < 0):
        raise SparseFormatError("row_pointers must be non-decreasing")
    if len(column_indices) and (
        column_indices.min() < 0 or column_indices.max() >= n_cols
    ):
        raise SparseFormatError(
            f"column indices must lie in [0, {n_cols}), got range "
            f"[{column_indices.min()}, {column_indices.max()}]"
        )
    if strict:
        _validate_csr_strict(row_pointers, column_indices, values, n_cols)


def _validate_csr_strict(
    row_pointers: np.ndarray,
    column_indices: np.ndarray,
    values: np.ndarray,
    n_cols: int,
) -> None:
    """The opt-in strict checks (assumes the basic invariants hold)."""
    nnz = len(column_indices)
    if nnz and not np.isfinite(np.asarray(values, dtype=np.float64)).all():
        bad = int(np.count_nonzero(
            ~np.isfinite(np.asarray(values, dtype=np.float64))
        ))
        raise SparseFormatError(
            f"strict: {bad} stored value(s) are NaN/Inf"
        )
    if nnz == 0:
        return
    row_ids = np.repeat(
        np.arange(len(row_pointers) - 1, dtype=np.int64),
        np.diff(row_pointers),
    )
    keys = row_ids * np.int64(max(n_cols, 1)) + column_indices
    if len(np.unique(keys)) != nnz:
        raise SparseFormatError(
            "strict: duplicate column index within a row (the duplicate "
            "edge would be double-counted in aggregation)"
        )
    if nnz > 1:
        # A negative step inside a row means unsorted; steps that cross a
        # row boundary (positions row_pointers[1:-1] - 1) are exempt.
        steps = np.diff(column_indices)
        boundaries = row_pointers[1:-1]
        interior = np.ones(nnz - 1, dtype=bool)
        inside = boundaries[(boundaries > 0) & (boundaries < nnz)]
        interior[inside - 1] = False
        if np.any((steps < 0) & interior):
            raise SparseFormatError(
                "strict: column indices are not sorted within a row"
            )


def validate_coo(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    n_rows: int,
    n_cols: int,
) -> None:
    """Check the COO invariants; raise :class:`SparseFormatError` on failure."""
    if n_rows < 0 or n_cols < 0:
        raise SparseFormatError(
            f"matrix shape must be non-negative, got ({n_rows}, {n_cols})"
        )
    if not (len(rows) == len(cols) == len(values)):
        raise SparseFormatError(
            "rows, cols and values must have equal length, got "
            f"{len(rows)}, {len(cols)}, {len(values)}"
        )
    if len(rows):
        if rows.min() < 0 or rows.max() >= n_rows:
            raise SparseFormatError(
                f"row indices must lie in [0, {n_rows}), got range "
                f"[{rows.min()}, {rows.max()}]"
            )
        if cols.min() < 0 or cols.max() >= n_cols:
            raise SparseFormatError(
                f"column indices must lie in [0, {n_cols}), got range "
                f"[{cols.min()}, {cols.max()}]"
            )
