"""Structural validation for sparse matrix containers.

All containers validate their arrays on construction so that algorithm code
can rely on well-formed inputs.  Validation failures raise
:class:`SparseFormatError` with a message naming the violated invariant.
"""

from __future__ import annotations

import numpy as np


class SparseFormatError(ValueError):
    """A sparse matrix's arrays violate a structural invariant."""


def validate_csr(
    row_pointers: np.ndarray,
    column_indices: np.ndarray,
    values: np.ndarray,
    n_rows: int,
    n_cols: int,
) -> None:
    """Check the CSR invariants; raise :class:`SparseFormatError` on failure.

    Invariants checked:

    * ``row_pointers`` has length ``n_rows + 1``
    * ``row_pointers[0] == 0`` and ``row_pointers[-1] == nnz``
    * ``row_pointers`` is non-decreasing
    * every column index is in ``[0, n_cols)``
    * ``column_indices`` and ``values`` have the same length
    """
    if n_rows < 0 or n_cols < 0:
        raise SparseFormatError(
            f"matrix shape must be non-negative, got ({n_rows}, {n_cols})"
        )
    if row_pointers.ndim != 1 or len(row_pointers) != n_rows + 1:
        raise SparseFormatError(
            f"row_pointers must have length n_rows + 1 = {n_rows + 1}, "
            f"got shape {row_pointers.shape}"
        )
    if len(column_indices) != len(values):
        raise SparseFormatError(
            f"column_indices (len {len(column_indices)}) and values "
            f"(len {len(values)}) must have equal length"
        )
    if len(row_pointers) == 0:
        raise SparseFormatError("row_pointers must not be empty")
    if row_pointers[0] != 0:
        raise SparseFormatError(
            f"row_pointers[0] must be 0, got {row_pointers[0]}"
        )
    if row_pointers[-1] != len(column_indices):
        raise SparseFormatError(
            f"row_pointers[-1] must equal nnz = {len(column_indices)}, "
            f"got {row_pointers[-1]}"
        )
    if np.any(np.diff(row_pointers) < 0):
        raise SparseFormatError("row_pointers must be non-decreasing")
    if len(column_indices) and (
        column_indices.min() < 0 or column_indices.max() >= n_cols
    ):
        raise SparseFormatError(
            f"column indices must lie in [0, {n_cols}), got range "
            f"[{column_indices.min()}, {column_indices.max()}]"
        )


def validate_coo(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    n_rows: int,
    n_cols: int,
) -> None:
    """Check the COO invariants; raise :class:`SparseFormatError` on failure."""
    if n_rows < 0 or n_cols < 0:
        raise SparseFormatError(
            f"matrix shape must be non-negative, got ({n_rows}, {n_cols})"
        )
    if not (len(rows) == len(cols) == len(values)):
        raise SparseFormatError(
            "rows, cols and values must have equal length, got "
            f"{len(rows)}, {len(cols)}, {len(values)}"
        )
    if len(rows):
        if rows.min() < 0 or rows.max() >= n_rows:
            raise SparseFormatError(
                f"row indices must lie in [0, {n_rows}), got range "
                f"[{rows.min()}, {rows.max()}]"
            )
        if cols.min() < 0 or cols.max() >= n_cols:
            raise SparseFormatError(
                f"column indices must lie in [0, {n_cols}), got range "
                f"[{cols.min()}, {cols.max()}]"
            )
