"""Coordinate (COO) sparse matrix container.

The paper stores the dense ``XW`` operand "in coordinate COO format" for its
pseudo-code; in practice COO is the natural interchange format for edge
lists, so the graph generators in :mod:`repro.graphs` emit COO and convert
to CSR once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.validation import validate_coo

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64


@dataclass(frozen=True)
class COOMatrix:
    """An immutable COO sparse matrix (row, col, value triplets)."""

    n_rows: int
    n_cols: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", np.ascontiguousarray(self.rows, INDEX_DTYPE))
        object.__setattr__(self, "cols", np.ascontiguousarray(self.cols, INDEX_DTYPE))
        object.__setattr__(
            self, "values", np.ascontiguousarray(self.values, VALUE_DTYPE)
        )
        validate_coo(self.rows, self.cols, self.values, self.n_rows, self.n_cols)

    @classmethod
    def from_edges(
        cls,
        edges: "np.ndarray | list[tuple[int, int]]",
        n_rows: int,
        n_cols: int | None = None,
        values: "np.ndarray | None" = None,
    ) -> "COOMatrix":
        """Build from an ``(m, 2)`` edge array; values default to ones."""
        edges = np.asarray(edges, dtype=INDEX_DTYPE).reshape(-1, 2)
        if values is None:
            values = np.ones(len(edges), dtype=VALUE_DTYPE)
        return cls(
            n_rows=n_rows,
            n_cols=n_rows if n_cols is None else n_cols,
            rows=edges[:, 0],
            cols=edges[:, 1],
            values=values,
        )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return len(self.values)

    def deduplicate(self) -> "COOMatrix":
        """Merge duplicate coordinates by summing their values."""
        if self.nnz == 0:
            return self
        keys = self.rows * self.n_cols + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        unique_mask = np.concatenate(([True], keys[1:] != keys[:-1]))
        group_ids = np.cumsum(unique_mask) - 1
        summed = np.zeros(group_ids[-1] + 1, dtype=VALUE_DTYPE)
        np.add.at(summed, group_ids, self.values[order])
        unique_keys = keys[unique_mask]
        return COOMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            rows=unique_keys // self.n_cols,
            cols=unique_keys % self.n_cols,
            values=summed,
        )

    def to_csr(self):
        """Convert to CSR (rows are sorted; duplicates preserved)."""
        from repro.formats.csr import CSRMatrix

        order = np.argsort(self.rows, kind="stable")
        counts = np.bincount(self.rows, minlength=self.n_rows)
        row_pointers = np.concatenate(([0], np.cumsum(counts)))
        return CSRMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            row_pointers=row_pointers,
            column_indices=self.cols[order],
            values=self.values[order],
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array (duplicates are summed)."""
        dense = np.zeros(self.shape, dtype=VALUE_DTYPE)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense
