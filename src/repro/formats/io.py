"""Matrix Market (.mtx) reading and writing.

The paper's Type I graphs beyond the GNN datasets are "ported from the
University of Florida sparse matrix repository", which distributes
matrices in Matrix Market coordinate format.  This module implements the
subset of the format those files use — ``matrix coordinate
real|integer|pattern general|symmetric`` — so users with the original
files can run every experiment on the real inputs instead of the
synthetic stand-ins.
"""

from __future__ import annotations

import io
import os
import tempfile
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix


class MatrixMarketError(ValueError):
    """A .mtx stream violates the Matrix Market format."""


_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric"}


def atomic_write_text(
    path: "str | Path", text: str, encoding: str = "ascii"
) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The content lands in a temporary file in the destination directory
    and is renamed over the target only after a successful write, so an
    interrupted save (crash, kill, full disk) never leaves a truncated or
    corrupt artifact behind — the previous file, if any, survives intact.

    Returns:
        The destination path.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _parse_header(line: str) -> tuple[str, str]:
    parts = line.strip().lower().split()
    if len(parts) != 5 or parts[0] != "%%matrixmarket":
        raise MatrixMarketError(f"not a MatrixMarket header: {line.strip()!r}")
    _, obj, layout, field, symmetry = parts
    if obj != "matrix" or layout != "coordinate":
        raise MatrixMarketError(
            f"only 'matrix coordinate' is supported, got {obj} {layout}"
        )
    if field not in _SUPPORTED_FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")
    return field, symmetry


def read_matrix_market(source: "str | Path | TextIO") -> CSRMatrix:
    """Read a Matrix Market coordinate file into CSR.

    Args:
        source: Path or open text stream.

    Returns:
        The matrix in CSR form; symmetric inputs are expanded (both
        triangles stored), pattern inputs get unit values — matching how
        the paper's frameworks consume adjacency matrices.

    Raises:
        MatrixMarketError: On malformed input.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            return read_matrix_market(handle)

    header = source.readline()
    field, symmetry = _parse_header(header)

    size_line = None
    for line in source:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if size_line is None:
        raise MatrixMarketError("missing size line")
    try:
        n_rows, n_cols, nnz = (int(tok) for tok in size_line.split())
    except ValueError as exc:
        raise MatrixMarketError(f"bad size line: {size_line!r}") from exc

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    values = np.ones(nnz, dtype=np.float64)
    count = 0
    for line in source:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        parts = stripped.split()
        if count >= nnz:
            raise MatrixMarketError("more entries than the size line declares")
        if field == "pattern":
            if len(parts) != 2:
                raise MatrixMarketError(f"bad pattern entry: {stripped!r}")
            rows[count], cols[count] = int(parts[0]), int(parts[1])
        else:
            if len(parts) != 3:
                raise MatrixMarketError(f"bad entry: {stripped!r}")
            rows[count], cols[count] = int(parts[0]), int(parts[1])
            values[count] = float(parts[2])
        count += 1
    if count != nnz:
        raise MatrixMarketError(
            f"size line declares {nnz} entries, found {count}"
        )
    rows -= 1  # Matrix Market is 1-indexed
    cols -= 1
    if symmetry == "symmetric":
        off_diag = rows != cols
        mirrored_rows = cols[off_diag]
        mirrored_cols = rows[off_diag]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        values = np.concatenate([values, values[off_diag]])
    return COOMatrix(
        n_rows=n_rows, n_cols=n_cols, rows=rows, cols=cols, values=values
    ).to_csr()


def write_matrix_market(
    matrix: CSRMatrix, destination: "str | Path | TextIO", comment: str = ""
) -> None:
    """Write a CSR matrix as ``matrix coordinate real general``.

    Path destinations are written atomically (temp file + ``os.replace``),
    so an interrupted save never leaves a truncated ``.mtx`` on disk.

    Args:
        matrix: Matrix to serialize.
        destination: Path or open text stream.
        comment: Optional comment line embedded after the header.
    """
    if isinstance(destination, (str, Path)):
        buffer = io.StringIO()
        write_matrix_market(matrix, buffer, comment=comment)
        atomic_write_text(destination, buffer.getvalue())
        return
    destination.write("%%MatrixMarket matrix coordinate real general\n")
    if comment:
        for line in comment.splitlines():
            destination.write(f"% {line}\n")
    destination.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
    coo = matrix.to_coo()
    for r, c, v in zip(coo.rows, coo.cols, coo.values):
        destination.write(f"{r + 1} {c + 1} {v:.17g}\n")


def read_edge_list(
    lines: "Iterable[str] | str | Path",
    n_nodes: int | None = None,
    comment_prefix: str = "#",
) -> CSRMatrix:
    """Read a whitespace-separated edge list (SNAP style) into CSR.

    Args:
        lines: Path or iterable of text lines, each ``src dst``.
        n_nodes: Node count; inferred from the maximum id when omitted.
        comment_prefix: Lines starting with this are skipped.

    Returns:
        The unweighted adjacency matrix in CSR form.
    """
    if isinstance(lines, (str, Path)):
        with open(lines, "r", encoding="ascii") as handle:
            return read_edge_list(list(handle), n_nodes, comment_prefix)
    sources: list[int] = []
    targets: list[int] = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith(comment_prefix):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise MatrixMarketError(f"bad edge line: {stripped!r}")
        sources.append(int(parts[0]))
        targets.append(int(parts[1]))
    rows = np.asarray(sources, dtype=np.int64)
    cols = np.asarray(targets, dtype=np.int64)
    if n_nodes is None:
        n_nodes = int(max(rows.max(initial=-1), cols.max(initial=-1))) + 1
    return COOMatrix(
        n_rows=n_nodes,
        n_cols=n_nodes,
        rows=rows,
        cols=cols,
        values=np.ones(len(rows)),
    ).to_csr()
