"""Compressed sparse column (CSC) sparse matrix container.

CSC is used by the column-major kernels of the cuSPARSE-like baseline
(:mod:`repro.baselines.cusparse_like`) and for cheap transposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.validation import SparseFormatError

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64


@dataclass(frozen=True)
class CSCMatrix:
    """An immutable CSC sparse matrix (column-compressed).

    Attributes:
        version: Optional graph epoch stamp, carried over from the
            :class:`~repro.formats.csr.CSRMatrix` this matrix was
            derived from.  Round-tripping through CSC (``to_csc`` /
            ``to_csr`` / ``transpose``) must never silently drop a
            live-graph version: every cache key in the serving stack is
            version-precise, and a derived matrix that reverted to the
            unversioned fingerprint space could alias a different epoch.
    """

    n_rows: int
    n_cols: int
    col_pointers: np.ndarray
    row_indices: np.ndarray
    values: np.ndarray = field(repr=False)
    version: "int | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "col_pointers", np.ascontiguousarray(self.col_pointers, INDEX_DTYPE)
        )
        object.__setattr__(
            self, "row_indices", np.ascontiguousarray(self.row_indices, INDEX_DTYPE)
        )
        object.__setattr__(
            self, "values", np.ascontiguousarray(self.values, VALUE_DTYPE)
        )
        # CSC invariants mirror CSR invariants with rows and columns swapped.
        if len(self.col_pointers) != self.n_cols + 1:
            raise SparseFormatError(
                f"col_pointers must have length n_cols + 1 = {self.n_cols + 1}, "
                f"got {len(self.col_pointers)}"
            )
        if self.col_pointers[0] != 0 or self.col_pointers[-1] != len(self.row_indices):
            raise SparseFormatError("col_pointers must start at 0 and end at nnz")
        if np.any(np.diff(self.col_pointers) < 0):
            raise SparseFormatError("col_pointers must be non-decreasing")
        if len(self.row_indices) != len(self.values):
            raise SparseFormatError("row_indices and values must have equal length")
        if len(self.row_indices) and (
            self.row_indices.min() < 0 or self.row_indices.max() >= self.n_rows
        ):
            raise SparseFormatError(
                f"row indices must lie in [0, {self.n_rows})"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def col_lengths(self) -> np.ndarray:
        """Per-column non-zero counts."""
        return np.diff(self.col_pointers)

    def col_slice(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        """Row indices and values of one column."""
        if not 0 <= col < self.n_cols:
            raise IndexError(f"column {col} out of range [0, {self.n_cols})")
        start, end = self.col_pointers[col], self.col_pointers[col + 1]
        return self.row_indices[start:end], self.values[start:end]

    def to_csr(self):
        """Convert to CSR."""
        from repro.formats.csr import CSRMatrix

        cols = np.repeat(np.arange(self.n_cols, dtype=INDEX_DTYPE), self.col_lengths)
        order = np.argsort(self.row_indices, kind="stable")
        counts = np.bincount(self.row_indices, minlength=self.n_rows)
        row_pointers = np.concatenate(([0], np.cumsum(counts)))
        return CSRMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            row_pointers=row_pointers,
            column_indices=cols[order],
            values=self.values[order],
            version=self.version,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array (duplicates are summed)."""
        dense = np.zeros(self.shape, dtype=VALUE_DTYPE)
        cols = np.repeat(np.arange(self.n_cols), self.col_lengths)
        np.add.at(dense, (self.row_indices, cols), self.values)
        return dense
