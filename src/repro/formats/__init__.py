"""Sparse matrix storage formats.

This package provides the sparse-matrix substrate used throughout the
reproduction: compressed sparse row (CSR), coordinate (COO), and compressed
sparse column (CSC) containers, conversions between them, structural
validation, and row/column statistics.

The containers are deliberately small and explicit.  They store NumPy arrays
with the same naming the paper uses (``row_pointers`` is the paper's *RP*
array, ``column_indices`` is *CP*) so the algorithm code in
:mod:`repro.core` reads like the paper's pseudo-code.
"""

from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.io import (
    MatrixMarketError,
    atomic_write_text,
    read_edge_list,
    read_matrix_market,
    write_matrix_market,
)
from repro.formats.spgemm import spgemm, spgemm_flops
from repro.formats.validation import SparseFormatError, validate_csr
from repro.formats.stats import RowStatistics, row_statistics

__all__ = [
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "MatrixMarketError",
    "RowStatistics",
    "atomic_write_text",
    "SparseFormatError",
    "read_edge_list",
    "read_matrix_market",
    "row_statistics",
    "spgemm",
    "spgemm_flops",
    "validate_csr",
    "write_matrix_market",
]
