"""Row-length (degree) statistics for sparse matrices.

The paper's entire motivation (Figure 1, Table II) rests on degree
statistics: average versus maximum degree, and how heavy the tail of the
row-length distribution is.  These helpers compute the quantities reported
in Table II plus the imbalance measures used by the evil-row analysis in
:mod:`repro.baselines.awb_gcn`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.csr import CSRMatrix


@dataclass(frozen=True)
class RowStatistics:
    """Summary statistics of a sparse matrix's row lengths.

    Attributes:
        n_rows: Number of rows (graph nodes).
        nnz: Number of non-zeros (graph edges).
        avg_degree: Mean row length, as reported in Table II.
        max_degree: Maximum row length, as reported in Table II.
        std_degree: Standard deviation of row lengths.
        empty_rows: Number of zero-length rows.
        gini: Gini coefficient of the row-length distribution in [0, 1];
            0 means perfectly even, values near 1 mean a few rows hold
            almost all non-zeros (extreme power law).
        imbalance_factor: ``max_degree / avg_degree`` — the paper's informal
            "evil row" severity measure (Nell: 4549 / 3.8 ~ 1200).
    """

    n_rows: int
    nnz: int
    avg_degree: float
    max_degree: int
    std_degree: float
    empty_rows: int
    gini: float
    imbalance_factor: float


def gini_coefficient(lengths: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = even, -> 1 = skewed)."""
    lengths = np.sort(np.asarray(lengths, dtype=np.float64))
    n = len(lengths)
    total = lengths.sum()
    if n == 0 or total == 0:
        return 0.0
    # Standard formula via the sorted cumulative distribution.
    index = np.arange(1, n + 1)
    return float((2.0 * (index * lengths).sum()) / (n * total) - (n + 1.0) / n)


def row_statistics(matrix: CSRMatrix) -> RowStatistics:
    """Compute :class:`RowStatistics` for a CSR matrix."""
    lengths = matrix.row_lengths
    if matrix.n_rows == 0:
        return RowStatistics(0, 0, 0.0, 0, 0.0, 0, 0.0, 0.0)
    avg = float(lengths.mean())
    max_deg = int(lengths.max()) if len(lengths) else 0
    return RowStatistics(
        n_rows=matrix.n_rows,
        nnz=matrix.nnz,
        avg_degree=avg,
        max_degree=max_deg,
        std_degree=float(lengths.std()),
        empty_rows=int((lengths == 0).sum()),
        gini=gini_coefficient(lengths),
        imbalance_factor=(max_deg / avg) if avg > 0 else 0.0,
    )


def evil_rows(matrix: CSRMatrix, threshold_multiple: float = 16.0) -> np.ndarray:
    """Indices of "evil" rows: rows whose length exceeds a multiple of the mean.

    AWB-GCN's auto-tuner targets rows with a disproportional number of
    non-zeros; this mirrors its detection criterion with a configurable
    multiple of the average degree.
    """
    lengths = matrix.row_lengths
    if matrix.nnz == 0:
        return np.empty(0, dtype=np.int64)
    return np.nonzero(lengths > threshold_multiple * lengths.mean())[0]


def degree_histogram(matrix: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """``(degree, count)`` pairs over the out-degree distribution.

    This is the raw data behind Figure 1's log-log degree plots.
    """
    lengths = matrix.row_lengths
    counts = np.bincount(lengths)
    degrees = np.nonzero(counts)[0]
    return degrees, counts[degrees]
