"""Sparse x sparse matrix multiplication (Gustavson's algorithm).

The paper's background cites Gustavson's row-wise method [8] as the basis
of the row-wise dataflow every GCN accelerator adopts, and its related
work discusses HyGCN-style designs whose *aggregation* engine performs
SpGEMM (``A @ X`` with a sparse feature matrix).  This module provides
that substrate: CSR x CSR -> CSR with a dense accumulator per row, the
standard formulation.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix


def spgemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Compute ``a @ b`` for two CSR matrices (Gustavson row-wise).

    For each row ``i`` of ``a``, the rows of ``b`` selected by ``a``'s
    column indices are scaled and merged in a dense accumulator; touched
    columns are emitted in sorted order.  Complexity is
    ``O(sum_i sum_{j in row i} nnz(b[j, :]))`` — the number of partial
    products — plus the accumulator resets, which are tracked sparsely.

    Args:
        a: Left operand, shape ``(m, k)``.
        b: Right operand, shape ``(k, n)``.

    Returns:
        The product in CSR form with sorted column indices per row and no
        explicit zeros (cancellations are dropped).
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: {a.shape} @ {b.shape}")
    accumulator = np.zeros(b.n_cols, dtype=np.float64)
    occupied = np.zeros(b.n_cols, dtype=bool)
    row_pointers = np.zeros(a.n_rows + 1, dtype=np.int64)
    out_cols: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    b_rp, b_ci, b_vals = b.row_pointers, b.column_indices, b.values
    for i in range(a.n_rows):
        touched: list[int] = []
        cols_i, vals_i = a.row_slice(i)
        for a_col, a_val in zip(cols_i, vals_i):
            lo, hi = b_rp[a_col], b_rp[a_col + 1]
            segment_cols = b_ci[lo:hi]
            # add.at, not fancy +=: rows of b may hold duplicate columns.
            np.add.at(accumulator, segment_cols, a_val * b_vals[lo:hi])
            new = np.unique(segment_cols[~occupied[segment_cols]])
            if len(new):
                occupied[new] = True
                touched.extend(new.tolist())
        if touched:
            touched_arr = np.sort(np.array(touched, dtype=np.int64))
            values = accumulator[touched_arr]
            keep = values != 0.0  # drop exact cancellations
            out_cols.append(touched_arr[keep])
            out_vals.append(values[keep])
            row_pointers[i + 1] = row_pointers[i] + int(keep.sum())
            accumulator[touched_arr] = 0.0
            occupied[touched_arr] = False
        else:
            row_pointers[i + 1] = row_pointers[i]
    column_indices = (
        np.concatenate(out_cols) if out_cols else np.empty(0, dtype=np.int64)
    )
    values = np.concatenate(out_vals) if out_vals else np.empty(0)
    return CSRMatrix(
        n_rows=a.n_rows,
        n_cols=b.n_cols,
        row_pointers=row_pointers,
        column_indices=column_indices,
        values=values,
    )


def spgemm_flops(a: CSRMatrix, b: CSRMatrix) -> int:
    """Partial products ``a @ b`` generates (the SpGEMM work measure).

    This is the quantity accelerator papers size their aggregation
    engines by; used by the HyGCN two-engine model.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: {a.shape} @ {b.shape}")
    b_lengths = b.row_lengths
    return int(b_lengths[a.column_indices].sum())
