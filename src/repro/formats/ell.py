"""ELLPACK (ELL) format: fixed-width padded rows.

ELL stores every row padded to the same width, giving perfectly regular,
vectorizable access — the representation behind the "regular matrix"
kernels of libraries like cuSPARSE.  It is efficient exactly when the
maximum row length is close to the average (Type II inputs) and
disastrous on power-law inputs, which is why the kernel-selection
baseline's dispatch depends on the padding ratio this module computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.csr import CSRMatrix

PAD_COLUMN = -1
"""Column index marking padding slots."""


@dataclass(frozen=True)
class ELLMatrix:
    """An ELL matrix: ``(n_rows, width)`` column/value grids.

    Attributes:
        n_rows: Number of rows.
        n_cols: Number of columns.
        columns: ``(n_rows, width)`` int64 grid; padding slots hold
            :data:`PAD_COLUMN`.
        values: ``(n_rows, width)`` float64 grid; padding slots hold 0.
    """

    n_rows: int
    n_cols: int
    columns: np.ndarray
    values: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.columns.shape != self.values.shape:
            raise ValueError(
                f"columns {self.columns.shape} and values "
                f"{self.values.shape} must have the same shape"
            )
        if self.columns.ndim != 2 or len(self.columns) != self.n_rows:
            raise ValueError(
                f"expected ({self.n_rows}, width) grids, got "
                f"{self.columns.shape}"
            )

    @property
    def width(self) -> int:
        """Padded row width (the maximum row length of the source)."""
        return self.columns.shape[1]

    @property
    def nnz(self) -> int:
        """Stored non-zeros (padding excluded)."""
        return int((self.columns != PAD_COLUMN).sum())

    @property
    def padding_ratio(self) -> float:
        """Stored slots over useful slots; 1.0 means no padding at all."""
        nnz = self.nnz
        return (self.n_rows * self.width) / nnz if nnz else float("inf")

    @classmethod
    def from_csr(cls, matrix: CSRMatrix) -> "ELLMatrix":
        """Convert CSR to ELL (width = maximum row length)."""
        width = int(matrix.row_lengths.max(initial=0))
        columns = np.full((matrix.n_rows, width), PAD_COLUMN, dtype=np.int64)
        values = np.zeros((matrix.n_rows, width), dtype=np.float64)
        lengths = matrix.row_lengths
        # Scatter each row's entries into its padded slots, vectorized via
        # flat indices row * width + position-within-row.
        rows = np.repeat(np.arange(matrix.n_rows), lengths)
        starts = np.repeat(matrix.row_pointers[:-1], lengths)
        within = np.arange(matrix.nnz) - starts
        flat = rows * width + within
        columns.reshape(-1)[flat] = matrix.column_indices
        values.reshape(-1)[flat] = matrix.values
        return cls(
            n_rows=matrix.n_rows, n_cols=matrix.n_cols,
            columns=columns, values=values,
        )

    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR, dropping padding."""
        mask = self.columns != PAD_COLUMN
        lengths = mask.sum(axis=1)
        row_pointers = np.concatenate(([0], np.cumsum(lengths)))
        return CSRMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            row_pointers=row_pointers,
            column_indices=self.columns[mask],
            values=self.values[mask],
        )

    def multiply_dense(self, dense: np.ndarray) -> np.ndarray:
        """The ELL SpMM: one fully regular pass per padded column.

        This is the access pattern the regular-matrix GPU kernels exploit:
        every step processes one slot of every row with perfectly uniform,
        branch-free work.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[0] != self.n_cols:
            raise ValueError(
                f"dimension mismatch: ({self.n_rows}, {self.n_cols}) @ "
                f"{dense.shape}"
            )
        output = np.zeros((self.n_rows, dense.shape[1]), dtype=np.float64)
        for slot in range(self.width):
            cols = self.columns[:, slot]
            valid = cols != PAD_COLUMN
            output[valid] += (
                self.values[valid, slot, None] * dense[cols[valid]]
            )
        return output
