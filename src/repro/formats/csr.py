"""Compressed sparse row (CSR) matrix container.

CSR is the input format for every SpMM kernel in this reproduction, exactly
as in the paper: the ``row_pointers`` array (the paper's *RP*) has length
``n_rows + 1`` and encodes where each row starts inside ``column_indices``
(the paper's *CP*) and ``values``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.formats.validation import validate_csr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.formats.coo import COOMatrix
    from repro.formats.csc import CSCMatrix

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64


@dataclass(frozen=True)
class CSRMatrix:
    """An immutable CSR sparse matrix.

    The container *takes ownership* of its arrays: ``__post_init__``
    marks them read-only, so in-place mutation through the matrix (or
    through an array that was passed in without a copy) raises instead
    of silently invalidating cached fingerprints and the merge-path
    schedules keyed on them.  Use :meth:`with_values` to rebind values.

    Attributes:
        n_rows: Number of rows.
        n_cols: Number of columns.
        row_pointers: ``int64`` array of length ``n_rows + 1`` (paper's *RP*).
        column_indices: ``int64`` array of length ``nnz`` (paper's *CP*).
        values: ``float64`` array of length ``nnz``.
        version: Optional graph epoch stamp (set by
            :class:`repro.graphs.delta.DeltaCSR` snapshots).  When set it
            is mixed into :meth:`fingerprint`, making every cache key in
            the stack version-precise: two epochs of a live graph never
            share a fingerprint, even if their structure coincides.
    """

    n_rows: int
    n_cols: int
    row_pointers: np.ndarray
    column_indices: np.ndarray
    values: np.ndarray = field(repr=False)
    version: "int | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "row_pointers", np.ascontiguousarray(self.row_pointers, INDEX_DTYPE)
        )
        object.__setattr__(
            self,
            "column_indices",
            np.ascontiguousarray(self.column_indices, INDEX_DTYPE),
        )
        object.__setattr__(
            self, "values", np.ascontiguousarray(self.values, VALUE_DTYPE)
        )
        validate_csr(
            self.row_pointers,
            self.column_indices,
            self.values,
            self.n_rows,
            self.n_cols,
        )
        # Freeze the arrays: cached fingerprints (and every schedule/plan
        # cache keyed on them) assume the content never changes in place.
        for name in ("row_pointers", "column_indices", "values"):
            array = getattr(self, name)
            if array.flags.writeable:
                array.flags.writeable = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a dense 2-D array (zeros are dropped)."""
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        counts = np.bincount(rows, minlength=dense.shape[0])
        row_pointers = np.concatenate(([0], np.cumsum(counts)))
        return cls(
            n_rows=dense.shape[0],
            n_cols=dense.shape[1],
            row_pointers=row_pointers,
            column_indices=cols,
            values=dense[rows, cols],
        )

    @classmethod
    def from_arrays(
        cls,
        row_pointers: "np.ndarray | list[int]",
        column_indices: "np.ndarray | list[int]",
        values: "np.ndarray | list[float] | None" = None,
        *,
        n_cols: int | None = None,
    ) -> "CSRMatrix":
        """Build a CSR matrix directly from RP/CP arrays.

        Args:
            row_pointers: Row pointer array of length ``n_rows + 1``.
            column_indices: Column index array of length ``nnz``.
            values: Non-zero values; defaults to all ones (an unweighted
                adjacency matrix, the common case for GCN aggregation).
            n_cols: Number of columns; defaults to ``n_rows`` (square).
        """
        row_pointers = np.asarray(row_pointers, dtype=INDEX_DTYPE)
        column_indices = np.asarray(column_indices, dtype=INDEX_DTYPE)
        if values is None:
            values = np.ones(len(column_indices), dtype=VALUE_DTYPE)
        n_rows = len(row_pointers) - 1
        return cls(
            n_rows=n_rows,
            n_cols=n_rows if n_cols is None else n_cols,
            row_pointers=row_pointers,
            column_indices=column_indices,
            values=np.asarray(values, dtype=VALUE_DTYPE),
        )

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The ``n x n`` identity matrix."""
        return cls(
            n_rows=n,
            n_cols=n,
            row_pointers=np.arange(n + 1, dtype=INDEX_DTYPE),
            column_indices=np.arange(n, dtype=INDEX_DTYPE),
            values=np.ones(n, dtype=VALUE_DTYPE),
        )

    def validate(self, *, strict: bool = False) -> None:
        """Re-run validation; ``strict=True`` adds the duplicate/unsorted/
        finite checks (see :func:`repro.formats.validation.validate_csr`).
        """
        validate_csr(
            self.row_pointers,
            self.column_indices,
            self.values,
            self.n_rows,
            self.n_cols,
            strict=strict,
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self, *, include_values: bool = False) -> str:
        """Stable content hash of this matrix's structure (cached).

        Hashes the shape, row pointers, and column indices with BLAKE2b,
        so two matrices with identical structure share a fingerprint no
        matter when or how they were constructed — unlike ``id()``, which
        aliases after garbage collection reuses an address and never
        matches across separate loads of the same graph.  Merge-path
        schedules depend only on structure, so this is the key every
        schedule/plan cache uses.

        When :attr:`version` is set, it is hashed too: epoch-stamped
        snapshots of a live graph (see
        :class:`repro.graphs.delta.DeltaCSR`) get a distinct fingerprint
        per epoch, so version-precise cache keys come for free.

        Args:
            include_values: Also hash the non-zero values, producing a
                full content key (used by the serving layer to decide
                which requests may share one batched execution).
        """
        attr = "_fingerprint_values" if include_values else "_fingerprint"
        token = self._buffer_token(include_values)
        cached = self.__dict__.get(attr)
        if cached is not None and cached[0] == token:
            return cached[1]
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(f"csr:{self.n_rows}:{self.n_cols}:".encode())
        if self.version is not None:
            hasher.update(f"v{self.version}:".encode())
        hasher.update(self.row_pointers.tobytes())
        hasher.update(self.column_indices.tobytes())
        if include_values:
            hasher.update(self.values.tobytes())
        digest = hasher.hexdigest()
        object.__setattr__(self, attr, (token, digest))
        return digest

    def _buffer_token(self, include_values: bool) -> tuple:
        """Identity of the buffers a cached fingerprint was computed from.

        The arrays themselves are frozen read-only at construction, so
        the only way content can change under a cached digest is a
        *rebind* — a different buffer swapped in behind the dataclass
        field.  Comparing ``(data pointer, nbytes)`` per array detects
        exactly that without rehashing ``nnz`` bytes per call.
        """
        arrays = (
            (self.row_pointers, self.column_indices, self.values)
            if include_values
            else (self.row_pointers, self.column_indices)
        )
        return tuple(
            (array.__array_interface__["data"][0], array.nbytes)
            for array in arrays
        )

    def with_values(self, values: np.ndarray) -> "CSRMatrix":
        """A sibling matrix sharing this structure with new values.

        This is the sanctioned way to "mutate" values: the frozen
        arrays make in-place writes raise, and a sibling gets its own
        (correct) value fingerprint while sharing RP/CP — so structural
        schedule caches still hit while value-keyed batching keys do
        not alias.
        """
        sibling = CSRMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            row_pointers=self.row_pointers,
            column_indices=self.column_indices,
            values=values,
            version=self.version,
        )
        # Structure (and version) are unchanged, so the structural
        # fingerprint carries over; the value fingerprint does not.
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            object.__setattr__(sibling, "_fingerprint", cached)
        return sibling

    def with_version(self, version: "int | None") -> "CSRMatrix":
        """This matrix re-stamped with a graph epoch (shares all arrays)."""
        if version == self.version:
            return self
        return CSRMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            row_pointers=self.row_pointers,
            column_indices=self.column_indices,
            values=self.values,
            version=version,
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return len(self.column_indices)

    @property
    def row_lengths(self) -> np.ndarray:
        """Per-row non-zero counts (node degrees for an adjacency matrix)."""
        return np.diff(self.row_pointers)

    @property
    def density(self) -> float:
        """Fraction of cells that are stored non-zeros."""
        cells = self.n_rows * self.n_cols
        return self.nnz / cells if cells else 0.0

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row_slice(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Column indices and values of one row."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range [0, {self.n_rows})")
        start, end = self.row_pointers[row], self.row_pointers[row + 1]
        return self.column_indices[start:end], self.values[start:end]

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, column_indices, values)`` for every row."""
        for row in range(self.n_rows):
            cols, vals = self.row_slice(row)
            yield row, cols, vals

    # ------------------------------------------------------------------
    # Conversions and operations
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array (duplicates are summed)."""
        dense = np.zeros(self.shape, dtype=VALUE_DTYPE)
        rows = np.repeat(np.arange(self.n_rows), self.row_lengths)
        np.add.at(dense, (rows, self.column_indices), self.values)
        return dense

    def to_coo(self) -> "COOMatrix":
        """Convert to coordinate format."""
        from repro.formats.coo import COOMatrix

        rows = np.repeat(np.arange(self.n_rows, dtype=INDEX_DTYPE), self.row_lengths)
        return COOMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            rows=rows,
            cols=self.column_indices.copy(),
            values=self.values.copy(),
        )

    def to_csc(self) -> "CSCMatrix":
        """Convert to compressed sparse column format."""
        from repro.formats.csc import CSCMatrix

        order = np.argsort(self.column_indices, kind="stable")
        rows = np.repeat(np.arange(self.n_rows, dtype=INDEX_DTYPE), self.row_lengths)
        counts = np.bincount(self.column_indices, minlength=self.n_cols)
        col_pointers = np.concatenate(([0], np.cumsum(counts)))
        return CSCMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            col_pointers=col_pointers,
            row_indices=rows[order],
            values=self.values[order],
            version=self.version,
        )

    def transpose(self) -> "CSRMatrix":
        """The transposed matrix, again in CSR form."""
        csc = self.to_csc()
        return CSRMatrix(
            n_rows=self.n_cols,
            n_cols=self.n_rows,
            row_pointers=csc.col_pointers,
            column_indices=csc.row_indices,
            values=csc.values,
            version=self.version,
        )

    def multiply_dense(self, dense: np.ndarray) -> np.ndarray:
        """Reference SpMM ``self @ dense`` used as ground truth in tests.

        Implemented with vectorized scatter-adds; every kernel in
        :mod:`repro.core` and :mod:`repro.baselines` is verified against it.
        """
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        if dense.shape[0] != self.n_cols:
            raise ValueError(
                f"dimension mismatch: {self.shape} @ {dense.shape}"
            )
        out = np.zeros((self.n_rows, dense.shape[1]), dtype=VALUE_DTYPE)
        rows = np.repeat(np.arange(self.n_rows), self.row_lengths)
        # Chunked scatter-add keeps the temporary partial-product array
        # bounded regardless of nnz.
        chunk = 1 << 20
        for lo in range(0, self.nnz, chunk):
            hi = min(lo + chunk, self.nnz)
            np.add.at(
                out,
                rows[lo:hi],
                self.values[lo:hi, None] * dense[self.column_indices[lo:hi]],
            )
        return out

    def sorted_indices(self) -> "CSRMatrix":
        """Return an equivalent matrix with column indices sorted per row."""
        column_indices = self.column_indices.copy()
        values = self.values.copy()
        for row in range(self.n_rows):
            start, end = self.row_pointers[row], self.row_pointers[row + 1]
            order = np.argsort(column_indices[start:end], kind="stable")
            column_indices[start:end] = column_indices[start:end][order]
            values[start:end] = values[start:end][order]
        return CSRMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            row_pointers=self.row_pointers.copy(),
            column_indices=column_indices,
            values=values,
            version=self.version,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.row_pointers, other.row_pointers)
            and np.array_equal(self.column_indices, other.column_indices)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("CSRMatrix is not hashable (holds mutable arrays)")
