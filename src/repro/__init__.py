"""MergePath-SpMM: parallel sparse matrix-matrix multiplication for GNNs.

A full reproduction of "MergePath-SpMM: Parallel Sparse Matrix-Matrix
Algorithm for Graph Neural Network Acceleration" (ISPASS 2023): the
load-balanced SpMM algorithm itself, the baselines it is compared against,
a GPU timing model standing in for the paper's Quadro RTX 6000, a
Graphite-style 1000-core multicore simulator, the GNN models the kernels
serve, and per-figure experiment harnesses.

Quickstart::

    import numpy as np
    from repro import merge_path_spmm, power_law_graph

    adjacency = power_law_graph(n_nodes=10_000, nnz=80_000, max_degree=900)
    features = np.random.default_rng(0).random((10_000, 16))
    result = merge_path_spmm(adjacency, features)
    print(result.schedule.statistics)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    MergePathSchedule,
    ScheduleCache,
    SchedulingMode,
    SpMMResult,
    build_schedule,
    merge_path_spmm,
    schedule_for_cost,
    tune_merge_path_cost,
)
from repro.formats import COOMatrix, CSCMatrix, CSRMatrix, row_statistics
from repro.graphs import (
    DATASETS,
    Graph,
    load_dataset,
    power_law_graph,
    regular_graph,
)

__version__ = "1.0.0"

__all__ = [
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "DATASETS",
    "Graph",
    "MergePathSchedule",
    "ScheduleCache",
    "SchedulingMode",
    "SpMMResult",
    "__version__",
    "build_schedule",
    "load_dataset",
    "merge_path_spmm",
    "power_law_graph",
    "regular_graph",
    "row_statistics",
    "schedule_for_cost",
    "tune_merge_path_cost",
]
