"""Row-splitting SpMM: contiguous equal-row chunks per thread.

This is the parallelization every GCN hardware accelerator in the paper's
related work uses: rows are divided into ``n_threads`` contiguous chunks of
(nearly) equal *row count*.  A single thread owns each output row, so no
synchronization is needed — but the per-thread *non-zero* counts can differ
wildly on power-law inputs, which is exactly the load-imbalance problem the
paper motivates with.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro import obs
from repro.formats import CSRMatrix


@dataclass(frozen=True)
class RowSplitSchedule:
    """Equal-row-count decomposition of a CSR matrix.

    Attributes:
        matrix: The scheduled sparse matrix.
        n_threads: Number of chunks.
        boundaries: ``n_threads + 1`` row boundaries; thread ``t`` owns rows
            ``[boundaries[t], boundaries[t + 1])``.
    """

    matrix: CSRMatrix
    n_threads: int
    boundaries: np.ndarray

    @classmethod
    def build(cls, matrix: CSRMatrix, n_threads: int) -> "RowSplitSchedule":
        """Split ``matrix`` into ``n_threads`` contiguous row chunks."""
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        boundaries = np.linspace(0, matrix.n_rows, n_threads + 1).astype(np.int64)
        return cls(matrix=matrix, n_threads=n_threads, boundaries=boundaries)

    @cached_property
    def per_thread_rows(self) -> np.ndarray:
        """Rows owned by each thread."""
        return np.diff(self.boundaries)

    @cached_property
    def per_thread_nnz(self) -> np.ndarray:
        """Non-zeros owned by each thread — the imbalance signal."""
        return np.diff(self.matrix.row_pointers[self.boundaries])

    @property
    def load_imbalance(self) -> float:
        """Max-to-mean ratio of per-thread non-zeros (1.0 is perfect)."""
        nnz = self.per_thread_nnz
        mean = nnz.mean() if len(nnz) else 0.0
        return float(nnz.max() / mean) if mean > 0 else 1.0

    def execute(self, dense: np.ndarray) -> np.ndarray:
        """Compute ``matrix @ dense`` chunk by chunk (no atomics needed)."""
        dense = np.asarray(dense, dtype=np.float64)
        matrix = self.matrix
        if dense.shape[0] != matrix.n_cols:
            raise ValueError(f"dimension mismatch: {matrix.shape} @ {dense.shape}")
        output = np.zeros((matrix.n_rows, dense.shape[1]), dtype=np.float64)
        rp, cp, values = matrix.row_pointers, matrix.column_indices, matrix.values
        for t in range(self.n_threads):
            for row in range(self.boundaries[t], self.boundaries[t + 1]):
                lo, hi = rp[row], rp[row + 1]
                output[row] = values[lo:hi] @ dense[cp[lo:hi]]
        return output


@obs.instrumented
def row_splitting_spmm(
    matrix: CSRMatrix, dense: np.ndarray, n_threads: int
) -> tuple[np.ndarray, RowSplitSchedule]:
    """Row-splitting SpMM; returns the product and the schedule used."""
    schedule = RowSplitSchedule.build(matrix, n_threads)
    return schedule.execute(dense), schedule
