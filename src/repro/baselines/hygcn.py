"""HyGCN-style two-engine accelerator model (related-work baseline).

HyGCN [27] and similar designs split a GCN layer across two dedicated
hardware engines: an *aggregation* engine consuming the sparse-sparse
work (``A @ X``) and a *combination* engine consuming the dense neural
work (``(.) @ W``).  The paper's introduction points out the flaw this
reproduction quantifies: because the split between the two kinds of work
depends entirely on the input graph, one engine idles while the other is
the bottleneck ("inter-engine workload imbalance"), which motivated the
unified-engine designs (AWB-GCN, GNNAdvisor) the paper builds on.

The model is analytic: each engine has a fixed MAC throughput, a layer's
time is the maximum of the two engines' times (they pipeline), and the
idle fraction of the non-bottleneck engine is the utilization loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.formats import CSRMatrix
from repro.formats.spgemm import spgemm_flops


@dataclass(frozen=True)
class HyGCNConfig:
    """Two-engine hardware parameters (HyGCN-like proportions).

    Attributes:
        aggregation_macs: MAC units in the SpGEMM (aggregation) engine.
        combination_macs: MAC units in the dense (combination) engine.
        clock_hz: Accelerator clock.
        utilization: Sustained fraction of peak per engine.
    """

    aggregation_macs: int = 32 * 32
    combination_macs: int = 32 * 128
    clock_hz: float = 1e9
    utilization: float = 0.5


@dataclass(frozen=True)
class LayerTiming:
    """One layer's modeled execution on the two engines.

    Attributes:
        aggregation_seconds: Aggregation-engine busy time.
        combination_seconds: Combination-engine busy time.
        layer_seconds: Pipelined layer time (max of the two).
        bottleneck: ``"aggregation"`` or ``"combination"``.
        idle_fraction: Idle share of the non-bottleneck engine — the
            inter-engine workload imbalance the paper criticizes.
    """

    aggregation_seconds: float
    combination_seconds: float
    layer_seconds: float
    bottleneck: str
    idle_fraction: float


class HyGCNModel:
    """Analytic timing for the two-engine design."""

    def __init__(self, config: HyGCNConfig | None = None) -> None:
        self.config = config or HyGCNConfig()

    @obs.instrumented(name="baselines.hygcn.layer_time")
    def layer_time(
        self,
        adjacency: CSRMatrix,
        features: CSRMatrix,
        out_dim: int,
    ) -> LayerTiming:
        """Model one GCN layer ``(A @ X) @ W``.

        Args:
            adjacency: Sparse ``n x n`` adjacency (aggregation operand).
            features: Sparse ``n x f`` feature matrix.
            out_dim: Width of the dense weight matrix ``W``.

        Returns:
            The per-engine and pipelined :class:`LayerTiming`.
        """
        cfg = self.config
        aggregation_work = spgemm_flops(adjacency, features)
        # Combination: the aggregated (n x f) output, densified row-wise,
        # against the f x out_dim weights.  Work scales with the non-zero
        # structure of the aggregate, bounded by the dense product.
        combination_work = min(
            aggregation_work * out_dim,
            adjacency.n_rows * features.n_cols * out_dim,
        )
        agg_rate = cfg.aggregation_macs * cfg.utilization * cfg.clock_hz
        comb_rate = cfg.combination_macs * cfg.utilization * cfg.clock_hz
        t_agg = aggregation_work / agg_rate
        t_comb = combination_work / comb_rate
        layer = max(t_agg, t_comb)
        idle = 1.0 - min(t_agg, t_comb) / layer if layer > 0 else 0.0
        return LayerTiming(
            aggregation_seconds=t_agg,
            combination_seconds=t_comb,
            layer_seconds=layer,
            bottleneck="aggregation" if t_agg >= t_comb else "combination",
            idle_fraction=idle,
        )

    @obs.instrumented(name="baselines.hygcn.unified_layer_time")
    def unified_layer_time(
        self,
        adjacency: CSRMatrix,
        features: CSRMatrix,
        out_dim: int,
    ) -> float:
        """The same layer on one unified engine of equal total MACs.

        The comparison the paper's Section I draws: a unified design
        processes the combined work with no inter-engine idling.
        """
        cfg = self.config
        timing = self.layer_time(adjacency, features, out_dim)
        total_work = (
            timing.aggregation_seconds
            * cfg.aggregation_macs
            * cfg.utilization
            * cfg.clock_hz
            + timing.combination_seconds
            * cfg.combination_macs
            * cfg.utilization
            * cfg.clock_hz
        )
        unified_macs = cfg.aggregation_macs + cfg.combination_macs
        return total_work / (unified_macs * cfg.utilization * cfg.clock_hz)
