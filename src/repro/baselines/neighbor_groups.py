"""GNNAdvisor-style nnz-splitting into neighbor groups.

GNNAdvisor partitions every row's non-zeros into *neighbor groups* (NGs) of
a user-parameterizable size (default: the graph's average degree).  Each
group is an independent unit of work mapped to a warp, which exposes
maximal parallelism — but because several groups may target the same output
row, *every* output update must be atomic.  This indiscriminate use of
atomics is the shortcoming MergePath-SpMM attacks.

The paper's **GNNAdvisor-opt** extension packs multiple neighbor groups in
one warp when the dimension size is below the SIMD width, raising lane
utilization; functionally identical, it only changes the warp mapping used
by the GPU timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro import obs
from repro.formats import CSRMatrix

_CHUNK_NNZ = 1 << 20


@dataclass(frozen=True)
class NeighborGroupSchedule:
    """Decomposition of a CSR matrix into fixed-size neighbor groups.

    Attributes:
        matrix: The scheduled sparse matrix.
        group_size: Maximum non-zeros per neighbor group (the NG size).
        group_rows: Target output row of each group.
        group_starts: First non-zero index of each group.
        group_ends: One-past-last non-zero index of each group.
    """

    matrix: CSRMatrix
    group_size: int
    group_rows: np.ndarray
    group_starts: np.ndarray
    group_ends: np.ndarray

    @classmethod
    def build(
        cls, matrix: CSRMatrix, group_size: int | None = None
    ) -> "NeighborGroupSchedule":
        """Partition ``matrix`` into neighbor groups.

        Args:
            matrix: Sparse input.
            group_size: NG size; defaults to the average degree rounded up
                (GNNAdvisor's default), clamped to at least 1.
        """
        if group_size is None:
            avg = matrix.nnz / matrix.n_rows if matrix.n_rows else 1.0
            group_size = max(1, int(round(avg)))
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        lengths = matrix.row_lengths
        groups_per_row = -(-lengths // group_size)  # ceil; 0 for empty rows
        total = int(groups_per_row.sum())
        rows = np.repeat(np.arange(matrix.n_rows, dtype=np.int64), groups_per_row)
        # Offset of each group within its row: 0, g, 2g, ... via a running
        # index reset at row boundaries.
        first_group = (
            np.concatenate(([0], np.cumsum(groups_per_row)[:-1]))
            if len(groups_per_row)
            else np.empty(0, dtype=np.int64)
        )
        within = np.arange(total) - np.repeat(first_group, groups_per_row)
        starts = matrix.row_pointers[rows] + within * group_size
        ends = np.minimum(starts + group_size, matrix.row_pointers[rows + 1])
        return cls(
            matrix=matrix,
            group_size=group_size,
            group_rows=rows,
            group_starts=starts,
            group_ends=ends,
        )

    @property
    def n_groups(self) -> int:
        return len(self.group_rows)

    @cached_property
    def group_lengths(self) -> np.ndarray:
        return self.group_ends - self.group_starts

    @cached_property
    def groups_per_row(self) -> np.ndarray:
        """Number of groups targeting each output row (atomic sharers)."""
        return np.bincount(self.group_rows, minlength=self.matrix.n_rows)

    @property
    def atomic_writes(self) -> int:
        """Total atomic output updates — one per group, by construction."""
        return self.n_groups

    @property
    def max_row_sharers(self) -> int:
        """Largest number of groups contending on one output row."""
        return int(self.groups_per_row.max(initial=0))

    def execute(self, dense: np.ndarray) -> np.ndarray:
        """Compute ``matrix @ dense``: per-group sums, all-atomic updates."""
        dense = np.asarray(dense, dtype=np.float64)
        matrix = self.matrix
        if dense.shape[0] != matrix.n_cols:
            raise ValueError(f"dimension mismatch: {matrix.shape} @ {dense.shape}")
        dim = dense.shape[1]
        group_sums = np.zeros((self.n_groups, dim), dtype=np.float64)
        # Every non-zero belongs to exactly one group; groups are emitted in
        # non-zero order, so the group id per non-zero is a plain repeat.
        ids = np.repeat(np.arange(self.n_groups), self.group_lengths)
        cp, values = matrix.column_indices, matrix.values
        for lo in range(0, matrix.nnz, _CHUNK_NNZ):
            hi = min(lo + _CHUNK_NNZ, matrix.nnz)
            np.add.at(
                group_sums, ids[lo:hi], values[lo:hi, None] * dense[cp[lo:hi]]
            )
        output = np.zeros((matrix.n_rows, dim), dtype=np.float64)
        np.add.at(output, self.group_rows, group_sums)  # all updates atomic
        return output


@obs.instrumented
def gnnadvisor_spmm(
    matrix: CSRMatrix,
    dense: np.ndarray,
    group_size: int | None = None,
) -> tuple[np.ndarray, NeighborGroupSchedule]:
    """GNNAdvisor SpMM; returns the product and the NG schedule used."""
    schedule = NeighborGroupSchedule.build(matrix, group_size)
    return schedule.execute(dense), schedule
