"""Merge-path SpMM with a serial fix-up phase (Merrill & Garland's SpMV
strategy generalized to SpMM).

This is the paper's "merge-path" baseline: work is decomposed with the same
load-balanced merge-path search as MergePath-SpMM, but instead of atomic
updates, every thread saves the partial sums of rows it shares with
neighbours into a carry-out buffer, and a *serial* phase folds all carries
into the output after the parallel phase ends.  For SpMV the serial phase
touches one scalar per split row; for SpMM it touches ``dim`` values per
split row, and on power-law graphs (where evil rows are split across many
threads) the serial phase dominates — the bottleneck Figure 2 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.schedule import MergePathSchedule
from repro.core.spmm import write_segments
from repro import obs
from repro.formats import CSRMatrix


@dataclass(frozen=True)
class SerialMergePathSchedule:
    """Merge-path decomposition with carry-based (serial fix-up) execution.

    Attributes:
        schedule: The underlying merge-path schedule (same decomposition as
            MergePath-SpMM).
    """

    schedule: MergePathSchedule

    @classmethod
    def build(cls, matrix: CSRMatrix, n_threads: int) -> "SerialMergePathSchedule":
        return cls(schedule=MergePathSchedule(matrix, n_threads))

    @property
    def matrix(self) -> CSRMatrix:
        return self.schedule.matrix

    @property
    def n_threads(self) -> int:
        return self.schedule.n_threads

    @cached_property
    def carry_count(self) -> int:
        """Partial-row segments folded in by the serial phase."""
        segments = write_segments(self.schedule)
        return int(segments.atomic.sum())

    @cached_property
    def serial_nnz(self) -> int:
        """Non-zeros whose accumulation lands in the serial phase's carries.

        In the SpMV formulation each thread accumulates its partial-row
        products locally during the parallel phase and the serial phase
        only folds carries; the folded *work* still scales with the number
        of carries times the dimension size, which the GPU model charges
        as unhidden serial latency.
        """
        segments = write_segments(self.schedule)
        return int(segments.lengths[segments.atomic].sum())

    def execute(self, dense: np.ndarray) -> np.ndarray:
        """Compute ``matrix @ dense`` with parallel phase + serial fix-up."""
        dense = np.asarray(dense, dtype=np.float64)
        matrix = self.matrix
        if dense.shape[0] != matrix.n_cols:
            raise ValueError(f"dimension mismatch: {matrix.shape} @ {dense.shape}")
        segments = write_segments(self.schedule)
        dim = dense.shape[1]
        output = np.zeros((matrix.n_rows, dim), dtype=np.float64)
        cp, values = matrix.column_indices, matrix.values
        carries: list[tuple[int, np.ndarray]] = []
        # Parallel phase: complete rows stored directly, partial-row sums
        # saved as (row, carry) pairs.
        for i in range(segments.n_segments):
            lo = int(segments.starts[i])
            hi = lo + int(segments.lengths[i])
            row = int(segments.rows[i])
            partial = values[lo:hi] @ dense[cp[lo:hi]] if hi > lo else None
            if segments.atomic[i]:
                if partial is not None:
                    carries.append((row, partial))
            else:
                output[row] = partial if partial is not None else 0.0
        # Serial phase: fold carries one by one (modeled as unparallelized).
        for row, carry in carries:
            output[row] += carry
        return output


@obs.instrumented
def merge_path_serial_spmm(
    matrix: CSRMatrix, dense: np.ndarray, n_threads: int
) -> tuple[np.ndarray, SerialMergePathSchedule]:
    """Serial-fix-up merge-path SpMM; returns the product and schedule."""
    schedule = SerialMergePathSchedule.build(matrix, n_threads)
    return schedule.execute(dense), schedule
