"""AWB-GCN accelerator model: a PE array with runtime evil-row rebalancing.

AWB-GCN (Geng et al., MICRO 2020) is a 4096-MAC FPGA accelerator running at
330 MHz whose hardware auto-tuner detects rows with disproportionally many
non-zeros ("evil rows") at runtime and assigns multiple processing elements
to each.  The paper's Figure 2 compares against AWB-GCN's *published*
execution times, so this model reproduces the mechanism — row distribution,
evil-row splitting, per-row pipeline overhead — and calibrates its two free
constants (PE utilization, per-row pipeline cost) against the published
Cora/Citeseer numbers quoted in the paper (4.3 µs and 6.3 µs).

The modeled completion time is

``T = sum_i max(L_i * d, row_overhead) / (P * utilization * f) + fixed / f``

where ``L_i`` are row lengths, ``d`` the dimension size, ``P`` the PE
count, and ``f`` the clock.  The auto-tuner's effect is captured by the
near-perfect balance of the numerator (evil rows are split into
mean-sized chunks, so the max-PE load tracks the mean) — without the
tuner the time is bounded by the largest whole row instead, which
:meth:`AWBGCNModel.completion_time_without_tuner` exposes for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats import CSRMatrix


@dataclass(frozen=True)
class AWBGCNConfig:
    """AWB-GCN hardware parameters and calibrated model constants.

    Attributes:
        n_pes: Multiply-accumulate processing elements (paper: 4096).
        clock_hz: Accelerator clock (paper: 330 MHz).
        utilization: Effective fraction of peak MAC throughput sustained;
            calibrated against the published Cora time.
        row_overhead_cycles: Minimum pipeline occupancy cost of any row,
            regardless of its length; calibrated against the published
            Citeseer time (short-row-dominated input).
        fixed_overhead_cycles: Kernel-invariant startup cost.
        evil_row_multiple: Row length (in multiples of the average) above
            which the auto-tuner splits a row across PEs.
    """

    n_pes: int = 4096
    clock_hz: float = 330e6
    utilization: float = 0.30
    row_overhead_cycles: float = 600.0
    fixed_overhead_cycles: float = 120.0
    evil_row_multiple: float = 8.0


class AWBGCNModel:
    """Analytic completion-time model of the AWB-GCN accelerator."""

    def __init__(self, config: AWBGCNConfig | None = None) -> None:
        self.config = config or AWBGCNConfig()

    # ------------------------------------------------------------------
    # Load construction
    # ------------------------------------------------------------------
    def row_loads(self, matrix: CSRMatrix, dim: int) -> np.ndarray:
        """Per-row PE cycle cost: MACs, floored by the pipeline overhead."""
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        macs = matrix.row_lengths.astype(np.float64) * dim
        return np.maximum(macs, self.config.row_overhead_cycles)

    def detect_evil_rows(self, matrix: CSRMatrix) -> np.ndarray:
        """Rows the auto-tuner would split across multiple PEs."""
        lengths = matrix.row_lengths
        if matrix.nnz == 0:
            return np.empty(0, dtype=np.int64)
        threshold = self.config.evil_row_multiple * lengths.mean()
        return np.nonzero(lengths > threshold)[0]

    def balanced_max_load(self, matrix: CSRMatrix, dim: int) -> float:
        """Max per-PE load *with* the auto-tuner's evil-row splitting.

        Evil rows are split into chunks no larger than the mean per-PE
        load, so the bottleneck PE carries approximately the mean plus one
        chunk's slack.
        """
        loads = self.row_loads(matrix, dim)
        cfg = self.config
        mean = loads.sum() / cfg.n_pes
        evil = self.detect_evil_rows(matrix)
        non_evil_max = float(
            np.delete(loads, evil).max(initial=0.0)
        ) if len(evil) else float(loads.max(initial=0.0))
        # Post-split chunk size is bounded by the mean load; a non-evil row
        # is never split, so it lower-bounds the critical PE.
        return max(mean, min(non_evil_max, mean + cfg.row_overhead_cycles))

    # ------------------------------------------------------------------
    # Completion time
    # ------------------------------------------------------------------
    def dedicated_evil_pes(self, matrix: CSRMatrix) -> int:
        """PEs the auto-tuner can dedicate to evil rows.

        When the graph has far more rows than PEs, every PE is busy with
        regular rows and only a sliver of the array can be re-assigned to
        evil rows — the paper's observation that on Nell "the auto-tuner
        hardware has very limited success" due to the lack of spare
        parallelism.  The dedicated pool shrinks with the rows-per-PE
        pressure and is floored to keep the model defined on tiny inputs.
        """
        cfg = self.config
        if matrix.n_rows <= cfg.n_pes:
            return cfg.n_pes
        pool = int(cfg.n_pes * cfg.n_pes / (4 * matrix.n_rows))
        return max(64, min(cfg.n_pes, pool))

    @obs.instrumented(name="baselines.awb_gcn.completion_time")
    def completion_time(self, matrix: CSRMatrix, dim: int) -> float:
        """Modeled kernel completion time (seconds) with the auto-tuner.

        Regular rows stream through the full PE array; evil rows are
        serialized on the (possibly small) dedicated pool the auto-tuner
        can spare, which is what limits AWB-GCN on extreme power-law
        inputs with many rows.
        """
        cfg = self.config
        loads = self.row_loads(matrix, dim)
        evil = self.detect_evil_rows(matrix)
        evil_load = float(loads[evil].sum())
        regular_load = float(loads.sum()) - evil_load
        dedicated = self.dedicated_evil_pes(matrix)
        cycles = (
            regular_load / (cfg.n_pes * cfg.utilization)
            + evil_load / (dedicated * cfg.utilization)
            + cfg.fixed_overhead_cycles
        )
        return cycles / cfg.clock_hz

    def completion_time_without_tuner(self, matrix: CSRMatrix, dim: int) -> float:
        """Modeled time with plain row distribution (no evil-row splitting).

        With rows dealt round-robin, the bottleneck PE carries its fair
        share plus the excess of the largest whole row over an average
        row — the quantity the auto-tuner exists to shave off.  On inputs
        with no oversized rows this collapses to the tuned time (the tuner
        can only help, never hurt).
        """
        cfg = self.config
        loads = self.row_loads(matrix, dim)
        if len(loads) == 0:
            return cfg.fixed_overhead_cycles / cfg.clock_hz
        mean_pe = float(loads.sum()) / cfg.n_pes
        excess = float(loads.max()) - float(loads.mean())
        cycles = (mean_pe + excess) / cfg.utilization + cfg.fixed_overhead_cycles
        return max(cycles / cfg.clock_hz, self.completion_time(matrix, dim))

    def speedup_from_tuner(self, matrix: CSRMatrix, dim: int) -> float:
        """Auto-tuner benefit: untuned time divided by tuned time."""
        return self.completion_time_without_tuner(matrix, dim) / self.completion_time(
            matrix, dim
        )
