"""A cuSPARSE-like kernel-selection SpMM library model.

cuSPARSE is closed source; what the paper observes is *behaviour*: it loses
to load-balanced kernels on power-law inputs (its row-major kernels
serialize evil rows) and wins on structured inputs (tuned regular kernels,
no atomics, excellent coalescing), with an outsized advantage on
Twitter-partial that the paper itself could only attribute to "a different
parallelization kernel".

This module reproduces that behaviour from mechanism where possible and
from a documented dispatch approximation where not:

* :class:`CuSparseKernel.ROW_PER_WARP` — the classic csrmm kernel: one warp
  per row, vectorized across the dimension.  Per-warp work equals the row
  length, so evil rows become stragglers.
* :class:`CuSparseKernel.BALANCED_NNZ` — a tuned regular-matrix kernel:
  non-zeros split evenly across warps with no atomics (legal only when row
  boundaries are respected, which the dispatcher only selects for
  low-variance inputs), with a lower per-non-zero instruction cost
  reflecting hand-tuned code.
* :class:`CuSparseKernel.FEATURE_MAJOR` — a feature-major (column-parallel)
  kernel that excels on ultra-short-row mid-size matrices; the dispatch
  rule that selects it is calibrated to the paper's observed Twitter-partial
  behaviour and is documented as such.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats import CSRMatrix, row_statistics


class CuSparseKernel(enum.Enum):
    """Kernels the modeled library dispatches between."""

    ROW_PER_WARP = "row_per_warp"
    BALANCED_NNZ = "balanced_nnz"
    FEATURE_MAJOR = "feature_major"


# Relative per-non-zero instruction cost of each kernel (1.0 is the generic
# row-wise kernel's cost).  Tuned constants: see module docstring.
KERNEL_EFFICIENCY = {
    CuSparseKernel.ROW_PER_WARP: 1.0,
    CuSparseKernel.BALANCED_NNZ: 0.60,
    CuSparseKernel.FEATURE_MAJOR: 0.35,
}


@dataclass(frozen=True)
class CuSparsePlan:
    """The dispatcher's decision for one input.

    Attributes:
        kernel: Selected kernel.
        matrix: The sparse input the plan was built for.
        reason: Human-readable dispatch justification (for reports).
    """

    kernel: CuSparseKernel
    matrix: CSRMatrix
    reason: str

    @property
    def efficiency(self) -> float:
        """Relative per-non-zero instruction cost factor of the kernel."""
        return KERNEL_EFFICIENCY[self.kernel]


def select_kernel(matrix: CSRMatrix) -> CuSparsePlan:
    """Dispatch heuristic approximating the closed-source library.

    Rules (checked in order):

    1. Ultra-short rows (average degree < 3, maximum degree <= 16) on a
       mid-size matrix select the feature-major kernel — this reproduces
       the paper's Twitter-partial observation and is an *approximation of
       observed dispatch*, not reverse engineering.
    2. Low row-length variance (max/avg <= 8) selects the regular-matrix
       balanced kernel.
    3. Everything else falls back to the generic row-per-warp kernel.
    """
    stats = row_statistics(matrix)
    if (
        stats.avg_degree < 3.0
        and stats.max_degree <= 16
        and 100_000 <= stats.n_rows <= 1_200_000
    ):
        return CuSparsePlan(
            CuSparseKernel.FEATURE_MAJOR,
            matrix,
            "ultra-short rows on mid-size matrix: feature-major kernel",
        )
    if stats.avg_degree > 0 and stats.imbalance_factor <= 8.0:
        return CuSparsePlan(
            CuSparseKernel.BALANCED_NNZ,
            matrix,
            "low row-length variance: regular-matrix balanced kernel",
        )
    return CuSparsePlan(
        CuSparseKernel.ROW_PER_WARP,
        matrix,
        "irregular input: generic row-per-warp CSR kernel",
    )


@obs.instrumented
def cusparse_like_spmm(
    matrix: CSRMatrix, dense: np.ndarray
) -> tuple[np.ndarray, CuSparsePlan]:
    """Kernel-selected SpMM; returns the product and the dispatch plan.

    All three kernels compute the same product; they differ only in the
    execution structure the GPU timing model charges for.
    """
    plan = select_kernel(matrix)
    return matrix.multiply_dense(np.asarray(dense, dtype=np.float64)), plan
