"""Baseline SpMM algorithms the paper compares against.

Every baseline provides (a) a *partitioning/schedule* capturing how work is
distributed among threads or processing elements, (b) a functional executor
verified against dense ground truth, and (c) enough statistics for the GPU
timing model in :mod:`repro.gpu` to reproduce the paper's comparisons.

Implemented baselines:

* :mod:`repro.baselines.row_splitting` — contiguous equal-row chunks, no
  atomics, severe load imbalance on power-law inputs (used by AWB-GCN-style
  accelerators and as the paper's simplest GPU baseline).
* :mod:`repro.baselines.neighbor_groups` — GNNAdvisor's nnz-splitting into
  fixed-size neighbor groups, every output update atomic; includes the
  paper's GNNAdvisor-opt packing of multiple groups per warp.
* :mod:`repro.baselines.merge_path_serial` — Merrill & Garland's merge-path
  SpMV strategy generalized to SpMM: complete rows in parallel, partial
  rows fixed up in a serial phase.
* :mod:`repro.baselines.cusparse_like` — a kernel-selection library model
  (row-per-warp CSR kernel plus a regular-matrix ELL-style kernel).
* :mod:`repro.baselines.awb_gcn` — the AWB-GCN accelerator's PE array with
  runtime evil-row rebalancing, as an analytic timing model.
"""

from repro.baselines.row_splitting import RowSplitSchedule, row_splitting_spmm
from repro.baselines.neighbor_groups import (
    NeighborGroupSchedule,
    gnnadvisor_spmm,
)
from repro.baselines.merge_path_serial import (
    SerialMergePathSchedule,
    merge_path_serial_spmm,
)
from repro.baselines.cusparse_like import (
    CuSparseKernel,
    CuSparsePlan,
    cusparse_like_spmm,
    select_kernel,
)
from repro.baselines.awb_gcn import AWBGCNConfig, AWBGCNModel
from repro.baselines.hygcn import HyGCNConfig, HyGCNModel, LayerTiming

__all__ = [
    "AWBGCNConfig",
    "AWBGCNModel",
    "HyGCNConfig",
    "HyGCNModel",
    "LayerTiming",
    "CuSparseKernel",
    "CuSparsePlan",
    "NeighborGroupSchedule",
    "RowSplitSchedule",
    "SerialMergePathSchedule",
    "cusparse_like_spmm",
    "gnnadvisor_spmm",
    "merge_path_serial_spmm",
    "row_splitting_spmm",
    "select_kernel",
]
