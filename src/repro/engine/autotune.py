"""Measured per-matrix executor selection with a persistent tuning cache.

Accel-GCN's observation (Xie et al., ICCAD'23) is that no single SpMM
kernel wins on every input: the right choice depends on the sparsity
structure and the dense width.  This reproduction has the same spread —
``execute_reference`` wins tiny graphs where setup dominates, the engine
fast path wins large ones, and thread-pool parallelism sits in between —
so the :class:`Autotuner` picks empirically instead of by heuristic.

For each ``(matrix fingerprint, width)`` pair the tuner times every
candidate on a deterministic warmup operand and records the winner in a
JSON cache (``repro.engine.autotune/1`` schema, written atomically), so
a process restart re-reads decisions instead of re-measuring.  Timing is
injectable (``measure=``) which is what makes tuning decisions
reproducible in tests: a fake measure keyed on candidate name yields the
same winner every run.

Usage::

    tuner = Autotuner(cache_path="tuning.json")
    run = tuner.best_executor(matrix, width=64)
    output = run(matrix, features)          # dispatches to the winner
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro import obs
from repro.core.parallel import execute_parallel
from repro.core.schedule import schedule_for_cost
from repro.core.spmm import execute_reference, execute_vectorized
from repro.core.thread_mapping import default_merge_path_cost
from repro.engine.kernels import engine_spmm
from repro.formats import CSRMatrix
from repro.formats.io import atomic_write_text

SCHEMA = "repro.engine.autotune/1"

# Worker counts offered for the thread-pool candidate.
PARALLEL_WORKERS = (2, 4)

# Rows of the warmup operand are enough to rank executors; timing the
# full width would just make tuning slower without changing the order.
_WARMUP_REPEATS = 2


@dataclass(frozen=True)
class Candidate:
    """One executor the autotuner can select.

    Attributes:
        name: Stable identifier persisted in the tuning cache.
        run: ``run(matrix, dense) -> np.ndarray`` executing the product.
    """

    name: str
    run: Callable[[CSRMatrix, np.ndarray], np.ndarray] = field(repr=False)


def _run_reference(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    cost = default_merge_path_cost(dense.shape[1])
    output, _ = execute_reference(schedule_for_cost(matrix, cost), dense)
    return output


def _run_vectorized(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    cost = default_merge_path_cost(dense.shape[1])
    output, _ = execute_vectorized(schedule_for_cost(matrix, cost), dense)
    return output


def _make_parallel(n_workers: int) -> Candidate:
    def run(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
        cost = default_merge_path_cost(dense.shape[1])
        schedule = schedule_for_cost(matrix, cost)
        return execute_parallel(schedule, dense, n_workers=n_workers).output

    return Candidate(name=f"parallel[{n_workers}]", run=run)


def _run_engine(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    return engine_spmm(matrix, dense)


def default_candidates() -> "tuple[Candidate, ...]":
    """The stock candidate set, in fixed (deterministic) order."""
    return (
        Candidate(name="reference", run=_run_reference),
        Candidate(name="vectorized", run=_run_vectorized),
        *(_make_parallel(k) for k in PARALLEL_WORKERS),
        Candidate(name="engine", run=_run_engine),
    )


@dataclass(frozen=True)
class TuningDecision:
    """The persisted outcome of tuning one ``(matrix, width)`` pair.

    Attributes:
        fingerprint: Content fingerprint of the tuned matrix.
        width: Dense feature width the decision applies to.
        winner: Name of the fastest candidate.
        timings: Measured seconds per candidate name.
    """

    fingerprint: str
    width: int
    winner: str
    timings: "dict[str, float]"

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "width": self.width,
            "winner": self.winner,
            "timings": self.timings,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TuningDecision":
        return cls(
            fingerprint=payload["fingerprint"],
            width=int(payload["width"]),
            winner=payload["winner"],
            timings={k: float(v) for k, v in payload["timings"].items()},
        )


def _default_measure(fn: Callable[[], object]) -> float:
    """Best-of-N wall time of ``fn`` (minimum filters scheduler noise)."""
    best = float("inf")
    for _ in range(_WARMUP_REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class Autotuner:
    """Times candidates per matrix and remembers the winners on disk.

    Args:
        cache_path: JSON tuning-cache location; ``None`` keeps decisions
            in memory only.
        candidates: Executor set to rank (defaults to
            :func:`default_candidates`).
        measure: ``measure(thunk) -> seconds``; injectable so tests can
            force deterministic rankings without real timing.
        seed: Seed for the deterministic warmup operand.
    """

    def __init__(
        self,
        cache_path: "str | Path | None" = None,
        *,
        candidates: "tuple[Candidate, ...] | None" = None,
        measure: "Callable[[Callable[[], object]], float] | None" = None,
        seed: int = 0,
    ) -> None:
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self.candidates = (
            candidates if candidates is not None else default_candidates()
        )
        if not self.candidates:
            raise ValueError("need at least one candidate")
        self._measure = measure if measure is not None else _default_measure
        self.seed = seed
        self._decisions: "dict[tuple[str, int], TuningDecision]" = {}
        self._by_name = {c.name: c for c in self.candidates}
        self.load_errors = 0
        if self.cache_path is not None and self.cache_path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        # A crash mid-write (or a torn copy) leaves invalid JSON or
        # truncated entries on disk.  That must not keep the service
        # from starting: fall back to empty decisions (re-tuning is
        # merely slow) and count the event.  A *well-formed* file with a
        # different schema is a configuration error and still raises.
        try:
            payload = json.loads(self.cache_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            self._note_load_error(f"unreadable tuning cache: {exc}")
            return
        if not isinstance(payload, dict):
            self._note_load_error(
                f"tuning cache is not an object: {type(payload).__name__}"
            )
            return
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unexpected tuning-cache schema {payload.get('schema')!r} "
                f"in {self.cache_path} (expected {SCHEMA})"
            )
        loaded: "dict[tuple[str, int], TuningDecision]" = {}
        try:
            for entry in payload.get("entries", []):
                decision = TuningDecision.from_dict(entry)
                loaded[(decision.fingerprint, decision.width)] = decision
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            self._note_load_error(f"corrupt tuning-cache entry: {exc}")
            return
        self._decisions.update(loaded)
        obs.counter("engine.autotune.cache_loaded").inc(len(self._decisions))

    def _note_load_error(self, detail: str) -> None:
        self.load_errors += 1
        self._decisions = {}
        obs.counter("engine.autotune.cache_load_errors").inc()
        obs.instant(
            "engine.autotune.cache_load_error",
            category="warning",
            path=str(self.cache_path),
            detail=detail,
        )

    def _save(self) -> None:
        if self.cache_path is None:
            return
        payload = {
            "schema": SCHEMA,
            "entries": [
                d.to_dict()
                for _, d in sorted(self._decisions.items())
            ],
        }
        atomic_write_text(self.cache_path, json.dumps(payload, indent=2))

    # ------------------------------------------------------------------
    # Tuning
    # ------------------------------------------------------------------
    def tune(self, matrix: CSRMatrix, width: int) -> TuningDecision:
        """Measure every candidate for ``(matrix, width)`` and pick one.

        Cached decisions (in memory or from the JSON cache) are returned
        without re-measuring; ties break toward the earlier candidate in
        the fixed candidate order, which keeps the outcome deterministic
        when an injected ``measure`` reports equal times.
        """
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        key = (matrix.fingerprint(), width)
        cached = self._decisions.get(key)
        if cached is not None:
            obs.counter("engine.autotune.hits").inc()
            return cached
        obs.counter("engine.autotune.misses").inc()
        rng = np.random.default_rng(self.seed)
        warmup = rng.standard_normal((matrix.n_cols, width))
        timings: "dict[str, float]" = {}
        with obs.span("engine.autotune.tune", width=width, nnz=matrix.nnz):
            for candidate in self.candidates:
                timings[candidate.name] = float(
                    self._measure(lambda c=candidate: c.run(matrix, warmup))
                )
        winner = min(self.candidates, key=lambda c: timings[c.name]).name
        decision = TuningDecision(
            fingerprint=key[0], width=width, winner=winner, timings=timings
        )
        self._decisions[key] = decision
        self._save()
        obs.counter("engine.autotune.decisions", winner=winner).inc()
        return decision

    def best_executor(
        self, matrix: CSRMatrix, width: int
    ) -> Callable[[CSRMatrix, np.ndarray], np.ndarray]:
        """The winning candidate's ``run`` for ``(matrix, width)``.

        Tunes on first sight of the pair; afterwards the decision comes
        from the cache.  The returned callable has a ``name`` attribute
        (the winning candidate's) for logging.
        """
        decision = self.tune(matrix, width)
        candidate = self._by_name.get(decision.winner)
        if candidate is None:
            # Cache written by a different candidate set (e.g. an older
            # build); fall back to re-tuning with the current set.
            del self._decisions[(decision.fingerprint, decision.width)]
            decision = self.tune(matrix, width)
            candidate = self._by_name[decision.winner]
        run = candidate.run
        if not hasattr(run, "name"):
            try:
                run.name = candidate.name  # type: ignore[attr-defined]
            except AttributeError:  # pragma: no cover - builtin callables
                pass
        return run

    def forget_fingerprint(self, fingerprint: str) -> int:
        """Drop every decision tuned for ``fingerprint``; returns the count.

        The epoch-retirement hook: a retired graph epoch's measurements
        describe a structure no request will present again, so they are
        dropped precisely (decisions for live epochs and other matrices
        stay) and the persisted cache is rewritten.
        """
        stale = [key for key in self._decisions if key[0] == fingerprint]
        for key in stale:
            del self._decisions[key]
        if stale:
            self._save()
            obs.counter("engine.autotune.invalidations").inc(len(stale))
        return len(stale)

    @property
    def decisions(self) -> "tuple[TuningDecision, ...]":
        """All decisions currently held (memory + loaded cache)."""
        return tuple(self._decisions.values())
