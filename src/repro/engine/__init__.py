"""repro.engine — the tuned fast-path execution engine.

The engine is the CPU analogue of the paper's tuned GPU kernel: a
zero-Python-loop SpMM (:mod:`~repro.engine.kernels`) over preallocated
workspaces (:mod:`~repro.engine.arena`), a measured per-matrix executor
autotuner (:mod:`~repro.engine.autotune`), a fused multi-layer GCN path
(:mod:`~repro.engine.pipeline`), and the kernel throughput bench that
seeds the perf trajectory (:mod:`~repro.engine.bench`,
``python -m repro kernel-bench``).

See ``docs/ARCHITECTURE.md`` for where the engine sits in the system and
``docs/PERFORMANCE.md`` for tuning guidance.
"""

from repro.engine.arena import Arena
from repro.engine.autotune import (
    Autotuner,
    Candidate,
    TuningDecision,
    default_candidates,
)
from repro.engine.kernels import (
    EnginePlan,
    EnginePlanCache,
    compile_engine_plan,
    engine_spmm,
    execute_engine,
    get_arena,
    get_engine_plan_cache,
)
from repro.engine.pipeline import (
    AGGREGATE_FIRST,
    TRANSFORM_FIRST,
    FusedGCNPipeline,
    LayerPlan,
    choose_ordering,
)

__all__ = [
    "AGGREGATE_FIRST",
    "TRANSFORM_FIRST",
    "Arena",
    "Autotuner",
    "Candidate",
    "EnginePlan",
    "EnginePlanCache",
    "FusedGCNPipeline",
    "LayerPlan",
    "TuningDecision",
    "choose_ordering",
    "compile_engine_plan",
    "default_candidates",
    "engine_spmm",
    "execute_engine",
    "get_arena",
    "get_engine_plan_cache",
]
