"""``python -m repro kernel-bench`` — the kernel throughput trajectory.

Measures every executor tier — the serial reference, the vectorized
NumPy path, the thread pool, and both engine strategies — on synthetic
power-law datasets of increasing size, and records rows/s and
GFLOP-equivalents per ``(dataset, executor)`` pair in
``BENCH_kernel.json`` (the standard ``repro.obs.run/1`` record, written
to ``benchmarks/results/`` or ``$REPRO_BENCH_DIR``).

This file seeds the perf trajectory the ROADMAP re-anchor reads: each
later optimization PR reruns the bench and compares against the recorded
baseline.  Every executor's output is checked against the
:func:`~repro.resilience.oracles.verified_spmm` oracle before its timing
counts — a fast wrong kernel is recorded as ``check: fail`` and sinks
the run's status.

Usage::

    python -m repro kernel-bench              # full three-dataset sweep
    python -m repro kernel-bench --quick      # CI smoke: small set only
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.core.parallel import execute_parallel
from repro.core.schedule import MergePathSchedule, schedule_for_cost
from repro.core.spmm import execute_reference, execute_vectorized
from repro.core.thread_mapping import default_merge_path_cost
from repro.engine.kernels import compile_engine_plan
from repro.formats import CSRMatrix
from repro.graphs.generators import power_law_graph
from repro.obs.export import run_record, write_run_record
from repro.resilience.oracles import verified_spmm

# Synthetic power-law datasets: (name, n_nodes, nnz, max_degree).  The
# largest is the acceptance target for the engine's >= 3x-over-reference
# criterion; --quick keeps only the first for CI smoke runs.
DATASETS = (
    ("pl-small", 2_000, 16_000, 400),
    ("pl-medium", 20_000, 200_000, 2_000),
    ("pl-large", 100_000, 1_200_000, 5_000),
)

# Oracle tolerances: the executors reduce in different orders, so the
# comparison is against an independent recomputation, not bit equality.
_RTOL = 1e-9
_ATOL = 1e-9


@dataclass
class BenchCase:
    """One dataset prepared for measurement."""

    name: str
    matrix: CSRMatrix
    dense: np.ndarray = field(repr=False)
    schedule: MergePathSchedule = field(repr=False)
    expected: np.ndarray = field(repr=False)


def _build_cases(
    datasets, dim: int, seed: int
) -> "list[BenchCase]":
    cases = []
    rng = np.random.default_rng(seed)
    cost = default_merge_path_cost(dim)
    for name, n_nodes, nnz, max_degree in datasets:
        matrix = power_law_graph(n_nodes, nnz, max_degree, seed=seed)
        dense = rng.standard_normal((matrix.n_cols, dim))
        schedule = schedule_for_cost(matrix, cost)
        expected = verified_spmm(
            matrix, dense, rtol=_RTOL, atol=_ATOL
        ).output
        cases.append(BenchCase(name, matrix, dense, schedule, expected))
    return cases


def _executors(
    case: BenchCase,
) -> "list[tuple[str, Callable[[], np.ndarray]]]":
    """Named thunks computing ``case.matrix @ case.dense``."""
    plan = compile_engine_plan(case.matrix, schedule=case.schedule)
    return [
        ("reference", lambda: execute_reference(case.schedule, case.dense)[0]),
        (
            "vectorized",
            lambda: execute_vectorized(case.schedule, case.dense)[0],
        ),
        (
            "parallel[4]",
            lambda: execute_parallel(case.schedule, case.dense, 4).output,
        ),
        (
            "engine[reduceat]",
            lambda: plan.execute(case.dense, strategy="reduceat"),
        ),
        ("engine", lambda: plan.execute(case.dense)),
    ]


def _measure(thunk: Callable[[], np.ndarray], repeats: int) -> "tuple[float, np.ndarray]":
    """Best-of-``repeats`` seconds and the (last) output."""
    thunk()  # warmup: compile caches, size arenas, fault page-ins
    best = float("inf")
    output = None
    for _ in range(repeats):
        start = time.perf_counter()
        output = thunk()
        best = min(best, time.perf_counter() - start)
    return best, output


@obs.instrumented
def run_kernel_bench(
    *,
    quick: bool = False,
    dim: int = 32,
    repeats: int = 3,
    seed: int = 2023,
    bench_dir: "str | None" = None,
    out=sys.stdout,
) -> int:
    """Measure all executors on the synthetic sweep and record the result.

    Returns the process exit code: 0 when every executor's output passes
    the oracle check, 1 otherwise.
    """
    datasets = DATASETS[:1] if quick else DATASETS
    repeats = max(1, 1 if quick else repeats)
    rows: "list[dict]" = []
    failures = 0
    with obs.profiled() as session:
        for case in _build_cases(datasets, dim, seed):
            flops = 2.0 * case.matrix.nnz * dim
            reference_seconds = None
            for name, thunk in _executors(case):
                seconds, output = _measure(thunk, repeats)
                ok = bool(
                    np.allclose(
                        output, case.expected, rtol=_RTOL, atol=_ATOL
                    )
                )
                failures += not ok
                if name == "reference":
                    reference_seconds = seconds
                row = {
                    "dataset": case.name,
                    "executor": name,
                    "n_rows": case.matrix.n_rows,
                    "nnz": case.matrix.nnz,
                    "dim": dim,
                    "seconds": seconds,
                    "rows_per_s": case.matrix.n_rows / seconds,
                    "gflops": flops / seconds / 1e9,
                    "speedup_vs_reference": (
                        reference_seconds / seconds
                        if reference_seconds
                        else 1.0
                    ),
                    "max_abs_err": float(
                        np.max(np.abs(output - case.expected))
                        if output.size
                        else 0.0
                    ),
                    "check": "pass" if ok else "fail",
                }
                rows.append(row)
                obs.histogram("engine.bench.seconds", executor=name).observe(
                    seconds
                )
                print(
                    f"{case.name:10s} {name:17s} {seconds * 1e3:9.2f} ms  "
                    f"{row['rows_per_s']:12.0f} rows/s  "
                    f"{row['gflops']:7.2f} GFLOP/s  "
                    f"{row['speedup_vs_reference']:6.2f}x  {row['check']}",
                    file=out,
                )

    largest = datasets[-1][0]
    engine_speedup = next(
        r["speedup_vs_reference"]
        for r in rows
        if r["dataset"] == largest and r["executor"] == "engine"
    )
    status = "ok" if failures == 0 else "check-failed"
    record = run_record(
        "kernel",
        metrics=session.snapshot(),
        wall_seconds=session.wall_seconds,
        status=status,
        extra={
            "quick": quick,
            "dim": dim,
            "repeats": repeats,
            "seed": seed,
            "results": rows,
            "largest_dataset": largest,
            "engine_speedup_vs_reference": engine_speedup,
        },
    )
    path = write_run_record(record, bench_dir)
    print(
        f"\nengine speedup on {largest}: {engine_speedup:.2f}x over "
        f"reference ({failures} check failure(s))",
        file=out,
    )
    print(f"recorded {path}", file=out)
    return 0 if failures == 0 else 1


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro kernel-bench",
        description="Measure SpMM executor throughput and record "
        "BENCH_kernel.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smallest dataset only, one repeat (CI smoke)",
    )
    parser.add_argument("--dim", type=int, default=32, help="dense width")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="run-record directory (default: benchmarks/results or "
        "$REPRO_BENCH_DIR)",
    )
    args = parser.parse_args(argv)
    return run_kernel_bench(
        quick=args.quick,
        dim=args.dim,
        repeats=args.repeats,
        seed=args.seed,
        bench_dir=args.bench_dir,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
