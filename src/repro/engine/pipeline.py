"""Fused multi-layer GCN execution over a single engine plan.

A GCN forward pass runs one SpMM per layer against the *same* adjacency
matrix.  The naive driver re-derives the merge-path schedule (or at best
re-reads a schedule cache) per layer and leaves the algebraic ordering
fixed at ``A @ (X @ W)``.  This module fuses the pass:

* **One schedule, one plan, per graph.**  The merge-path decomposition
  and the engine's flattened index arrays are compiled once and reused
  by every layer of every inference on that graph.
* **FLOP-counted ordering.**  ``(A·X)·W`` and ``A·(X·W)`` are
  algebraically equal but cost differently: the SpMM runs at width
  ``f_in`` in the first and ``f_out`` in the second, while the dense
  multiply costs ``2·n·f_in·f_out`` either way.  :func:`choose_ordering`
  counts both and picks the cheaper — transform-first exactly when the
  layer narrows (``f_out < f_in``), which is the common shape for the
  final classification layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.schedule import MergePathSchedule
from repro.core.thread_mapping import default_merge_path_cost
from repro.engine.kernels import EnginePlan, get_engine_plan_cache
from repro.formats import CSRMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (gnn uses engine)
    from repro.gnn.models import GCN

TRANSFORM_FIRST = "transform-first"  # A @ (X W): SpMM at width f_out
AGGREGATE_FIRST = "aggregate-first"  # (A X) @ W: SpMM at width f_in


@dataclass(frozen=True)
class LayerPlan:
    """The chosen ordering for one GCN layer on one graph.

    Attributes:
        ordering: :data:`TRANSFORM_FIRST` or :data:`AGGREGATE_FIRST`.
        spmm_width: Dense width the layer's SpMM runs at.
        flops_transform_first: Modeled FLOPs of ``A @ (X W)``.
        flops_aggregate_first: Modeled FLOPs of ``(A X) @ W``.
    """

    ordering: str
    spmm_width: int
    flops_transform_first: float
    flops_aggregate_first: float

    @property
    def flops(self) -> float:
        """FLOPs of the chosen ordering."""
        if self.ordering == TRANSFORM_FIRST:
            return self.flops_transform_first
        return self.flops_aggregate_first


def choose_ordering(
    n_rows: int, nnz: int, f_in: int, f_out: int
) -> LayerPlan:
    """FLOP-count the two orderings of ``act(A X W)`` and pick the cheaper.

    Both orderings share the ``2·n·f_in·f_out`` dense multiply; they
    differ only in the SpMM width (``2·nnz·width`` FLOPs), so the choice
    reduces to ``min(f_in, f_out)`` — but the full counts are kept for
    reporting.  Ties go to transform-first, the ordering the paper's
    accelerators use.
    """
    dense_flops = 2.0 * n_rows * f_in * f_out
    transform_first = dense_flops + 2.0 * nnz * f_out
    aggregate_first = dense_flops + 2.0 * nnz * f_in
    if transform_first <= aggregate_first:
        ordering, width = TRANSFORM_FIRST, f_out
    else:
        ordering, width = AGGREGATE_FIRST, f_in
    return LayerPlan(
        ordering=ordering,
        spmm_width=width,
        flops_transform_first=transform_first,
        flops_aggregate_first=aggregate_first,
    )


class FusedGCNPipeline:
    """A GCN model compiled against one graph for repeated inference.

    Construction resolves everything that depends only on structure: the
    merge-path schedule, the engine plan, and each layer's ordering.
    :meth:`forward` then runs layers back to back through the shared
    plan — no per-layer scheduling, no per-layer plan compilation.

    Args:
        model: The GCN to execute.
        adjacency: (Normalized) adjacency matrix the model runs on.
        cost: Merge-path cost; defaults to the tuned cost for the widest
            SpMM any layer performs (one schedule serves them all).
        schedule: Reuse an existing schedule for ``adjacency`` instead
            of building one — the inference driver hands in its
            :class:`~repro.core.scheduler.ScheduleCache` entry so
            schedule accounting stays in one place.
    """

    def __init__(
        self,
        model: GCN,
        adjacency: CSRMatrix,
        *,
        cost: "int | None" = None,
        schedule: "MergePathSchedule | None" = None,
    ) -> None:
        self.model = model
        self.adjacency = adjacency
        self.layer_plans = tuple(
            choose_ordering(
                adjacency.n_rows,
                adjacency.nnz,
                layer.in_features,
                layer.out_features,
            )
            for layer in model.layers
        )
        if cost is None:
            widest = max(plan.spmm_width for plan in self.layer_plans)
            cost = (
                schedule.items_per_thread
                if schedule is not None
                else default_merge_path_cost(widest)
            )
        self.cost = cost
        self.plan: EnginePlan = get_engine_plan_cache().get(
            adjacency, cost, schedule=schedule
        )
        obs.counter("engine.pipeline.compiled").inc()

    @property
    def total_flops(self) -> float:
        """Modeled FLOPs of one forward pass under the chosen orderings."""
        return sum(plan.flops for plan in self.layer_plans)

    def forward(self, features: np.ndarray) -> np.ndarray:
        """Run the full forward pass through the shared engine plan."""
        hidden = np.asarray(features, dtype=np.float64)
        with obs.span(
            "engine.pipeline.forward", layers=self.model.n_layers
        ):
            for layer, layer_plan in zip(self.model.layers, self.layer_plans):
                hidden = self.forward_layer(hidden, layer, layer_plan)
        obs.counter("engine.pipeline.inferences").inc()
        return hidden

    def forward_layer(self, hidden, layer, layer_plan) -> np.ndarray:
        """One layer under its chosen ordering, through the engine plan."""
        if layer_plan.ordering == TRANSFORM_FIRST:
            aggregated = self.plan.execute(hidden @ layer.weight)
        else:
            aggregated = self.plan.execute(hidden) @ layer.weight
        return layer._activation(aggregated)  # noqa: SLF001 - same package
