"""Preallocated workspace buffers for the engine fast path.

The fast path's temporaries — the gathered dense rows, the per-segment
partial sums, the output block — are the same shapes call after call for
a given ``(matrix, width)`` workload.  Allocating them fresh per call
costs both the allocation itself and the page faults of first touch;
steady-state inference should allocate nothing.

:class:`Arena` owns a small set of named float64 buffers.  ``take(name,
shape)`` returns a zeroed view of the right shape, growing the backing
allocation geometrically when the request outgrows it (so a warmup call
at the largest width sizes the arena once and for all).  Buffers are
*views* into the backing storage: callers must finish with a buffer
before taking it again under the same name, which the single-threaded
executor discipline guarantees — an :class:`Arena` is deliberately not
thread-safe, and each engine plan owns its own.

The arena publishes ``engine.arena.*`` counters so ``--profile`` runs
show exactly how much steady state allocates (the answer should be 0
after warmup).
"""

from __future__ import annotations

import numpy as np

from repro import obs

# Growth factor for backing buffers; geometric growth keeps the total
# reallocation work linear in the peak size.
_GROWTH = 1.5


class Arena:
    """A named pool of reusable float64 workspace buffers."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self.allocations = 0
        self.reuses = 0

    @property
    def nbytes(self) -> int:
        """Total backing bytes currently pinned by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def take(
        self, name: str, shape: tuple[int, ...], *, zero: bool = True
    ) -> np.ndarray:
        """A ``float64`` array of ``shape``, reusing backing storage.

        The returned array is a reshaped view of a flat backing buffer
        that persists across calls; it is valid until the next ``take``
        of the same ``name``.  Pass ``zero=False`` when every element
        will be overwritten anyway (skips the fill).
        """
        size = 1
        for extent in shape:
            size *= int(extent)
        backing = self._buffers.get(name)
        if backing is None or backing.size < size:
            capacity = max(size, int(_GROWTH * backing.size) if backing is not None else size)
            backing = np.empty(capacity, dtype=np.float64)
            self._buffers[name] = backing
            self.allocations += 1
            if obs.enabled():
                obs.counter("engine.arena.allocations").inc()
                obs.gauge("engine.arena.bytes").set(float(self.nbytes))
        else:
            self.reuses += 1
            if obs.enabled():
                obs.counter("engine.arena.reuses").inc()
        view = backing[:size].reshape(shape)
        if zero:
            view.fill(0.0)
        return view

    def release(self) -> None:
        """Drop every backing buffer (the arena stays usable)."""
        self._buffers.clear()
        if obs.enabled():
            obs.gauge("engine.arena.bytes").set(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Arena(buffers={len(self._buffers)}, nbytes={self.nbytes}, "
            f"allocations={self.allocations}, reuses={self.reuses})"
        )
