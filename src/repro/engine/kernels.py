"""The engine fast path: zero-Python-loop segmented-reduction SpMM.

:func:`repro.core.spmm.execute_vectorized` already avoids per-thread
loops, but it pays three per-call costs the serving steady state does not
need: it re-flattens the schedule's write segments, it scatter-adds every
non-zero with ``np.add.at`` (an unbuffered, cache-hostile ufunc loop),
and it allocates every temporary fresh.  GE-SpMM's lesson (Huang et al.,
SC'20) is that coalesced access plus dimension blocking is what makes
SpMM fast; this module applies both on the CPU.

An :class:`EnginePlan` flattens a schedule's write segments into index
arrays **once** and then executes with a segmented reduction, two
interchangeable strategies deep:

* ``"grouped"`` (default) — segments are bucketed by length at compile
  time (merge-path bounds every segment at the cost, so there are at
  most ~50 buckets), and each bucket reduces with one batched BLAS
  contraction ``(n, 1, L) @ (n, L, dim)``.  Every hot loop is C; the
  only Python iteration is over the handful of buckets.
* ``"reduceat"`` — the textbook ``np.add.reduceat`` over the non-empty
  segment starts (which tile ``[0, nnz)`` in order).  Simpler, but
  reduceat's inner loop is scalar; it is kept as the trajectory baseline
  ``python -m repro kernel-bench`` measures the grouped strategy against.

All temporaries come from a per-thread
:class:`~repro.engine.arena.Arena`, so after a warmup call the steady
state allocates nothing but the output — and not even that when the
caller passes ``out=``.

Numerical note: the strategies reduce each segment in different orders
(BLAS dot / pairwise vs. strictly sequential), so engine outputs can
differ from the core executors' in the last few ulps.  Cross-executor
checks therefore use the independent oracle tolerance, not bit equality.

:class:`EnginePlanCache` memoizes plans by content fingerprint the way
the serving :class:`~repro.serve.plancache.PlanCache` memoizes
:class:`~repro.serve.plancache.CompiledPlan` objects; :func:`engine_spmm`
is the one-call cached entry point.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.obs import rtrace
from repro.core.schedule import MergePathSchedule, schedule_for_cost
from repro.core.spmm import (
    WriteAccounting,
    WriteSegments,
    _inject_segment_faults,
    write_segments,
)
from repro.core.thread_mapping import MIN_THREADS, default_merge_path_cost
from repro.engine.arena import Arena
from repro.formats import CSRMatrix
from repro.resilience import faults

STRATEGIES = ("grouped", "reduceat")

# Feature-dimension block: bounds the per-bucket gather buffer and keeps
# the reduction working set cache-resident for wide feature matrices.
_DEFAULT_BLOCK = 32

# Gather-tile size in float64 elements (256 KiB).  Each bucket is
# processed in tiles this large so the gathered rows are still
# cache-resident when the contraction consumes them; untiled, a large
# bucket's gather buffer round-trips through DRAM twice (measured ~1.9x
# slower end to end on a 1.2M-nnz power-law graph).
_TILE_ELEMS = 32_768

_thread_state = threading.local()


def get_arena() -> Arena:
    """The calling thread's workspace arena (created on first use).

    Arenas are deliberately per-thread: buffers are reused across calls
    without locking, and concurrent serve workers never alias each
    other's workspaces.
    """
    arena = getattr(_thread_state, "arena", None)
    if arena is None:
        arena = _thread_state.arena = Arena()
    return arena


@dataclass(frozen=True)
class SegmentGroup:
    """All non-empty write segments of one length, batched for BLAS.

    Attributes:
        length: Non-zeros per segment in this bucket.
        value_idx: Flat gather indices into ``matrix.values``
            (``n * length``, row-major by segment).
        column_idx: Flat gather indices into the dense operand's rows
            (``cp[value_idx]``, precomputed).
        regular_local: Bucket-local indices of direct-store segments.
        regular_rows: Their output rows.
        atomic_local: Bucket-local indices of atomically-added segments.
        atomic_rows: Their output rows.
    """

    length: int
    value_idx: np.ndarray = field(repr=False)
    column_idx: np.ndarray = field(repr=False)
    regular_local: np.ndarray = field(repr=False)
    regular_rows: np.ndarray = field(repr=False)
    atomic_local: np.ndarray = field(repr=False)
    atomic_rows: np.ndarray = field(repr=False)

    @property
    def n_segments(self) -> int:
        return len(self.value_idx) // self.length if self.length else 0


@dataclass(frozen=True)
class EnginePlan:
    """A merge-path schedule compiled to flat segmented-reduction arrays.

    Attributes:
        schedule: The underlying merge-path decomposition.
        segments: All write segments (kept for fault injection and
            accounting; includes zero-length empty-row segments).
        starts: Start offsets of the *non-empty* segments — a monotone
            tiling of ``[0, nnz)``, the ``reduceat`` boundary array.
        regular_sel: Indices (into the non-empty set) of direct-store
            segments; ``atomic_sel`` likewise for atomic segments.
        regular_rows / atomic_rows: Their output rows.
        groups: Length-bucketed segments for the ``"grouped"`` strategy.
        accounting: The write accounting every execution reports
            (identical to the core executors' by construction).
        block: Feature-dimension block width.
        strategy: Default execution strategy.
    """

    schedule: MergePathSchedule
    segments: WriteSegments = field(repr=False)
    starts: np.ndarray = field(repr=False)
    regular_sel: np.ndarray = field(repr=False)
    atomic_sel: np.ndarray = field(repr=False)
    regular_rows: np.ndarray = field(repr=False)
    atomic_rows: np.ndarray = field(repr=False)
    groups: "tuple[SegmentGroup, ...]" = field(repr=False)
    accounting: WriteAccounting = field(repr=False)
    block: int = _DEFAULT_BLOCK
    strategy: str = "grouped"

    @property
    def matrix(self) -> CSRMatrix:
        return self.schedule.matrix

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the plan's index arrays."""
        total = sum(
            a.nbytes
            for a in (
                self.starts,
                self.regular_sel,
                self.atomic_sel,
                self.regular_rows,
                self.atomic_rows,
            )
        )
        total += sum(
            v.nbytes
            for v in vars(self.segments).values()
            if isinstance(v, np.ndarray)
        )
        for group in self.groups:
            total += sum(
                v.nbytes
                for v in vars(group).values()
                if isinstance(v, np.ndarray)
            )
        return total

    def rebind(self, matrix: CSRMatrix) -> "EnginePlan":
        """This plan bound to ``matrix``'s values (structure must match).

        The plan's index arrays are pure structure, so rebinding shares
        all of them and only swaps the schedule's matrix binding.
        """
        schedule = self.schedule.rebind(matrix)
        if schedule is self.schedule:
            return self
        return replace(self, schedule=schedule)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        dense: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        arena: "Arena | None" = None,
        strategy: "str | None" = None,
    ) -> np.ndarray:
        """Compute ``matrix @ dense`` through the compiled fast path.

        Args:
            dense: Dense operand, shape ``(n_cols, dim)``.
            out: Optional preallocated ``(n_rows, dim)`` float64 C-order
                output; it is zeroed and filled in place (pass an arena
                buffer to make the call allocation-free).
            arena: Workspace override; defaults to the calling thread's
                arena.
            strategy: ``"grouped"`` or ``"reduceat"``; defaults to the
                plan's compiled strategy.

        Returns:
            The product (``out`` when provided).
        """
        matrix = self.matrix
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != matrix.n_cols:
            raise ValueError(
                f"dimension mismatch: {matrix.shape} @ {dense.shape}"
            )
        strategy = strategy or self.strategy
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; known: {STRATEGIES}"
            )
        dim = dense.shape[1]
        if out is None:
            out = np.zeros((matrix.n_rows, dim), dtype=np.float64)
        else:
            if out.shape != (matrix.n_rows, dim) or out.dtype != np.float64:
                raise ValueError(
                    f"out must be float64 {(matrix.n_rows, dim)}, got "
                    f"{out.dtype} {out.shape}"
                )
            out.fill(0.0)
        if obs.enabled():
            obs.counter("engine.execute.calls", strategy=strategy).inc()
            obs.counter("engine.execute.nnz").inc(matrix.nnz)

        plan = faults.active_plan()
        if plan is not None:
            # Fault-injection path: materialize every segment's sum so
            # the injection hooks see the same surface the core executors
            # expose.  Slow, but only ever taken under chaos testing.
            self._execute_with_faults(plan, dense, out)
            return out
        if matrix.nnz == 0 or dim == 0:
            return out
        if arena is None:
            arena = get_arena()
        if strategy == "grouped":
            self._execute_grouped(dense, out, arena)
        else:
            self._execute_reduceat(dense, out, arena)
        return out

    def _execute_grouped(
        self, dense: np.ndarray, out: np.ndarray, arena: Arena
    ) -> None:
        """Batched-BLAS segmented reduction, cache-tiled per bucket."""
        values = self.matrix.values
        dim = dense.shape[1]
        block = min(self.block, dim) or dim
        for lo in range(0, dim, block):
            hi = min(lo + block, dim)
            width = hi - lo
            whole = lo == 0 and hi == dim
            source = dense if whole else dense[:, lo:hi]
            target = out if whole else out[:, lo:hi]
            for group in self.groups:
                n, length = group.n_segments, group.length
                sums = arena.take("sums", (n, 1, width), zero=False)
                tile = max(1, _TILE_ELEMS // (length * width))
                for t0 in range(0, n, tile):
                    t1 = min(t0 + tile, n)
                    rows = t1 - t0
                    vals = arena.take("vals", (rows, 1, length), zero=False)
                    np.take(
                        values,
                        group.value_idx[t0 * length : t1 * length],
                        out=vals.reshape(-1),
                    )
                    gathered = arena.take(
                        "gather", (rows, length, width), zero=False
                    )
                    np.take(
                        source,
                        group.column_idx[t0 * length : t1 * length],
                        axis=0,
                        out=gathered.reshape(-1, width),
                    )
                    np.matmul(vals, gathered, out=sums[t0:t1])
                flat = sums.reshape(n, width)
                target[group.regular_rows] = flat[group.regular_local]
                np.add.at(target, group.atomic_rows, flat[group.atomic_local])

    def _execute_reduceat(
        self, dense: np.ndarray, out: np.ndarray, arena: Arena
    ) -> None:
        """Plain ``np.add.reduceat`` over the non-empty segment starts."""
        matrix = self.matrix
        values = matrix.values[:, None]
        cp = matrix.column_indices
        nnz = matrix.nnz
        n_segments = len(self.starts)
        dim = dense.shape[1]
        block = min(self.block, dim) or dim
        for lo in range(0, dim, block):
            hi = min(lo + block, dim)
            width = hi - lo
            whole = lo == 0 and hi == dim
            source = dense if whole else dense[:, lo:hi]
            target = out if whole else out[:, lo:hi]
            gathered = arena.take("gather", (nnz, width), zero=False)
            np.take(source, cp, axis=0, out=gathered)
            gathered *= values
            sums = arena.take("sums", (n_segments, width), zero=False)
            np.add.reduceat(gathered, self.starts, axis=0, out=sums)
            target[self.regular_rows] = sums[self.regular_sel]
            np.add.at(target, self.atomic_rows, sums[self.atomic_sel])

    def _execute_with_faults(
        self, plan: "faults.FaultPlan", dense: np.ndarray, out: np.ndarray
    ) -> None:
        """Semantics of the vectorized executor under an active fault plan."""
        segments = self.segments
        dim = dense.shape[1]
        seg_sums = np.zeros((segments.n_segments, dim), dtype=np.float64)
        seg_ids = np.repeat(np.arange(segments.n_segments), segments.lengths)
        partial = (
            self.matrix.values[:, None] * dense[self.matrix.column_indices]
        )
        np.add.at(seg_sums, seg_ids, partial)
        dropped = _inject_segment_faults(plan, seg_sums, segments)
        atomic_applied = segments.atomic & ~dropped
        regular = ~segments.atomic
        out[segments.rows[regular]] = seg_sums[regular]
        np.add.at(out, segments.rows[atomic_applied], seg_sums[atomic_applied])


def _build_groups(
    starts: np.ndarray,
    lengths: np.ndarray,
    rows: np.ndarray,
    atomic: np.ndarray,
    column_indices: np.ndarray,
) -> "tuple[SegmentGroup, ...]":
    """Bucket non-empty segments by length, precomputing gather indices."""
    groups = []
    for length in np.unique(lengths):
        sel = np.flatnonzero(lengths == length)
        value_idx = (
            starts[sel][:, None] + np.arange(length, dtype=np.int64)
        ).reshape(-1)
        group_atomic = atomic[sel]
        regular_local = np.flatnonzero(~group_atomic)
        atomic_local = np.flatnonzero(group_atomic)
        groups.append(
            SegmentGroup(
                length=int(length),
                value_idx=value_idx,
                column_idx=column_indices[value_idx],
                regular_local=regular_local,
                regular_rows=rows[sel][regular_local],
                atomic_local=atomic_local,
                atomic_rows=rows[sel][atomic_local],
            )
        )
    return tuple(groups)


def compile_engine_plan(
    matrix: CSRMatrix,
    cost: "int | None" = None,
    *,
    dim: "int | None" = None,
    min_threads: int = MIN_THREADS,
    schedule: "MergePathSchedule | None" = None,
    block: int = _DEFAULT_BLOCK,
    strategy: str = "grouped",
) -> EnginePlan:
    """Compile the engine's flat execution arrays for ``matrix``.

    Args:
        matrix: Sparse input.
        cost: Merge-path cost; defaults to the paper's tuned value for
            ``dim`` when omitted.
        dim: Dense width used to derive the default cost.
        min_threads: Small-graph thread floor (Section III-C).
        schedule: Reuse an existing schedule instead of building one
            (the fused GNN path hands in its cached schedule so schedule
            accounting stays with the :class:`ScheduleCache`).
        block: Feature-dimension block width.
        strategy: Default execution strategy (``"grouped"`` or
            ``"reduceat"``).
    """
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; known: {STRATEGIES}")
    if schedule is None:
        if cost is None:
            if dim is None:
                raise ValueError("pass cost=, dim=, or schedule=")
            cost = default_merge_path_cost(dim)
        schedule = schedule_for_cost(matrix, cost, min_threads=min_threads)
    with obs.span("engine.compile", nnz=matrix.nnz):
        segments = write_segments(schedule)
        nonempty = np.flatnonzero(segments.lengths > 0)
        starts = segments.starts[nonempty]
        lengths = segments.lengths[nonempty]
        rows = segments.rows[nonempty]
        atomic = segments.atomic[nonempty]
        regular_sel = np.flatnonzero(~atomic)
        atomic_sel = np.flatnonzero(atomic)
        all_regular = ~segments.atomic
        accounting = WriteAccounting(
            atomic_writes=int(segments.atomic.sum()),
            regular_writes=int(all_regular.sum()),
            atomic_nnz=int(segments.lengths[segments.atomic].sum()),
            regular_nnz=int(segments.lengths[all_regular].sum()),
        )
        return EnginePlan(
            schedule=schedule,
            segments=segments,
            starts=starts,
            regular_sel=regular_sel,
            atomic_sel=atomic_sel,
            regular_rows=rows[regular_sel],
            atomic_rows=rows[atomic_sel],
            groups=_build_groups(
                starts, lengths, rows, atomic, matrix.column_indices
            ),
            accounting=accounting,
            block=block,
            strategy=strategy,
        )


@obs.instrumented
def execute_engine(
    schedule: MergePathSchedule,
    dense: np.ndarray,
    *,
    strategy: str = "grouped",
) -> "tuple[np.ndarray, WriteAccounting]":
    """One-shot engine execution of an existing schedule.

    Compiles an :class:`EnginePlan` (uncached — use
    :class:`EnginePlanCache` or :func:`engine_spmm` for repeated calls)
    and runs it, returning ``(output, accounting)`` like the
    :mod:`repro.core.spmm` executors.
    """
    plan = compile_engine_plan(
        schedule.matrix, schedule=schedule, strategy=strategy
    )
    output = plan.execute(dense)
    if obs.enabled():
        obs.counter("core.executor.atomic_writes").inc(
            plan.accounting.atomic_writes
        )
        obs.counter("core.executor.regular_writes").inc(
            plan.accounting.regular_writes
        )
    return output, plan.accounting


class EnginePlanCache:
    """Thread-safe LRU cache of :class:`EnginePlan` keyed by content.

    Mirrors :class:`repro.serve.plancache.PlanCache`: keys are
    ``(fingerprint, cost, min_threads)`` so two loads of the same graph
    share one plan, and hits from same-structure matrices with different
    values are rebound before they are returned.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._plans: "OrderedDict[tuple[str, int, int], EnginePlan]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(
        self,
        matrix: CSRMatrix,
        cost: "int | None" = None,
        *,
        dim: "int | None" = None,
        min_threads: int = MIN_THREADS,
        schedule: "MergePathSchedule | None" = None,
    ) -> EnginePlan:
        """The cached plan for ``matrix``, compiled on miss."""
        if cost is None:
            if schedule is not None:
                cost = schedule.items_per_thread
            elif dim is not None:
                cost = default_merge_path_cost(dim)
            else:
                raise ValueError("pass cost=, dim=, or schedule=")
        key = (matrix.fingerprint(), cost, min_threads)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                obs.counter("engine.plancache.hits").inc()
                rtrace.count("plan_cache_hit")
                return plan.rebind(matrix)
            self.misses += 1
            obs.counter("engine.plancache.misses").inc()
            rtrace.count("plan_compile")
            with rtrace.stage("plan_compile"):
                plan = compile_engine_plan(
                    matrix,
                    cost if schedule is None else None,
                    min_threads=min_threads,
                    schedule=schedule,
                )
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                obs.counter("engine.plancache.evictions").inc()
            return plan

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every plan keyed by ``fingerprint``; returns the count.

        Epoch-retirement hook: live-graph fingerprints are
        version-precise, so this removes exactly one retired epoch's
        plans and nothing else (no global flush).
        """
        with self._lock:
            stale = [key for key in self._plans if key[0] == fingerprint]
            for key in stale:
                del self._plans[key]
            if stale:
                obs.counter("engine.plancache.invalidations").inc(len(stale))
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


_default_cache = EnginePlanCache()


def get_engine_plan_cache() -> EnginePlanCache:
    """The process-wide engine plan cache."""
    return _default_cache


@obs.instrumented
def engine_spmm(
    matrix: CSRMatrix,
    dense: np.ndarray,
    *,
    cost: "int | None" = None,
    min_threads: int = MIN_THREADS,
    out: "np.ndarray | None" = None,
) -> np.ndarray:
    """Compute ``matrix @ dense`` through the cached engine fast path.

    The one-call serving entry point: plan compilation is amortized
    through :func:`get_engine_plan_cache`, workspaces through the calling
    thread's arena.
    """
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError(f"dense operand must be 2-D, got shape {dense.shape}")
    plan = _default_cache.get(
        matrix, cost, dim=dense.shape[1], min_threads=min_threads
    )
    return plan.execute(dense, out=out)
