"""Classification head utilities for GNN outputs.

Small, dependency-free pieces that turn final-layer embeddings into
predictions and scores — enough to run a node-classification demo on the
synthetic datasets without pulling in a deep-learning framework.
"""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer ``labels`` under ``logits``."""
    labels = np.asarray(labels)
    if labels.ndim != 1 or len(labels) != len(logits):
        raise ValueError(
            f"labels must be 1-D with one entry per row, got {labels.shape}"
        )
    probabilities = softmax(logits)
    picked = probabilities[np.arange(len(labels)), labels]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of integer ``labels`` under ``logits``."""
    labels = np.asarray(labels)
    if labels.ndim != 1 or len(labels) != len(logits):
        raise ValueError(
            f"labels must be 1-D with one entry per row, got {labels.shape}"
        )
    return float((np.argmax(logits, axis=1) == labels).mean())


def planted_community_labels(
    n_nodes: int, n_classes: int, seed: int = 0
) -> np.ndarray:
    """Seeded synthetic labels for classification demos."""
    if n_classes < 1:
        raise ValueError(f"n_classes must be >= 1, got {n_classes}")
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_classes, size=n_nodes)
