"""Graph neural network substrate.

Implements the models the paper's kernels serve: graph convolutional
networks (Kipf & Welling) plus GraphSAGE-mean and GIN aggregation
variants, all built on the ``A @ (X @ W)`` execution order the paper's
accelerators use, with a pluggable SpMM backend so any kernel from
:mod:`repro.core` or :mod:`repro.baselines` can drive the aggregation.
"""

from repro.gnn.layers import (
    BACKENDS,
    GCNLayer,
    relu,
    sigmoid,
    spmm_backend,
)
from repro.gnn.models import GCN, GIN, GraphSAGE
from repro.gnn.inference import InferenceEngine, InferenceReport
from repro.gnn.metrics import (
    accuracy,
    cross_entropy,
    planted_community_labels,
    softmax,
)
from repro.gnn.training import AdamOptimizer, TrainReport, TrainableGCN

__all__ = [
    "AdamOptimizer",
    "BACKENDS",
    "GCN",
    "GIN",
    "GCNLayer",
    "GraphSAGE",
    "InferenceEngine",
    "InferenceReport",
    "TrainReport",
    "TrainableGCN",
    "accuracy",
    "cross_entropy",
    "planted_community_labels",
    "relu",
    "sigmoid",
    "softmax",
    "spmm_backend",
]
