"""GNN inference driver with online/offline scheduling (Section III-D).

:class:`InferenceEngine` runs a 2-layer (or deeper) GCN on a graph while
accounting for MergePath-SpMM scheduling: in *offline* mode the schedule
is computed once per graph and reused across the model's layers and across
inferences; in *online* mode every inference recomputes it.  The engine
reports both wall-clock scheduling time and the modeled GPU scheduling
overhead — the quantity Figure 8 plots.

Execution goes through the fused :mod:`repro.engine` path by default:
one merge-path cost per graph (so one schedule serves every layer), one
compiled engine plan reused across layers and inferences, and each
layer's ``(A·X)·W`` vs ``A·(X·W)`` ordering chosen by FLOP count (see
:mod:`repro.engine.pipeline`).  Pass ``fused=False`` to fall back to the
per-layer vectorized executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import MergePathSchedule
from repro.core.scheduler import ScheduleCache, SchedulingMode
from repro.core.spmm import execute_vectorized
from repro.core.thread_mapping import default_merge_path_cost
from repro.engine.kernels import get_engine_plan_cache
from repro.obs import rtrace
from repro.engine.pipeline import TRANSFORM_FIRST, choose_ordering
from repro.gpu.device import GPUDevice, quadro_rtx_6000
from repro.gpu.kernels import mergepath_workload
from repro.gpu.timing import scheduling_time, simulate
from repro.gnn.models import GCN
from repro.graphs import Graph


@dataclass(frozen=True)
class InferenceReport:
    """Timing summary of one GNN inference.

    Attributes:
        output: Final-layer embeddings.
        kernel_invocations: SpMM kernel calls performed (one per layer).
        schedule_computations: Schedules built (0 when fully cached).
        modeled_kernel_cycles: Summed modeled GPU cycles of the SpMM calls.
        modeled_schedule_cycles: Modeled GPU cycles spent scheduling.
        wallclock_schedule_seconds: Actual schedule-construction time.
    """

    output: np.ndarray
    kernel_invocations: int
    schedule_computations: int
    modeled_kernel_cycles: float
    modeled_schedule_cycles: float
    wallclock_schedule_seconds: float

    @property
    def scheduling_overhead(self) -> float:
        """Modeled scheduling share of total modeled time (Figure 8)."""
        total = self.modeled_kernel_cycles + self.modeled_schedule_cycles
        return self.modeled_schedule_cycles / total if total else 0.0


class InferenceEngine:
    """Runs GCN inference with MergePath-SpMM aggregation.

    Args:
        mode: ``SchedulingMode.OFFLINE`` reuses schedules across
            inferences (the paper's default, matching GNNAdvisor's
            pre-processed partitions); ``ONLINE`` recomputes per inference.
        device: GPU model used for the timing estimates.
        fused: Execute through the fused engine path (shared schedule +
            engine plan across layers, FLOP-counted ordering).  ``False``
            restores the per-layer vectorized executor.
    """

    def __init__(
        self,
        mode: SchedulingMode = SchedulingMode.OFFLINE,
        device: GPUDevice | None = None,
        fused: bool = True,
    ) -> None:
        self.cache = ScheduleCache(mode=mode)
        self.device = device or quadro_rtx_6000()
        self.fused = fused
        # Normalized adjacencies cached per graph identity so the offline
        # mode's schedule reuse keys on a stable matrix object.
        self._normalized: dict[int, object] = {}

    def infer(self, model: GCN, graph: Graph, features: np.ndarray | None = None,
              *, ctx: "rtrace.RequestContext | None" = None
              ) -> InferenceReport:
        """Run one inference, accounting schedules per Section III-D.

        Args:
            ctx: Optional request-trace context
                (:mod:`repro.obs.rtrace`); when passed, per-layer kernel
                execution and plan compilation are attributed to its
                ledger.
        """
        with rtrace.activate(ctx):
            return self._infer(model, graph, features)

    def _infer(self, model: GCN, graph: Graph,
               features: np.ndarray | None) -> InferenceReport:
        if id(graph) not in self._normalized:
            self._normalized[id(graph)] = graph.normalized_adjacency()
        adjacency = self._normalized[id(graph)]
        if features is None:
            if graph.features is None:
                raise ValueError("graph carries no features; pass them explicitly")
            features = graph.features
        hidden = np.asarray(features, dtype=np.float64)

        if self.cache.mode is SchedulingMode.ONLINE:
            self.cache.clear()

        kernel_cycles = 0.0
        schedule_cycles = 0.0
        computations_before = self.cache.schedule_computations
        wall_before = self.cache.total_scheduling_seconds
        layer_plans = [
            choose_ordering(
                adjacency.n_rows,
                adjacency.nnz,
                layer.in_features,
                layer.out_features,
            )
            for layer in model.layers
        ]
        # One cost per graph (sized for the widest SpMM any layer runs)
        # so a single schedule — and, fused, a single engine plan —
        # serves the whole pass.
        graph_cost = default_merge_path_cost(
            max(plan.spmm_width for plan in layer_plans)
        )
        for layer, layer_plan in zip(model.layers, layer_plans):
            built_before = self.cache.schedule_computations
            schedule: MergePathSchedule = self.cache.get(adjacency, graph_cost)
            if self.cache.schedule_computations > built_before:
                schedule_cycles += scheduling_time(
                    schedule.n_threads,
                    adjacency.n_rows + adjacency.nnz,
                    self.device,
                )
            if self.fused:
                plan = get_engine_plan_cache().get(
                    adjacency, graph_cost, schedule=schedule
                )
                with rtrace.stage("kernel", layer=layer_plan.ordering):
                    if layer_plan.ordering == TRANSFORM_FIRST:
                        output = plan.execute(hidden @ layer.weight)
                    else:
                        output = plan.execute(hidden) @ layer.weight
                spmm_width = layer_plan.spmm_width
            else:
                xw = hidden @ layer.weight
                with rtrace.stage("kernel", layer=layer_plan.ordering):
                    output, _ = execute_vectorized(schedule, xw)
                spmm_width = xw.shape[1]
            kernel_cycles += simulate(
                mergepath_workload(
                    adjacency, spmm_width, self.device, schedule=schedule
                ),
                self.device,
            ).cycles
            hidden = layer._activation(output)  # noqa: SLF001 - same package

        return InferenceReport(
            output=hidden,
            kernel_invocations=model.n_layers,
            schedule_computations=(
                self.cache.schedule_computations - computations_before
            ),
            modeled_kernel_cycles=kernel_cycles,
            modeled_schedule_cycles=schedule_cycles,
            wallclock_schedule_seconds=(
                self.cache.total_scheduling_seconds - wall_before
            ),
        )
