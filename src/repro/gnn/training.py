"""Full-batch GCN training with manual backpropagation.

The paper targets inference, but the aggregation kernel is the same in
training: the backward pass multiplies by the *transposed* adjacency
(``dM = A^T dZ``), which for the symmetric GCN normalization is again a
MergePath-SpMM call.  This module implements the complete differentiable
pipeline — forward, softmax cross-entropy on a labeled-node mask, manual
gradients, Adam — with the sparse products routed through any registered
SpMM backend.

Shapes per layer ``l`` (``A`` is the normalized adjacency):

    M_l = H_l @ W_l          (dense, small)
    Z_l = A @ M_l            (the SpMM kernel under study)
    H_{l+1} = relu(Z_l)      (identity on the last layer)

Backward:

    dZ_l = dH_{l+1} * relu'(Z_l)
    dM_l = A^T @ dZ_l        (SpMM again)
    dW_l = H_l^T @ dM_l
    dH_l = dM_l @ W_l^T
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats import CSRMatrix
from repro.gnn.layers import SpMMFn, spmm_backend
from repro.gnn.metrics import accuracy, cross_entropy, softmax
from repro.graphs import Graph


@dataclass
class AdamOptimizer:
    """Adam with bias correction, one slot per parameter tensor."""

    learning_rate: float = 0.01
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    _m: list[np.ndarray] = field(default_factory=list, repr=False)
    _v: list[np.ndarray] = field(default_factory=list, repr=False)
    _t: int = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update ``params`` in place from ``grads``."""
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        if not self._m:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


@dataclass(frozen=True)
class TrainReport:
    """Per-epoch training trajectory."""

    losses: list[float]
    train_accuracy: float
    final_logits: np.ndarray


class TrainableGCN:
    """A GCN whose weights can be trained by full-batch gradient descent.

    Args:
        dims: Layer widths, e.g. ``[features, hidden, classes]``.
        seed: Weight initialization seed.
        backend: SpMM backend name or callable for both the forward and
            the transposed backward aggregations.
    """

    def __init__(
        self,
        dims: list[int],
        seed: int = 0,
        backend: "str | SpMMFn" = "mergepath",
    ) -> None:
        if len(dims) < 2:
            raise ValueError("need at least input and output widths")
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        for i in range(len(dims) - 1):
            limit = np.sqrt(6.0 / (dims[i] + dims[i + 1]))
            self.weights.append(
                rng.uniform(-limit, limit, size=(dims[i], dims[i + 1]))
            )
        self._spmm = spmm_backend(backend) if isinstance(backend, str) else backend

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    # ------------------------------------------------------------------
    def forward_with_cache(
        self, adjacency: CSRMatrix, features: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
        """Forward pass keeping the activations the backward pass needs.

        Returns:
            ``(logits, inputs_per_layer, pre_activations_per_layer)``.
        """
        hidden = np.asarray(features, dtype=np.float64)
        inputs: list[np.ndarray] = []
        pre_activations: list[np.ndarray] = []
        for i, weight in enumerate(self.weights):
            inputs.append(hidden)
            z = self._spmm(adjacency, hidden @ weight)
            pre_activations.append(z)
            hidden = np.maximum(z, 0.0) if i < self.n_layers - 1 else z
        return hidden, inputs, pre_activations

    def gradients(
        self,
        adjacency: CSRMatrix,
        features: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray,
    ) -> tuple[float, list[np.ndarray]]:
        """Loss and weight gradients for the masked nodes.

        Args:
            adjacency: Normalized adjacency (assumed symmetric, as the GCN
                normalization produces; the transpose is still taken
                explicitly so asymmetric operators stay correct).
            features: ``(n, f)`` node features.
            labels: ``(n,)`` integer labels.
            mask: Boolean array of labeled (training) nodes.

        Returns:
            ``(loss, [dW_0, ..., dW_{L-1}])``.
        """
        labels = np.asarray(labels)
        mask = np.asarray(mask, dtype=bool)
        logits, inputs, pre_activations = self.forward_with_cache(
            adjacency, features
        )
        masked = int(mask.sum())
        if masked == 0:
            raise ValueError("mask selects no training nodes")
        loss = cross_entropy(logits[mask], labels[mask])

        # dLoss/dlogits on masked rows: (softmax - onehot) / n_masked.
        grad_h = np.zeros_like(logits)
        probabilities = softmax(logits[mask])
        probabilities[np.arange(masked), labels[mask]] -= 1.0
        grad_h[mask] = probabilities / masked

        transposed = adjacency.transpose()
        grads: list[np.ndarray] = [None] * self.n_layers  # type: ignore
        for i in reversed(range(self.n_layers)):
            grad_z = grad_h
            if i < self.n_layers - 1:  # ReLU derivative on hidden layers
                grad_z = grad_z * (pre_activations[i] > 0)
            grad_m = self._spmm(transposed, grad_z)
            grads[i] = inputs[i].T @ grad_m
            if i > 0:
                grad_h = grad_m @ self.weights[i].T
        return loss, grads

    # ------------------------------------------------------------------
    def fit(
        self,
        graph: Graph,
        features: np.ndarray,
        labels: np.ndarray,
        mask: "np.ndarray | None" = None,
        epochs: int = 50,
        optimizer: "AdamOptimizer | None" = None,
    ) -> TrainReport:
        """Full-batch training on the graph's normalized adjacency.

        Args:
            graph: Input graph.
            features: Node features.
            labels: Integer labels per node.
            mask: Training-node mask; defaults to all nodes.
            epochs: Gradient steps.
            optimizer: Defaults to Adam at learning rate 0.01.
        """
        adjacency = graph.normalized_adjacency()
        if mask is None:
            mask = np.ones(graph.n_nodes, dtype=bool)
        optimizer = optimizer or AdamOptimizer()
        losses: list[float] = []
        for _ in range(epochs):
            loss, grads = self.gradients(adjacency, features, labels, mask)
            optimizer.step(self.weights, grads)
            losses.append(loss)
        logits, _, _ = self.forward_with_cache(adjacency, features)
        return TrainReport(
            losses=losses,
            train_accuracy=accuracy(logits[mask], labels[mask]),
            final_logits=logits,
        )
