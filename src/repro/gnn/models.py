"""GNN models: GCN plus GraphSAGE and GIN aggregation variants.

All models share the aggregation-heavy structure the paper targets; the
differences are how neighbour features combine with the node's own
features.  Every aggregation runs through the pluggable SpMM backend, so
the models double as end-to-end workloads for kernel comparison.
"""

from __future__ import annotations

import numpy as np

from repro.formats import CSRMatrix
from repro.gnn.layers import GCNLayer, SpMMFn, spmm_backend
from repro.graphs import Graph


class GCN:
    """A multi-layer graph convolutional network (Kipf & Welling).

    Args:
        layers: The stacked :class:`GCNLayer` instances.
    """

    def __init__(self, layers: list[GCNLayer]) -> None:
        if not layers:
            raise ValueError("a GCN needs at least one layer")
        for first, second in zip(layers, layers[1:]):
            if first.out_features != second.in_features:
                raise ValueError(
                    f"layer width mismatch: {first.out_features} -> "
                    f"{second.in_features}"
                )
        self.layers = layers

    @classmethod
    def random(
        cls,
        dims: list[int],
        seed: int = 0,
        backend: "str | SpMMFn" = "mergepath",
    ) -> "GCN":
        """A GCN with random weights and the given layer widths.

        Args:
            dims: Feature widths, e.g. ``[1433, 16, 7]`` builds the
                classic 2-layer Cora model.
            seed: Weight RNG seed.
            backend: SpMM backend for every layer.
        """
        if len(dims) < 2:
            raise ValueError("need at least input and output widths")
        layers = [
            GCNLayer.random(
                dims[i],
                dims[i + 1],
                seed=seed + i,
                activation="relu" if i < len(dims) - 2 else "none",
                backend=backend,
            )
            for i in range(len(dims) - 1)
        ]
        return cls(layers)

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def forward(self, graph: Graph, features: np.ndarray | None = None) -> np.ndarray:
        """Full forward pass over the GCN-normalized adjacency."""
        adjacency = graph.normalized_adjacency()
        if features is None:
            if graph.features is None:
                raise ValueError("graph carries no features; pass them explicitly")
            features = graph.features
        hidden = np.asarray(features, dtype=np.float64)
        for layer in self.layers:
            hidden = layer.forward(adjacency, hidden)
        return hidden


class GraphSAGE:
    """GraphSAGE with mean aggregation.

    Each layer concatenates the node's own features with the mean of its
    neighbours' features, then applies a dense transform:
    ``act([X | mean_agg(X)] @ W)``.  The mean aggregation is a row-
    normalized SpMM — the same kernel shape as GCN aggregation.
    """

    def __init__(
        self,
        weights: list[np.ndarray],
        backend: "str | SpMMFn" = "mergepath",
    ) -> None:
        if not weights:
            raise ValueError("GraphSAGE needs at least one layer weight")
        self.weights = [np.asarray(w, dtype=np.float64) for w in weights]
        self._spmm = spmm_backend(backend) if isinstance(backend, str) else backend

    @classmethod
    def random(
        cls, dims: list[int], seed: int = 0, backend: "str | SpMMFn" = "mergepath"
    ) -> "GraphSAGE":
        """Random weights; each layer's weight has shape ``(2 * in, out)``."""
        rng = np.random.default_rng(seed)
        weights = []
        for i in range(len(dims) - 1):
            limit = np.sqrt(6.0 / (2 * dims[i] + dims[i + 1]))
            weights.append(
                rng.uniform(-limit, limit, size=(2 * dims[i], dims[i + 1]))
            )
        return cls(weights, backend=backend)

    @staticmethod
    def _mean_adjacency(graph: Graph) -> CSRMatrix:
        adj = graph.adjacency
        degrees = adj.row_lengths.astype(np.float64)
        inv = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1), 0.0)
        rows = np.repeat(np.arange(adj.n_rows), adj.row_lengths)
        return CSRMatrix(
            n_rows=adj.n_rows,
            n_cols=adj.n_cols,
            row_pointers=adj.row_pointers,
            column_indices=adj.column_indices,
            values=adj.values * inv[rows],
        )

    def forward(self, graph: Graph, features: np.ndarray | None = None) -> np.ndarray:
        """Full forward pass with mean aggregation per layer."""
        mean_adj = self._mean_adjacency(graph)
        if features is None:
            if graph.features is None:
                raise ValueError("graph carries no features; pass them explicitly")
            features = graph.features
        hidden = np.asarray(features, dtype=np.float64)
        for i, weight in enumerate(self.weights):
            aggregated = self._spmm(mean_adj, hidden)
            combined = np.concatenate([hidden, aggregated], axis=1)
            hidden = combined @ weight
            if i < len(self.weights) - 1:
                hidden = np.maximum(hidden, 0.0)
        return hidden


class GIN:
    """Graph isomorphism network with sum aggregation.

    Each layer computes ``MLP((1 + eps) * X + sum_agg(X))`` with a one-
    hidden-layer MLP; the sum aggregation is a plain adjacency SpMM.
    """

    def __init__(
        self,
        mlps: list[tuple[np.ndarray, np.ndarray]],
        eps: float = 0.0,
        backend: "str | SpMMFn" = "mergepath",
    ) -> None:
        if not mlps:
            raise ValueError("GIN needs at least one MLP")
        self.mlps = [
            (np.asarray(w1, dtype=np.float64), np.asarray(w2, dtype=np.float64))
            for w1, w2 in mlps
        ]
        self.eps = eps
        self._spmm = spmm_backend(backend) if isinstance(backend, str) else backend

    @classmethod
    def random(
        cls,
        dims: list[int],
        seed: int = 0,
        eps: float = 0.0,
        backend: "str | SpMMFn" = "mergepath",
    ) -> "GIN":
        """Random two-matrix MLPs with a hidden width equal to the output."""
        rng = np.random.default_rng(seed)
        mlps = []
        for i in range(len(dims) - 1):
            hidden = dims[i + 1]
            limit1 = np.sqrt(6.0 / (dims[i] + hidden))
            limit2 = np.sqrt(6.0 / (hidden + dims[i + 1]))
            mlps.append(
                (
                    rng.uniform(-limit1, limit1, size=(dims[i], hidden)),
                    rng.uniform(-limit2, limit2, size=(hidden, dims[i + 1])),
                )
            )
        return cls(mlps, eps=eps, backend=backend)

    def forward(self, graph: Graph, features: np.ndarray | None = None) -> np.ndarray:
        """Full forward pass with sum aggregation per layer."""
        if features is None:
            if graph.features is None:
                raise ValueError("graph carries no features; pass them explicitly")
            features = graph.features
        hidden = np.asarray(features, dtype=np.float64)
        for w1, w2 in self.mlps:
            aggregated = self._spmm(graph.adjacency, hidden)
            combined = (1.0 + self.eps) * hidden + aggregated
            hidden = np.maximum(combined @ w1, 0.0) @ w2
        return hidden
