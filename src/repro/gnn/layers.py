"""GCN layers with pluggable SpMM backends.

A layer computes ``act(A @ (X @ W))`` — the execution order the paper's
accelerators (AWB-GCN, GROW, GNNAdvisor) all use: the dense-dense ``X @ W``
first (cheap: W is small), then the hard sparse-dense product against the
adjacency matrix, which is where the SpMM backend plugs in.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines.cusparse_like import cusparse_like_spmm
from repro.baselines.neighbor_groups import gnnadvisor_spmm
from repro.core.spmm import merge_path_spmm
from repro.formats import CSRMatrix

SpMMFn = Callable[[CSRMatrix, np.ndarray], np.ndarray]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic activation."""
    return 1.0 / (1.0 + np.exp(-x))


def _identity(x: np.ndarray) -> np.ndarray:
    return x


def _mergepath(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    return merge_path_spmm(matrix, dense).output


def _gnnadvisor(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    return gnnadvisor_spmm(matrix, dense)[0]


def _cusparse(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    return cusparse_like_spmm(matrix, dense)[0]


def _reference(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    return matrix.multiply_dense(dense)


BACKENDS: dict[str, SpMMFn] = {
    "mergepath": _mergepath,
    "gnnadvisor": _gnnadvisor,
    "cusparse": _cusparse,
    "reference": _reference,
}

ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": relu,
    "sigmoid": sigmoid,
    "none": _identity,
}


def spmm_backend(name: str) -> SpMMFn:
    """Look up a named SpMM backend.

    Args:
        name: One of :data:`BACKENDS` (``"mergepath"``, ``"gnnadvisor"``,
            ``"cusparse"``, ``"reference"``).
    """
    if name not in BACKENDS:
        known = ", ".join(sorted(BACKENDS))
        raise KeyError(f"unknown SpMM backend {name!r}; known: {known}")
    return BACKENDS[name]


class GCNLayer:
    """One graph convolution: ``act(A @ (X @ W))``.

    Args:
        weight: The ``f x d`` trained weight matrix *W*.
        activation: Activation name (``"relu"``, ``"sigmoid"``, ``"none"``).
        backend: SpMM backend name or callable.
    """

    def __init__(
        self,
        weight: np.ndarray,
        activation: str = "relu",
        backend: "str | SpMMFn" = "mergepath",
    ) -> None:
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError(f"weight must be 2-D, got shape {self.weight.shape}")
        if activation not in ACTIVATIONS:
            known = ", ".join(sorted(ACTIVATIONS))
            raise ValueError(f"unknown activation {activation!r}; known: {known}")
        self.activation_name = activation
        self._activation = ACTIVATIONS[activation]
        self._spmm = spmm_backend(backend) if isinstance(backend, str) else backend

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(
        self, adjacency: CSRMatrix, features: "np.ndarray | CSRMatrix"
    ) -> np.ndarray:
        """Apply the layer.

        Args:
            adjacency: (Normalized) adjacency matrix *A*.
            features: Node features *X*, shape ``(n, in_features)``.
                Accepts a sparse CSR matrix too — real feature matrices
                are "moderately sparse" (paper, Section II), in which case
                ``X @ W`` is itself an SpMM.


        Returns:
            Activated output embeddings, shape ``(n, out_features)``.
        """
        if isinstance(features, CSRMatrix):
            if features.n_cols != self.in_features:
                raise ValueError(
                    f"feature width {features.n_cols} != layer input "
                    f"{self.in_features}"
                )
            xw = features.multiply_dense(self.weight)  # sparse X: SpMM
        else:
            features = np.asarray(features, dtype=np.float64)
            if features.shape[1] != self.in_features:
                raise ValueError(
                    f"feature width {features.shape[1]} != layer input "
                    f"{self.in_features}"
                )
            xw = features @ self.weight  # dense-dense: W is small
        return self._activation(self._spmm(adjacency, xw))

    @classmethod
    def random(
        cls,
        in_features: int,
        out_features: int,
        seed: int = 0,
        activation: str = "relu",
        backend: "str | SpMMFn" = "mergepath",
    ) -> "GCNLayer":
        """A layer with Glorot-style random weights (for benchmarks/tests)."""
        rng = np.random.default_rng(seed)
        limit = np.sqrt(6.0 / (in_features + out_features))
        weight = rng.uniform(-limit, limit, size=(in_features, out_features))
        return cls(weight, activation=activation, backend=backend)
