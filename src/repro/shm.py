"""Shared-memory CSR segments: publish once, attach zero-copy anywhere.

The process-isolated serving tier (:mod:`repro.serve.procpool`) needs
every worker subprocess to see the same immutable graph without paying a
per-worker — let alone per-request — copy of the CSR arrays.  This
module packs one :class:`~repro.formats.csr.CSRMatrix` into a single
``multiprocessing.shared_memory`` block and hands out a small picklable
:class:`SegmentMeta` descriptor; any process holding the descriptor can
:func:`attach_csr` and get numpy views *into the shared pages*:

* **One block, three arrays.**  ``row_pointers`` / ``column_indices`` /
  ``values`` live at 64-byte-aligned offsets inside one segment, so a
  publish is one allocation and an attach is one ``shm_open`` + three
  ``np.frombuffer`` views — zero bytes of graph data copied (and
  :class:`AttachedCSR.copied_bytes` proves it per attach).
* **Checksummed.**  The publisher records a BLAKE2b digest per array;
  :func:`attach_csr` re-hashes the shared pages before handing out the
  matrix and raises :class:`SegmentChecksumError` on any mismatch, so a
  torn write, a partially-unlinked segment, or plain memory corruption
  is *detected at the boundary* instead of producing a silently wrong
  product.  ``verify=False`` skips the hash for trusted re-attaches.
* **Epoch-stamped.**  The matrix's :attr:`~repro.formats.csr.CSRMatrix.
  version` (and its content fingerprint) ride along in the descriptor,
  so live-update epochs (:mod:`repro.serve.epoch`) republish under new
  fingerprints and attached workers can never confuse two epochs.

Publishers own the segment: :meth:`SharedCSRSegment.close` unlinks it.
Attachers only map it; their :meth:`AttachedCSR.close` releases the
local mapping.  Attach-side resource-tracker registration is suppressed
(the well-known ``multiprocessing.shared_memory`` wart where an
attaching process's tracker would unlink segments it never owned).

Everything here emits ``repro.obs`` counters under ``shm.*``.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.formats import CSRMatrix

_ALIGN = 64


class SegmentChecksumError(RuntimeError):
    """A shared CSR segment's bytes do not match its published digests."""


def _quiet_close(shm: shared_memory.SharedMemory) -> None:
    """Close a mapping even while exported views are still alive.

    ``SharedMemory.close`` raises :class:`BufferError` if any numpy view
    of the pages survives (a caller's stray reference, or an exception
    traceback pinning an attach frame) — and then its ``__del__`` retries
    the close at GC time and spews the same error as an ignored
    exception.  Release what can be released, close the descriptor, and
    disarm the destructor's retry; the stranded pages go back to the OS
    at process exit like any other mapping.
    """
    try:
        shm.close()
        return
    except BufferError:
        pass
    try:  # pragma: no cover - depends on live-view timing
        if shm._fd >= 0:
            import os

            os.close(shm._fd)
            shm._fd = -1
    except OSError:  # pragma: no cover
        pass
    shm._mmap = None
    shm._buf = None


def _digest(view: "np.ndarray | memoryview") -> str:
    return hashlib.blake2b(bytes(view), digest_size=16).hexdigest()


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SegmentMeta:
    """Picklable descriptor of one published CSR segment.

    Everything a foreign process needs to attach: the shared-memory
    ``name``, the matrix shape, per-array offsets/lengths inside the
    block, per-array BLAKE2b digests, the publisher's content
    fingerprint, and the graph epoch ``version`` (``None`` for static
    graphs).
    """

    name: str
    n_rows: int
    n_cols: int
    nnz: int
    version: "int | None"
    fingerprint: str
    indptr_offset: int
    indices_offset: int
    values_offset: int
    total_bytes: int
    checksums: "tuple[str, str, str]"

    def to_dict(self) -> dict:
        """Picklable form workers attach from."""
        return {
            "name": self.name,
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "nnz": self.nnz,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "total_bytes": self.total_bytes,
        }


class SharedCSRSegment:
    """Publisher-side handle on one shared CSR segment (owns the pages).

    Built by :func:`publish_csr`.  The publisher process keeps the
    handle for the segment's lifetime; :meth:`close` unlinks the shared
    pages (attached readers keep their mappings alive until they close,
    which is exactly the RCU grace the epoch manager needs).
    """

    def __init__(self, shm: shared_memory.SharedMemory, meta: SegmentMeta) -> None:
        self._shm = shm
        self.meta = meta
        self._closed = False

    @property
    def name(self) -> str:
        """OS-level shared-memory block name."""
        return self.meta.name

    @property
    def nbytes(self) -> int:
        """Total bytes of the published segment."""
        return self.meta.total_bytes

    def buffer(self) -> memoryview:
        """The raw (writable) segment pages — chaos tests tear through it."""
        return self._shm.buf

    def close(self) -> None:
        """Release the local mapping and unlink the shared pages."""
        if self._closed:
            return
        self._closed = True
        _quiet_close(self._shm)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        obs.counter("shm.segments_unlinked").inc()

    def __enter__(self) -> "SharedCSRSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def publish_csr(matrix: CSRMatrix) -> SharedCSRSegment:
    """Pack ``matrix`` into one shared-memory segment and publish it.

    The three CSR arrays are copied once — the publish — into
    64-byte-aligned slots of a fresh ``SharedMemory`` block, and each
    array's BLAKE2b digest is recorded in the returned segment's
    :class:`SegmentMeta` so every attach can verify integrity.
    """
    indptr = np.ascontiguousarray(matrix.row_pointers, dtype=np.int64)
    indices = np.ascontiguousarray(matrix.column_indices, dtype=np.int64)
    values = np.ascontiguousarray(matrix.values, dtype=np.float64)

    indptr_offset = 0
    indices_offset = _aligned(indptr_offset + indptr.nbytes)
    values_offset = _aligned(indices_offset + indices.nbytes)
    total = max(1, values_offset + values.nbytes)

    shm = shared_memory.SharedMemory(create=True, size=total)
    for array, offset in (
        (indptr, indptr_offset),
        (indices, indices_offset),
        (values, values_offset),
    ):
        dst = np.frombuffer(shm.buf, dtype=array.dtype, count=len(array), offset=offset)
        dst[:] = array

    meta = SegmentMeta(
        name=shm.name,
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        nnz=matrix.nnz,
        version=matrix.version,
        fingerprint=matrix.fingerprint(include_values=True),
        indptr_offset=indptr_offset,
        indices_offset=indices_offset,
        values_offset=values_offset,
        total_bytes=total,
        checksums=(_digest(indptr), _digest(indices), _digest(values)),
    )
    obs.counter("shm.segments_published").inc()
    obs.counter("shm.bytes_published").inc(total)
    return SharedCSRSegment(shm, meta)


class AttachedCSR:
    """Attacher-side handle: a :class:`CSRMatrix` over shared pages.

    Attributes:
        matrix: CSR matrix whose arrays are views *into* the shared
            segment — no graph bytes were copied to build it.
        meta: The descriptor this attach was made from.
        copied_bytes: Graph bytes copied during the attach.  Always 0
            on the zero-copy path; non-zero only if numpy had to
            materialize a copy (it never should — the segment layout is
            contiguous and dtype-exact — and the process pool asserts
            this stays 0).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        matrix: CSRMatrix,
        meta: SegmentMeta,
        copied_bytes: int,
    ) -> None:
        self._shm = shm
        self.matrix = matrix
        self.meta = meta
        self.copied_bytes = copied_bytes
        self._closed = False

    def verify(self) -> None:
        """Re-hash the shared pages against the published digests."""
        _verify_checksums(self._shm, self.meta)

    def close(self) -> None:
        """Drop the matrix views and release the local mapping."""
        if self._closed:
            return
        self._closed = True
        self.matrix = None  # type: ignore[assignment]
        _quiet_close(self._shm)

    def __enter__(self) -> "AttachedCSR":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_attach_lock = threading.Lock()


@contextmanager
def _no_tracker_register():
    """Suppress resource-tracker registration for the scope of an attach.

    ``SharedMemory(name, create=False)`` registers the segment with the
    resource tracker (CPython < 3.13) as if the attacher owned it, so a
    tracker cleanup would unlink pages the publisher still serves — and
    un-registering after the fact is no better, because fork children
    share the parent's tracker and would erase the *publisher's*
    registration (set semantics).  Only the publisher may own the
    registration, so attaches simply never register.
    """
    from multiprocessing import resource_tracker

    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            yield
        finally:
            resource_tracker.register = original


def _verify_checksums(shm: shared_memory.SharedMemory, meta: SegmentMeta) -> None:
    views = (
        np.frombuffer(shm.buf, np.int64, meta.n_rows + 1, meta.indptr_offset),
        np.frombuffer(shm.buf, np.int64, meta.nnz, meta.indices_offset),
        np.frombuffer(shm.buf, np.float64, meta.nnz, meta.values_offset),
    )
    for label, view, expected in zip(
        ("row_pointers", "column_indices", "values"), views, meta.checksums
    ):
        if _digest(view) != expected:
            obs.counter("shm.checksum_failures").inc()
            raise SegmentChecksumError(
                f"segment {meta.name!r} {label} bytes do not match the "
                f"published digest (epoch {meta.version}, "
                f"fingerprint {meta.fingerprint[:12]}…) — torn or "
                "corrupted segment"
            )


def attach_csr(meta: SegmentMeta, *, verify: bool = True) -> AttachedCSR:
    """Attach a published segment as a zero-copy :class:`CSRMatrix`.

    Args:
        meta: Descriptor from the publishing process.
        verify: Re-hash every array against the published digests
            before building the matrix (raises
            :class:`SegmentChecksumError` on mismatch).  The O(nnz)
            hash runs once per attach — per epoch per worker, never per
            request.
    """
    with _no_tracker_register():
        shm = shared_memory.SharedMemory(name=meta.name, create=False)
    try:
        if verify:
            _verify_checksums(shm, meta)
        arrays = (
            np.frombuffer(shm.buf, np.int64, meta.n_rows + 1, meta.indptr_offset),
            np.frombuffer(shm.buf, np.int64, meta.nnz, meta.indices_offset),
            np.frombuffer(shm.buf, np.float64, meta.nnz, meta.values_offset),
        )
        matrix = CSRMatrix(
            n_rows=meta.n_rows,
            n_cols=meta.n_cols,
            row_pointers=arrays[0],
            column_indices=arrays[1],
            values=arrays[2],
            version=meta.version,
        )
        # Zero-copy proof: every matrix array must still point into the
        # shared pages.  CSRMatrix's dtype/contiguity normalization is a
        # no-op for this layout, but if it ever copied, account for it.
        base = np.frombuffer(shm.buf, np.uint8)
        lo = base.__array_interface__["data"][0]
        hi = lo + base.nbytes
        copied = 0
        for array in (matrix.row_pointers, matrix.column_indices, matrix.values):
            pointer = array.__array_interface__["data"][0]
            if not lo <= pointer < hi:  # pragma: no cover - defensive
                copied += array.nbytes
        obs.counter("shm.attaches").inc()
        if copied:  # pragma: no cover - defensive
            obs.counter("shm.attach_bytes_copied").inc(copied)
        return AttachedCSR(shm, matrix, meta, copied)
    except Exception:
        _quiet_close(shm)
        raise
